//! Query server round-trip: embed the network server in-process, then act
//! as a client — sessions, transactions, prepared statements, ad-hoc
//! queries and the stats surface, all over real TCP.
//!
//! ```sh
//! cargo run --release --example query_server
//! ```

use std::sync::Arc;
use std::time::Duration;

use pmemgraph::gjit::JitEngine;
use pmemgraph::graphcore::DbOptions;
use pmemgraph::gserver::{serve, Client, Param, ServerConfig};
use pmemgraph::ldbc::{generate, SnbParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a small LDBC-SNB-like graph and start the server on an
    //    ephemeral port. In production you would use DbOptions::pmem(..)
    //    and a fixed ADDR — see crates/gserver/src/bin/pmemgraph_server.rs.
    let snb = Arc::new(generate(&SnbParams::tiny(7), DbOptions::dram(128 << 20))?);
    let person = snb.data.person_ids[0];
    let post = snb.data.post_ids[0];
    let engine = Arc::new(JitEngine::new());
    let handle = serve(
        snb,
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServerConfig::default()
        },
    )?;
    let addr = handle.local_addr();
    println!("server listening on {addr}");

    // 2. Connect. The greeting carries a session id; every connection is
    //    one session with its own transaction state.
    let mut client = Client::connect(addr)?;
    println!("connected, session {}", client.session_id());

    // 3. Ad-hoc queries against the plan surface.
    let persons = client.query("count nodes Person", &[])?;
    println!("count nodes Person -> {:?}", persons.scalar());
    let sample = client.query(
        "scan Person where birthday > ?0 project firstName,lastName limit 3",
        &[Param::Date(631_152_000_000)],
    )?;
    for row in &sample.rows {
        println!("  person row: {row:?}");
    }

    // 4. Prepared statements resolve against the LDBC query library once,
    //    then execute by name (the plan cache lives behind the JIT engine).
    client.prepare("profile", "is1")?;
    let profile = client.execute("profile", &[Param::Int(person)])?;
    println!("is1({person}) -> {} row(s)", profile.row_count);

    // 5. Explicit transactions: BEGIN maps to one MVTO transaction pinned
    //    to this session. Roll it back and nothing is visible.
    let txn = client.begin()?;
    client.query(
        "iu2",
        &[
            Param::Int(person),
            Param::Int(post),
            Param::Date(1_600_000_000_000),
        ],
    )?;
    client.rollback()?;
    println!("txn {txn} rolled back (LIKES edge discarded)");

    // 6. And commit one for real.
    client.begin()?;
    client.query(
        "iu2",
        &[
            Param::Int(person),
            Param::Int(post),
            Param::Date(1_600_000_000_000),
        ],
    )?;
    client.commit()?;
    println!("second txn committed");

    // 7. The stats surface: engine + server counters as one JSON object.
    let stats = client.stats()?;
    if let (Some(txn), Some(jit)) = (stats.get("txn"), stats.get("jit")) {
        println!(
            "stats: commits={:?} aborts={:?} jit_compiles={:?} cache_hits={:?}",
            txn.get("commits").and_then(|j| j.as_i64()),
            txn.get("aborts").and_then(|j| j.as_i64()),
            jit.get("compiles").and_then(|j| j.as_i64()),
            jit.get("cache_hits").and_then(|j| j.as_i64()),
        );
    }

    // 8. Clean shutdown: stop accepting, drain in-flight sessions, join.
    client.quit()?;
    std::thread::sleep(Duration::from_millis(50));
    handle.shutdown();
    println!("server drained and stopped");
    Ok(())
}
