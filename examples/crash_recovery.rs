//! Crash-consistency demonstration: simulate a power failure mid-commit
//! and show that recovery restores a transactionally consistent state.
//!
//! The pmem crate tracks written-but-unflushed cache lines; a simulated
//! crash discards exactly those, which is the failure model real Optane
//! DCPMMs expose (C4: only flushed 8-byte-aligned stores survive).
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use pmemgraph::graphcore::{DbOptions, GraphDb, PropOwner, Value};
use pmemgraph::pmem::{CrashPolicy, DeviceProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("pmemgraph-crash-demo.pool");
    let _ = std::fs::remove_file(&path);

    let db = GraphDb::create(
        DbOptions::pmem(&path, 256 << 20)
            .profile(DeviceProfile::dram()) // no latency injection for the demo
            .crash_tracking(true),
    )?;

    // Committed state: one account-like node.
    let mut tx = db.begin();
    let node = tx.create_node("Account", &[("balance", Value::Int(100))])?;
    tx.commit()?;
    println!("committed balance: 100");

    // A transaction updates the balance twice but the machine dies before
    // commit finishes. We emulate that by forgetting the transaction (its
    // locks stay) and dropping every unflushed cache line.
    let mut tx = db.begin();
    tx.set_prop(PropOwner::Node(node), "balance", Value::Int(9999))?;
    tx.set_prop(PropOwner::Node(node), "balance", Value::Int(-1))?;
    std::mem::forget(tx);
    println!("simulating power failure mid-transaction...");
    db.pool().simulate_crash(CrashPolicy::DropUnflushed)?;
    std::mem::forget(db); // the crashed process never runs Drop

    // Restart: GraphDb::open replays/rolls back the undo log, clears stale
    // MVTO locks, reclaims uncommitted inserts, rebuilds volatile state.
    let db = GraphDb::open(&path, DeviceProfile::dram())?;
    let tx = db.begin();
    let balance = tx.prop(PropOwner::Node(node), "balance")?;
    println!("recovered balance: {balance:?}");
    assert_eq!(balance, Some(Value::Int(100)), "uncommitted update must vanish");

    // And the database is fully writable again.
    drop(tx);
    let mut tx = db.begin();
    tx.set_prop(PropOwner::Node(node), "balance", Value::Int(150))?;
    tx.commit()?;
    let tx = db.begin();
    assert_eq!(
        tx.prop(PropOwner::Node(node), "balance")?,
        Some(Value::Int(150))
    );
    println!("post-recovery commit OK: balance = 150");

    drop(tx);
    drop(db);
    std::fs::remove_file(&path)?;
    Ok(())
}
