//! The paper's workload end to end: generate an LDBC-SNB-like social
//! network, then run the Interactive Short Read queries through all four
//! execution modes (AOT single-threaded, morsel-parallel, JIT, adaptive)
//! and an update mix, printing per-mode latencies.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use std::sync::Arc;
use std::time::Instant;

use pmemgraph::gjit::JitEngine;
use pmemgraph::graphcore::DbOptions;
use pmemgraph::ldbc::{generate, run_spec, IuQuery, Mode, SnbParams, SrQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating SNB-like social network...");
    let snb = generate(&SnbParams::small(42), DbOptions::dram(1 << 30))?;
    println!(
        "  {} persons, {} posts, {} comments, {} nodes, {} relationships",
        snb.data.person_ids.len(),
        snb.data.post_ids.len(),
        snb.data.comment_ids.len(),
        snb.db.node_count(),
        snb.db.rel_count()
    );

    let engine = JitEngine::new();
    let engine_arc = Arc::new(JitEngine::new());
    let mut rng = pmemgraph::ldbc::gen::SnbParams::small(42).seed; // seed base
    let mut next = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        rng
    };

    println!("\nInteractive Short Reads (avg of 10 runs each):");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "query", "AOT-1", "AOT-parallel", "JIT", "adaptive"
    );
    for q in SrQuery::ALL {
        let spec = q.spec(&snb.codes);
        let mut cells = Vec::new();
        for mode in [
            Mode::Interp,
            Mode::Parallel(4),
            Mode::Jit(&engine),
            Mode::Adaptive(&engine_arc, 4),
        ] {
            // Warm + measure.
            let mut rng2 = rand_like(next());
            let params = q.params(&snb, &mut rng2);
            run_spec(&snb.db, &spec, &params, &mode)?;
            let start = Instant::now();
            for _ in 0..10 {
                let params = q.params(&snb, &mut rng2);
                run_spec(&snb.db, &spec, &params, &mode)?;
            }
            cells.push(start.elapsed() / 10);
        }
        println!(
            "{:>8} {:>12?} {:>12?} {:>12?} {:>12?}",
            q.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }

    println!("\nInteractive Updates (AOT, avg of 10 runs incl. commit):");
    for q in IuQuery::ALL {
        let spec = q.spec(&snb.codes);
        let mut rng2 = rand_like(next());
        let start = Instant::now();
        for _ in 0..10 {
            let params = q.params(&snb, &mut rng2);
            run_spec(&snb.db, &spec, &params, &Mode::Interp)?;
        }
        println!("  IU{:<2} {:?}", q.name(), start.elapsed() / 10);
    }
    println!(
        "\nengine stats: {} commits, {} aborts, {} version-chain entries live",
        snb.db
            .mgr()
            .stats()
            .commits
            .load(std::sync::atomic::Ordering::Relaxed),
        snb.db
            .mgr()
            .stats()
            .aborts
            .load(std::sync::atomic::Ordering::Relaxed),
        snb.db.mgr().version_count()
    );
    Ok(())
}

fn rand_like(seed: u64) -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
