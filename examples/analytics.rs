//! HTAP in action: run graph analytics (PageRank, components, BFS,
//! triangles) over an MVCC snapshot of the social network while update
//! transactions keep committing against the same PMem tables.
//!
//! ```sh
//! cargo run --release --example analytics
//! ```

use pmemgraph::graphcore::{DbOptions, GraphView, PropOwner, Value};
use pmemgraph::ldbc::{generate, SnbParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating social network...");
    let snb = generate(&SnbParams::small(7), DbOptions::dram(1 << 30))?;
    let knows = snb.db.dict().code_of("KNOWS").unwrap();
    let person = snb.db.dict().code_of("Person").unwrap();

    // Analytics snapshot (a plain read transaction).
    let snapshot = snb.db.begin();
    let t = std::time::Instant::now();
    let view = GraphView::build(&snapshot, Some(person), Some(knows))?;
    println!(
        "KNOWS view: {} persons, {} edges (built in {:?})",
        view.node_count(),
        view.edge_count(),
        t.elapsed()
    );

    // OLTP keeps going while we crunch — invisible to the snapshot.
    let mut w = snb.db.begin();
    let newcomer = w.create_node("Person", &[("id", Value::Int(999_999))])?;
    let first = view.nodes[0];
    w.create_rel(newcomer, "KNOWS", first, &[])?;
    w.create_rel(first, "KNOWS", newcomer, &[])?;
    w.commit()?;

    // PageRank: most-connected people.
    let pr = view.pagerank(30, 0.85);
    let mut ranked: Vec<(usize, f64)> = pr.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 by PageRank:");
    for &(dense, score) in ranked.iter().take(5) {
        let node = view.nodes[dense];
        let name = snapshot.prop(PropOwner::Node(node), "firstName")?;
        let id = snapshot.prop(PropOwner::Node(node), "id")?;
        println!("  {score:.5}  person id={id:?} name={name:?}");
    }

    // Connectivity structure.
    let comps = view.connected_components();
    let distinct: std::collections::HashSet<u32> = comps.iter().copied().collect();
    println!("\nweakly connected components: {}", distinct.len());
    println!("triangles in the friendship graph: {}", view.triangles());

    // BFS reach from the top person.
    let start = view.nodes[ranked[0].0];
    let depths = view.bfs(start);
    let max_depth = depths.values().copied().max().unwrap_or(0);
    println!(
        "BFS from the top person reaches {} of {} persons (eccentricity {})",
        depths.len(),
        view.node_count(),
        max_depth
    );

    // The snapshot never saw the concurrent commit:
    assert_eq!(view.index.get(&newcomer), None);
    let fresh = snb.db.begin();
    let view2 = GraphView::build(&fresh, Some(person), Some(knows))?;
    assert_eq!(view2.node_count(), view.node_count() + 1);
    println!(
        "\nsnapshot isolation held: analytic view {} persons, fresh view {}",
        view.node_count(),
        view2.node_count()
    );
    Ok(())
}
