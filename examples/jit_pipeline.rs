//! JIT compilation walkthrough: build a graph-algebra plan, compile it to
//! machine code with Cranelift, compare against the AOT interpreter, and
//! show the adaptive executor switching mid-query.
//!
//! ```sh
//! cargo run --release --example jit_pipeline
//! ```

use std::sync::Arc;
use std::time::Instant;

use pmemgraph::gjit::{execute_adaptive, execute_jit, JitEngine};
use pmemgraph::gquery::plan::RelEnd;
use pmemgraph::gquery::{execute_collect, CmpOp, Op, PPar, Plan, Pred, Proj};
use pmemgraph::graphcore::{DbOptions, Dir, GraphDb, Value};
use pmemgraph::gstore::PVal;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized random graph.
    let db = GraphDb::create(DbOptions::dram(1 << 30))?;
    let n = 20_000i64;
    let mut tx = db.begin();
    let ids: Vec<u64> = (0..n)
        .map(|i| {
            tx.create_node(
                "Item",
                &[("score", Value::Int(i % 100)), ("idx", Value::Int(i))],
            )
        })
        .collect::<Result<_, _>>()?;
    for i in 0..n as usize {
        tx.create_rel(ids[i], "NEXT", ids[(i + 17) % n as usize], &[])?;
    }
    tx.commit()?;

    let item = db.intern("Item")?;
    let next = db.intern("NEXT")?;
    let score = db.intern("score")?;
    let idx = db.intern("idx")?;

    // MATCH (a:Item)-[:NEXT]->(b) WHERE a.score > $0 RETURN b.idx
    let plan = Plan::new(
        vec![
            Op::NodeScan { label: Some(item) },
            Op::Filter(Pred::Prop {
                col: 0,
                key: score,
                op: CmpOp::Gt,
                value: PPar::Param(0),
            }),
            Op::ForeachRel {
                col: 0,
                dir: Dir::Out,
                label: Some(next),
            },
            Op::GetNode {
                col: 1,
                end: RelEnd::Dst,
            },
            Op::Project(vec![Proj::Prop { col: 2, key: idx }]),
        ],
        1,
    );
    let params = [PVal::Int(90)];

    // 1. AOT interpretation.
    let mut txn = db.begin();
    let t = Instant::now();
    let interp = execute_collect(&plan, &mut txn, &params)?;
    let t_interp = t.elapsed();
    println!("AOT interpreter: {} rows in {t_interp:?}", interp.len());

    // 2. JIT: compile once, execute compiled code.
    let engine = JitEngine::new();
    let compiled = engine.get_or_compile(&plan).expect("compilable plan");
    println!(
        "compiled pipeline (fingerprint {:#x}) in {:?}",
        compiled.fingerprint, compiled.compile_time
    );
    let t = Instant::now();
    let jit = execute_jit(&engine, &plan, &mut txn, &params)?;
    let t_jit = t.elapsed();
    assert_eq!(jit, interp, "JIT must agree with the interpreter");
    println!(
        "JIT execution:   {} rows in {t_jit:?}  ({:.1}x vs AOT)",
        jit.len(),
        t_interp.as_secs_f64() / t_jit.as_secs_f64()
    );

    // 3. Adaptive: fresh engine, compilation races the scan.
    let engine = Arc::new(JitEngine::new());
    let t = Instant::now();
    let report = execute_adaptive(&engine, &plan, &db, &txn, &params, 4)?;
    println!(
        "adaptive:        {} rows in {:?}  ({} interpreted + {} compiled morsels, switched={})",
        report.rows.len(),
        t.elapsed(),
        report.interpreted_morsels,
        report.compiled_morsels,
        report.switched
    );
    assert_eq!(report.rows.len(), interp.len());
    Ok(())
}
