//! Quickstart: create a persistent graph, write transactionally, query it,
//! reopen it after a restart.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pmemgraph::graphcore::{DbOptions, Dir, GraphDb, PropOwner, Value};
use pmemgraph::gstore::IndexKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("pmemgraph-quickstart.pool");
    let _ = std::fs::remove_file(&path);

    // 1. Create a PMem-backed database (emulated device: file mmap +
    //    latency model; use DbOptions::dram(..) for a volatile instance).
    let db = GraphDb::create(DbOptions::pmem(&path, 256 << 20))?;

    // 2. Write a little social graph in one ACID transaction.
    let mut tx = db.begin();
    let ada = tx.create_node(
        "Person",
        &[("name", Value::from("Ada")), ("born", Value::Int(1815))],
    )?;
    let grace = tx.create_node(
        "Person",
        &[("name", Value::from("Grace")), ("born", Value::Int(1906))],
    )?;
    let alan = tx.create_node(
        "Person",
        &[("name", Value::from("Alan")), ("born", Value::Int(1912))],
    )?;
    tx.create_rel(ada, "MENTORS", grace, &[("since", Value::Int(1984))])?;
    tx.create_rel(grace, "KNOWS", alan, &[])?;
    tx.commit()?;

    // 3. A secondary index (hybrid: DRAM inner nodes, PMem leaves).
    db.create_index("Person", "born", IndexKind::Hybrid)?;

    // 4. Read with snapshot isolation.
    let tx = db.begin();
    let hits = tx.lookup_nodes("Person", "born", &Value::Int(1906))?;
    assert_eq!(hits, vec![grace]);
    println!(
        "index lookup born=1906 -> {:?}",
        tx.prop(PropOwner::Node(hits[0]), "name")?
    );
    for (rel_id, rel) in tx.rels_of(ada, Dir::Out, None)? {
        println!(
            "{:?} -[{}]-> {:?}   (since {:?})",
            tx.prop(PropOwner::Node(rel.src), "name")?,
            db.dict().string_of(rel.label).unwrap(),
            tx.prop(PropOwner::Node(rel.dst), "name")?,
            tx.prop(PropOwner::Rel(rel_id), "since")?
        );
    }
    drop(tx);

    // 5. "Restart": drop the instance and reopen the pool. Everything —
    //    records, dictionary, index leaves — is recovered; the hybrid
    //    index rebuilds only its DRAM inner levels.
    drop(db);
    let db = GraphDb::open(&path, pmemgraph::pmem::DeviceProfile::pmem())?;
    let tx = db.begin();
    assert_eq!(
        tx.lookup_nodes("Person", "born", &Value::Int(1815))?,
        vec![ada]
    );
    println!(
        "after reopen: {} nodes, {} relationships, Ada is {:?}",
        db.node_count(),
        db.rel_count(),
        tx.prop(PropOwner::Node(ada), "name")?
    );
    drop(tx);
    drop(db);
    std::fs::remove_file(&path)?;
    Ok(())
}
