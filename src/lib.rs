//! Facade crate re-exporting the whole workspace.
//!
//! This is the reproduction of *"JIT happens: Transactional Graph Processing
//! in Persistent Memory meets Just-In-Time Compilation"* (EDBT 2021). See
//! README.md for the architecture overview and DESIGN.md for the
//! paper-to-module mapping.
//!
//! The individual layers are available both as standalone crates and as
//! re-exported modules here:
//!
//! * [`gconfig`] — the registry of `PMEMGRAPH_*` environment knobs.
//! * [`pmem`] — persistent-memory emulation (pools, flushes, crash sim).
//! * [`gstore`] — chunked tables, dictionary, B+-tree indexes.
//! * [`gtxn`] — MVTO multi-version concurrency control.
//! * [`graphcore`] — the transactional property-graph engine.
//! * [`gquery`] — push-based graph-algebra interpreter (AOT mode).
//! * [`gjit`] — Cranelift JIT query compiler + adaptive execution.
//! * [`ldbc`] — LDBC-SNB-like generator and interactive workloads.
//! * [`gdisk`] — disk-based baseline engine.
//! * [`gserver`] — concurrent network query server (sessions, admission
//!   control, wire protocol, blocking client).
//! * [`ganalytics`] — the OLAP lane: DRAM CSR snapshots, morsel-scheduled
//!   BFS/PageRank/WCC, tiered durability for bulk ingest.

pub use ganalytics;
pub use gconfig;
pub use gdisk;
pub use gjit;
pub use gquery;
pub use graphcore;
pub use gserver;
pub use gstore;
pub use gtxn;
pub use ldbc;
pub use pmem;
