//! Engine-level crash sweep: inject a power failure at every flush point
//! of a multi-object graph transaction, recover through the full
//! GraphDb::open path, and verify transactional all-or-nothing semantics
//! plus structural integrity after every crash.

use pmemgraph::graphcore::{DbOptions, Dir, GraphDb, PropOwner, Value};
use pmemgraph::pmem::{CrashPolicy, CrashPoint, DeviceProfile};

fn tmpfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pmemgraph-sweep-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

/// Structural integrity: every visible relationship's endpoints are
/// visible, every adjacency list walks to NIL, all locks are clear.
fn check_integrity(db: &GraphDb) {
    let tx = db.begin();
    db.nodes().for_each_live(|_, n| assert_eq!(n.txn_id, 0, "node lock leaked"));
    db.rels().for_each_live(|_, r| assert_eq!(r.txn_id, 0, "rel lock leaked"));
    let mut rel_ids = Vec::new();
    db.rels().for_each_live(|id, _| rel_ids.push(id));
    for rid in rel_ids {
        if let Some(rel) = tx.rel(rid).unwrap() {
            assert!(
                tx.node(rel.src).unwrap().is_some(),
                "rel {rid} has invisible src"
            );
            assert!(
                tx.node(rel.dst).unwrap().is_some(),
                "rel {rid} has invisible dst"
            );
        }
    }
    let mut node_ids = Vec::new();
    db.nodes().for_each_live(|id, _| node_ids.push(id));
    for nid in node_ids {
        if tx.node(nid).unwrap().is_some() {
            // Both adjacency walks must terminate without panicking.
            tx.for_each_rel(nid, Dir::Out, None, |_, _| {}).unwrap();
            tx.for_each_rel(nid, Dir::In, None, |_, _| {}).unwrap();
        }
    }
}

#[test]
fn crash_at_every_flush_point_recovers_atomically() {
    let path = tmpfile("flushsweep");

    // Base graph.
    let (hub, spoke);
    {
        let db = GraphDb::create(
            DbOptions::pmem(&path, 96 << 20)
                .profile(DeviceProfile::dram())
                .crash_tracking(true),
        )
        .unwrap();
        let mut tx = db.begin();
        hub = tx
            .create_node("Hub", &[("marker", Value::Int(0)), ("gen", Value::Int(0))])
            .unwrap();
        spoke = tx.create_node("Spoke", &[]).unwrap();
        tx.create_rel(hub, "LINK", spoke, &[]).unwrap();
        tx.commit().unwrap();
        std::mem::forget(db); // keep the file as-is for the sweep loop
    }

    let mut committed_gen = 0i64;
    for crash_at in (0..90i64).step_by(5) {
        let db = GraphDb::open(&path, DeviceProfile::dram()).unwrap();
        // Re-arm tracking is not possible post-open; instead re-create the
        // adversary via injection only (tracking not needed: DropUnflushed
        // is emulated by the torn-free KeepAll + undo-log recovery). To
        // keep the strong adversary, copy into a tracked pool is overkill —
        // the pmem/gtxn layers already sweep with tracking; here we verify
        // the ENGINE path: crash mid-transaction, reopen, verify.
        let attempt_gen = committed_gen + 1;
        db.pool().inject_crash_after_flushes(crash_at);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut tx = db.begin();
            let n = tx
                .create_node("Extra", &[("marker", Value::Int(attempt_gen))])
                .unwrap();
            tx.create_rel(hub, "LINK", n, &[("w", Value::Int(attempt_gen))])
                .unwrap();
            tx.set_prop(PropOwner::Node(hub), "gen", Value::Int(attempt_gen))
                .unwrap();
            tx.commit()
        }));
        db.pool().clear_crash_injection();
        let committed = matches!(outcome, Ok(Ok(())));
        if committed {
            committed_gen = attempt_gen;
        }
        std::mem::forget(db); // "power failure": no clean shutdown

        // Restart.
        let db = GraphDb::open(&path, DeviceProfile::dram()).unwrap();
        check_integrity(&db);
        let tx = db.begin();
        let gen = tx
            .prop(PropOwner::Node(hub), "gen")
            .unwrap()
            .and_then(|v| v.as_int())
            .unwrap();
        assert_eq!(
            gen, committed_gen,
            "crash_at={crash_at}: recovered gen must match the committed one"
        );
        // All-or-nothing: the Extra node of generation g exists iff the
        // hub's gen reached g.
        let hits = tx
            .lookup_nodes("Extra", "marker", &Value::Int(attempt_gen))
            .unwrap();
        if committed {
            assert_eq!(hits.len(), 1, "crash_at={crash_at}: committed txn lost");
            assert_eq!(gen, attempt_gen);
        } else {
            assert!(
                hits.is_empty(),
                "crash_at={crash_at}: uncommitted node visible"
            );
        }
        drop(tx);
        std::mem::forget(db);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn crash_point_payload_is_identifiable() {
    // The injected panic carries CrashPoint so tests can distinguish it
    // from real failures.
    let db = GraphDb::create(
        DbOptions::dram(64 << 20).crash_tracking(true),
    )
    .unwrap();
    db.pool().inject_crash_after_flushes(0);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut tx = db.begin();
        tx.create_node("N", &[]).unwrap();
        tx.commit().unwrap();
    }));
    db.pool().clear_crash_injection();
    let err = r.unwrap_err();
    assert!(err.downcast_ref::<CrashPoint>().is_some());
    db.pool().simulate_crash(CrashPolicy::DropUnflushed).unwrap();
}
