//! Property-based tests of the core invariants (proptest).
//!
//! * ChunkedTable behaves like a model map under arbitrary
//!   insert/delete/overwrite sequences.
//! * The three B+-tree flavours agree with `BTreeMap` under arbitrary
//!   insert/remove/lookup/range sequences.
//! * Dictionary encoding is a bijection.
//! * JIT-compiled pipelines equal interpreted pipelines on arbitrary
//!   generated plans and data.
//! * A crash at ANY flush point during an MVTO commit recovers to exactly
//!   the pre- or post-transaction state.
//! * Zone-map pruning and the clean-chunk fast path never change scan
//!   results, under arbitrary interleavings of committed/aborted updates.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use pmemgraph::gjit::JitEngine;
use pmemgraph::gquery::plan::RelEnd;
use pmemgraph::gquery::{execute_collect, execute_parallel, CmpOp, Op, PPar, Plan, Pred, Proj};
use pmemgraph::graphcore::{DbOptions, Dir, GraphDb, PropOwner, Value};
use pmemgraph::gstore::{BPlusTree, ChunkedTable, Dictionary, IndexKind, NodeRecord, PVal};
use pmemgraph::gtxn::{TableTag, TxnManager};
use pmemgraph::pmem::{CrashPolicy, Pool};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// ChunkedTable vs model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TableOp {
    Insert(u64),
    Delete(usize),
    Overwrite(usize, u64),
}

fn table_ops() -> impl Strategy<Value = Vec<TableOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..1_000_000).prop_map(TableOp::Insert),
            (0usize..64).prop_map(TableOp::Delete),
            ((0usize..64), (0u64..1_000_000)).prop_map(|(i, v)| TableOp::Overwrite(i, v)),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_table_matches_model(ops in table_ops()) {
        let pool = Arc::new(Pool::volatile(64 << 20).unwrap());
        let table: ChunkedTable<NodeRecord> = ChunkedTable::create(pool).unwrap();
        let mut model: HashMap<u64, u64> = HashMap::new(); // id -> label value
        let mut live: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                TableOp::Insert(v) => {
                    let id = table.insert(&NodeRecord::new(v as u32)).unwrap();
                    prop_assert!(!model.contains_key(&id), "fresh id must be unused");
                    model.insert(id, v);
                    live.push(id);
                }
                TableOp::Delete(i) if !live.is_empty() => {
                    let id = live.remove(i % live.len());
                    table.delete(id);
                    model.remove(&id);
                }
                TableOp::Overwrite(i, v) if !live.is_empty() => {
                    let id = live[i % live.len()];
                    let mut rec = table.get(id);
                    rec.label = v as u32;
                    table.write(id, &rec);
                    model.insert(id, v);
                }
                _ => {}
            }
        }
        prop_assert_eq!(table.live_count(), model.len());
        let mut seen = 0;
        table.for_each_live(|id, rec| {
            assert_eq!(rec.label as u64, *model.get(&id).expect("live id in model") & 0xFFFF_FFFF);
            seen += 1;
        });
        prop_assert_eq!(seen, model.len());
    }
}

// ---------------------------------------------------------------------
// B+-tree vs BTreeMap
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, u64),
    Remove(usize),
    Lookup(u64),
    Range(u64, u64),
}

fn tree_ops() -> impl Strategy<Value = Vec<TreeOp>> {
    prop::collection::vec(
        prop_oneof![
            ((0u64..512), (0u64..1000)).prop_map(|(k, v)| TreeOp::Insert(k, v)),
            (0usize..64).prop_map(TreeOp::Remove),
            (0u64..512).prop_map(TreeOp::Lookup),
            ((0u64..512), (0u64..512)).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn btree_all_kinds_match_model(ops in tree_ops()) {
        let pool = Arc::new(Pool::volatile(256 << 20).unwrap());
        let trees = [
            BPlusTree::create(IndexKind::Volatile, None).unwrap(),
            BPlusTree::create(IndexKind::Persistent, Some(pool.clone())).unwrap(),
            BPlusTree::create(IndexKind::Hybrid, Some(pool.clone())).unwrap(),
        ];
        let mut model: BTreeMap<(u64, u64), ()> = BTreeMap::new();
        let mut entries: Vec<(u64, u64)> = Vec::new();

        for op in ops {
            match op {
                TreeOp::Insert(k, v)
                    if model.insert((k, v), ()).is_none() => {
                        for t in &trees {
                            t.insert(k, v).unwrap();
                        }
                        entries.push((k, v));
                    }
                TreeOp::Remove(i) if !entries.is_empty() => {
                    let (k, v) = entries.remove(i % entries.len());
                    model.remove(&(k, v));
                    for t in &trees {
                        prop_assert!(t.remove(k, v), "remove present entry");
                    }
                }
                TreeOp::Lookup(k) => {
                    let mut expect: Vec<u64> = model
                        .range((k, 0)..=(k, u64::MAX))
                        .map(|((_, v), _)| *v)
                        .collect();
                    expect.sort_unstable();
                    for t in &trees {
                        let mut got = t.lookup(k);
                        got.sort_unstable();
                        prop_assert_eq!(&got, &expect, "kind {:?} key {}", t.kind(), k);
                    }
                }
                TreeOp::Range(lo, hi) => {
                    let expect: Vec<(u64, u64)> = model
                        .range((lo, 0)..=(hi, u64::MAX))
                        .map(|(&kv, _)| kv)
                        .collect();
                    for t in &trees {
                        let mut got = Vec::new();
                        t.range(lo, hi, |k, v| got.push((k, v)));
                        // Key-sorted; values within a key unspecified.
                        let mut g = got.clone();
                        g.sort_unstable();
                        let mut e = expect.clone();
                        e.sort_unstable();
                        prop_assert_eq!(g, e, "kind {:?} range {}..={}", t.kind(), lo, hi);
                    }
                }
                _ => {}
            }
        }
        for t in &trees {
            prop_assert_eq!(t.count_entries(), model.len());
        }
    }
}

// ---------------------------------------------------------------------
// Dictionary bijectivity
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dictionary_is_bijective(strings in prop::collection::vec("[a-zA-Z0-9 _-]{0,40}", 1..200)) {
        let pool = Arc::new(Pool::volatile(128 << 20).unwrap());
        let dict = Dictionary::create(pool).unwrap();
        let mut seen: HashMap<String, u32> = HashMap::new();
        for s in &strings {
            let code = dict.get_or_insert(s).unwrap();
            if let Some(&prev) = seen.get(s) {
                prop_assert_eq!(code, prev, "same string, same code");
            } else {
                prop_assert!(!seen.values().any(|&c| c == code), "codes unique");
                seen.insert(s.clone(), code);
            }
        }
        for (s, &code) in &seen {
            let resolved = dict.string_of(code);
            prop_assert_eq!(resolved.as_deref(), Some(s.as_str()));
            prop_assert_eq!(dict.code_of(s), Some(code));
        }
    }
}

// ---------------------------------------------------------------------
// JIT vs interpreter on arbitrary plans
// ---------------------------------------------------------------------

fn small_graph(seed: u64) -> (GraphDb, u32, u32, u32, u32) {
    let db = GraphDb::create(DbOptions::dram(256 << 20)).unwrap();
    let label = db.intern("N").unwrap();
    let rel = db.intern("E").unwrap();
    let ka = db.intern("a").unwrap();
    let kb = db.intern("b").unwrap();
    let mut tx = db.begin();
    let mut x = seed | 1;
    let n = 80;
    let ids: Vec<u64> = (0..n)
        .map(|i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            tx.create_node(
                "N",
                &[
                    ("a", Value::Int((x >> 33) as i64 % 50)),
                    ("b", Value::Int(i as i64)),
                ],
            )
            .unwrap()
        })
        .collect();
    for i in 0..n {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (x >> 33) as usize % n;
        if j != i {
            tx.create_rel(ids[i], "E", ids[j], &[]).unwrap();
        }
    }
    tx.commit().unwrap();
    (db, label, rel, ka, kb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn jit_equals_interpreter(
        seed in 1u64..1_000_000,
        cmp_idx in 0usize..6,
        threshold in 0i64..50,
        hops in 0usize..3,
        key_pick in proptest::bool::ANY,
    ) {
        let (db, label, rel, ka, kb) = small_graph(seed);
        let cmp = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][cmp_idx];
        let key = if key_pick { ka } else { kb };
        let mut ops = vec![
            Op::NodeScan { label: Some(label) },
            Op::Filter(Pred::Prop {
                col: 0,
                key,
                op: cmp,
                value: PPar::Const(PVal::Int(threshold)),
            }),
        ];
        let mut col = 0;
        for h in 0..hops {
            let dir = if h % 2 == 0 { Dir::Out } else { Dir::In };
            ops.push(Op::ForeachRel { col, dir, label: Some(rel) });
            ops.push(Op::GetNode {
                col: col + 1,
                end: if dir == Dir::Out { RelEnd::Dst } else { RelEnd::Src },
            });
            col += 2;
        }
        ops.push(Op::Project(vec![
            Proj::Prop { col, key: kb },
            Proj::Id { col },
        ]));
        let plan = Plan::new(ops, 0);

        let mut tx = db.begin();
        let interp = execute_collect(&plan, &mut tx, &[]).unwrap();
        drop(tx);
        let engine = JitEngine::new();
        let mut tx = db.begin();
        let jit = pmemgraph::gjit::execute_jit(&engine, &plan, &mut tx, &[]).unwrap();
        prop_assert_eq!(jit, interp);
    }
}

// ---------------------------------------------------------------------
// Crash sweep: MVTO commit is atomic at every flush point
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mvto_commit_atomic_under_random_crashes(
        crash_at in 0i64..60,
        torn_seed in 0u64..10_000,
        n_updates in 1usize..4,
    ) {
        let pool = Arc::new(Pool::volatile(64 << 20).unwrap().with_crash_tracking());
        let mgr = TxnManager::create(pool.clone()).unwrap();
        let nodes: ChunkedTable<NodeRecord> = ChunkedTable::create(pool.clone()).unwrap();
        let rels: ChunkedTable<pmemgraph::gstore::RelRecord> =
            ChunkedTable::create(pool.clone()).unwrap();
        let props: ChunkedTable<pmemgraph::gstore::PropRecord> =
            ChunkedTable::create(pool.clone()).unwrap();
        let nroot = nodes.root_off();

        let mut t0 = mgr.begin();
        let ids: Vec<u64> = (0..n_updates)
            .map(|i| mgr.insert(&mut t0, TableTag::Node, &nodes, NodeRecord::new(i as u32)).unwrap())
            .collect();
        mgr.commit(t0, &nodes, &rels, &props).unwrap();

        let mut t1 = mgr.begin();
        for &id in &ids {
            mgr.update(&mut t1, TableTag::Node, &nodes, id, |n| n.label += 100).unwrap();
        }
        pool.inject_crash_after_flushes(crash_at);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mgr.commit(t1, &nodes, &rels, &props)
        }));
        pool.clear_crash_injection();
        if outcome.is_ok() {
            return Ok(()); // commit completed before the crash point
        }
        pool.simulate_crash(CrashPolicy::Torn(torn_seed)).unwrap();
        pool.recover().unwrap();
        let nodes2: ChunkedTable<NodeRecord> = ChunkedTable::open(pool.clone(), nroot).unwrap();
        let mgr2 = TxnManager::open(pool.clone(), mgr.ts_slot());
        mgr2.recover_table(&nodes2);

        let labels: Vec<u32> = ids.iter().map(|&id| nodes2.get(id).label).collect();
        let all_old = labels.iter().enumerate().all(|(i, &l)| l == i as u32);
        let all_new = labels.iter().enumerate().all(|(i, &l)| l == i as u32 + 100);
        prop_assert!(all_old || all_new, "torn commit: {labels:?}");
        for &id in &ids {
            prop_assert_eq!(nodes2.get(id).txn_id, 0, "stale lock");
        }
    }
}

// ---------------------------------------------------------------------
// Read acceleration: pruned scans equal the unpruned interpreter
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Zone-map pruning and the clean-chunk fast path are pure
    /// accelerations: under randomly interleaved committed and aborted
    /// updates (which dirty chunks, widen zones and grow version chains),
    /// a selective scan with acceleration on — sequential and parallel —
    /// returns exactly what the unaccelerated interpreter returns.
    #[test]
    fn read_accel_never_changes_scan_results(
        seed in 1u64..1_000_000,
        ops in prop::collection::vec(
            ((0usize..512), (0i64..300), proptest::bool::ANY),
            1..40,
        ),
        lo in 0i64..280,
        width in 1i64..60,
    ) {
        let db = GraphDb::create(DbOptions::dram(256 << 20)).unwrap();
        // Registered index key => zone maps are maintained for (N, a).
        db.create_index("N", "a", IndexKind::Volatile).unwrap();
        let mut x = seed | 1;
        let mut tx = db.begin();
        let ids: Vec<u64> = (0..512usize)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                // Clustered base value (tight zones, so pruning actually
                // fires) plus a little seeded jitter.
                let v = (i as i64) / 2 + ((x >> 33) as i64 % 8);
                tx.create_node("N", &[("a", Value::Int(v))]).unwrap()
            })
            .collect();
        tx.commit().unwrap();

        for (i, val, commit) in ops {
            let mut tx = db.begin();
            tx.set_prop(PropOwner::Node(ids[i % ids.len()]), "a", Value::Int(val))
                .unwrap();
            if commit {
                tx.commit().unwrap();
            } else {
                tx.abort();
            }
        }

        let label = db.intern("N").unwrap();
        let key = db.intern("a").unwrap();
        let plan = Plan::new(
            vec![
                Op::NodeScan { label: Some(label) },
                Op::Filter(Pred::Prop {
                    col: 0,
                    key,
                    op: CmpOp::Ge,
                    value: PPar::Const(PVal::Int(lo)),
                }),
                Op::Filter(Pred::Prop {
                    col: 0,
                    key,
                    op: CmpOp::Le,
                    value: PPar::Const(PVal::Int(lo + width)),
                }),
                Op::Project(vec![Proj::Prop { col: 0, key }, Proj::Id { col: 0 }]),
            ],
            0,
        );

        db.set_read_accel(false);
        let mut rtx = db.begin();
        let unpruned = execute_collect(&plan, &mut rtx, &[]).unwrap();
        drop(rtx);

        db.set_read_accel(true);
        let mut rtx = db.begin();
        let pruned = execute_collect(&plan, &mut rtx, &[]).unwrap();
        prop_assert_eq!(&pruned, &unpruned, "sequential pruned scan diverged");
        for threads in [2usize, 4] {
            let par = execute_parallel(&plan, &db, &rtx, &[], threads).unwrap();
            prop_assert_eq!(&par, &unpruned, "parallel({}) pruned scan diverged", threads);
        }
    }
}

// ---------------------------------------------------------------------
// Pool-level durability: whatever was persisted survives any crash policy;
// unflushed words are old-or-new, never torn.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn persisted_writes_survive_crashes(
        ops in prop::collection::vec(
            ((0u64..64), any::<u64>(), any::<bool>()),
            1..60
        ),
        policy in 0usize..3,
        seed in any::<u64>(),
    ) {
        let pool = Pool::volatile(8 << 20).unwrap().with_crash_tracking();
        let base = pool.alloc(64 * 8).unwrap();
        assert_eq!(base % 64, 0, "test assumes line-aligned region");
        // Model: word -> (last persisted value, last written value). A
        // persist flushes the whole 64-byte cache line, so all 8 words of
        // the line become durable at their currently-written values — the
        // same line granularity the clwb emulation implements.
        let mut model: Vec<(u64, u64)> = vec![(0, 0); 64];
        for (slot, val, persist) in ops {
            let off = base + slot * 8;
            pool.write_u64(off, val);
            model[slot as usize].1 = val;
            if persist {
                pool.persist(off, 8);
                let line_start = (slot as usize / 8) * 8;
                for m in model[line_start..line_start + 8].iter_mut() {
                    m.0 = m.1;
                }
            }
        }
        let policy = match policy {
            0 => CrashPolicy::DropUnflushed,
            1 => CrashPolicy::KeepAll,
            _ => CrashPolicy::Torn(seed),
        };
        pool.simulate_crash(policy).unwrap();
        for (slot, &(persisted, written)) in model.iter().enumerate() {
            let now = pool.read_u64(base + slot as u64 * 8);
            prop_assert!(
                now == persisted || now == written,
                "slot {slot}: {now} is neither persisted {persisted} nor written {written}"
            );
            if matches!(policy, CrashPolicy::KeepAll) {
                prop_assert_eq!(now, written);
            }
        }
    }
}
