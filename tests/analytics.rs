//! Integration tests for the OLAP lane: snapshot consistency against the
//! interpreted transactional scan, kernel equivalence on an LDBC-scale
//! fixture, and crash consistency of the tiered durability ladder.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use pmemgraph::ganalytics::{algo, CsrSnapshot, SnapshotSpec};
use pmemgraph::gquery::ExecCtx;
use pmemgraph::graphcore::{DbOptions, GraphDb, GraphView, PropOwner, Value};
use pmemgraph::gstore::PVal;
use pmemgraph::gtxn::SyncMode;
use pmemgraph::ldbc::{generate, SnbParams};
use pmemgraph::pmem::{CrashPolicy, DeviceProfile};
use proptest::prelude::*;

fn tmpfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pmemgraph-analytics-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

// ---------------------------------------------------------------------
// 1. Snapshot consistency: CsrSnapshot at read timestamp T must match the
//    interpreted transactional scan at T, after any interleaving of
//    committed and aborted writer transactions.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    AddNode(u8),
    AddRel(u8, u8),
    SetProp(u8, i64),
    DelNode(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..2).prop_map(Op::AddNode),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::AddRel(a, b)),
        2 => (any::<u8>(), -50i64..50).prop_map(|(a, v)| Op::SetProp(a, v)),
        1 => any::<u8>().prop_map(Op::DelNode),
    ]
}

fn pick(pool: &[u64], idx: u8) -> Option<u64> {
    if pool.is_empty() {
        None
    } else {
        Some(pool[idx as usize % pool.len()])
    }
}

/// The naive interpreted reference at the snapshot's own read timestamp:
/// visible nodes in id order, visible edges whose endpoints are both
/// visible, and the `v` property per node.
fn interpreted_reference(
    db: &GraphDb,
    txn: &pmemgraph::graphcore::GraphTxn<'_>,
    key: u32,
) -> (Vec<u64>, Vec<(u64, u64)>, Vec<PVal>) {
    let mut ids = Vec::new();
    db.nodes().for_each_live(|id, _| ids.push(id));
    ids.sort_unstable();
    let mut nodes = Vec::new();
    for id in ids {
        if txn.node(id).unwrap().is_some() {
            nodes.push(id);
        }
    }
    let visible: BTreeSet<u64> = nodes.iter().copied().collect();
    let mut rel_ids = Vec::new();
    db.rels().for_each_live(|id, _| rel_ids.push(id));
    let mut edges = Vec::new();
    for rid in rel_ids {
        if let Some(rel) = txn.rel(rid).unwrap() {
            if visible.contains(&rel.src) && visible.contains(&rel.dst) {
                edges.push((rel.src, rel.dst));
            }
        }
    }
    edges.sort_unstable();
    let props = nodes
        .iter()
        .map(|&id| {
            txn.prop_pval(PropOwner::Node(id), key)
                .unwrap()
                .unwrap_or(PVal::Null)
        })
        .collect();
    (nodes, edges, props)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn snapshot_matches_interpreted_scan_at_same_timestamp(
        script in proptest::collection::vec(
            (proptest::collection::vec(op_strategy(), 1..6), any::<bool>()),
            1..10,
        )
    ) {
        let db = GraphDb::create(DbOptions::dram(64 << 20)).unwrap();
        let mut pool: Vec<u64> = Vec::new();

        for (ops, commit) in &script {
            let mut tx = db.begin();
            let mut local_new: Vec<u64> = Vec::new();
            let mut local_del: Vec<u64> = Vec::new();
            for op in ops {
                // Ops may legitimately fail (e.g. deleting twice); failed
                // ops just don't change state.
                let reachable: Vec<u64> = pool
                    .iter()
                    .chain(local_new.iter())
                    .copied()
                    .filter(|id| !local_del.contains(id))
                    .collect();
                match op {
                    Op::AddNode(l) => {
                        let label = if *l == 0 { "A" } else { "B" };
                        if let Ok(id) = tx.create_node(label, &[]) {
                            local_new.push(id);
                        }
                    }
                    Op::AddRel(a, b) => {
                        if let (Some(s), Some(d)) = (pick(&reachable, *a), pick(&reachable, *b)) {
                            let _ = tx.create_rel(s, "E", d, &[]);
                        }
                    }
                    Op::SetProp(a, v) => {
                        if let Some(id) = pick(&reachable, *a) {
                            let _ = tx.set_prop(PropOwner::Node(id), "v", Value::Int(*v));
                        }
                    }
                    Op::DelNode(a) => {
                        if let Some(id) = pick(&reachable, *a) {
                            if tx.delete_node(id).is_ok() {
                                local_del.push(id);
                            }
                        }
                    }
                }
            }
            // An un-committed tx rolls back when dropped here.
            if *commit && tx.commit().is_ok() {
                pool.retain(|id| !local_del.contains(id));
                pool.extend(local_new.iter().filter(|id| !local_del.contains(*id)));
            }
        }

        // All writers are finished; snapshot and interpret at ONE timestamp.
        let key = db.intern("v").unwrap();
        let txn = db.begin();
        let spec = SnapshotSpec { node_props: vec![key], ..Default::default() };
        let snap = CsrSnapshot::build_at(&txn, spec).unwrap();
        let (ref_nodes, ref_edges, ref_props) = interpreted_reference(&db, &txn, key);

        prop_assert_eq!(snap.nodes(), &ref_nodes[..]);
        let mut snap_edges: Vec<(u64, u64)> = Vec::new();
        for u in 0..snap.node_count() as u32 {
            for &v in snap.out(u) {
                snap_edges.push((snap.node_id(u), snap.node_id(v)));
            }
        }
        snap_edges.sort_unstable();
        prop_assert_eq!(snap_edges, ref_edges);
        let col = snap.prop_col(key).expect("requested column must exist");
        prop_assert_eq!(col, &ref_props[..]);
    }
}

// ---------------------------------------------------------------------
// 2. Kernel equivalence on an LDBC-scale fixture.
// ---------------------------------------------------------------------

#[test]
fn kernels_match_interpreted_reference_on_snb_fixture() {
    let snb = generate(&SnbParams::tiny(7), DbOptions::dram(1 << 30)).unwrap();
    let db = &snb.db;
    let ctx = ExecCtx::new(&[]);
    let workers = 4;

    // Whole graph.
    let snap = CsrSnapshot::build(db, SnapshotSpec::default()).unwrap();
    let txn = db.begin();
    let view = GraphView::build(&txn, None, None).unwrap();
    let reference = view.pagerank_pull(15, 0.85);
    let kernel = algo::pagerank(&snap, 15, 0.85, workers, &ctx).unwrap();
    assert_eq!(kernel.len(), reference.len());
    for (i, (k, r)) in kernel.iter().zip(&reference).enumerate() {
        assert_eq!(k.to_bits(), r.to_bits(), "pagerank bit mismatch at {i}");
    }
    assert_eq!(
        algo::wcc(&snap, workers, &ctx).unwrap(),
        view.connected_components()
    );
    let source = snap.nodes()[0];
    let depths = algo::bfs(&snap, source, workers, &ctx).unwrap();
    let ref_bfs = view.bfs(source);
    for (i, &id) in snap.nodes().iter().enumerate() {
        let expect = ref_bfs.get(&id).copied().unwrap_or(algo::UNREACHED);
        assert_eq!(depths[i], expect, "bfs depth mismatch at node {id}");
    }
    drop(txn);

    // Person/KNOWS sub-graph: same dense ordering, same structure.
    let person = db.dict().code_of("Person").expect("Person label");
    let knows = db.dict().code_of("KNOWS").expect("KNOWS label");
    let fsnap = CsrSnapshot::build(
        db,
        SnapshotSpec {
            node_label: Some(person),
            rel_label: Some(knows),
            node_props: Vec::new(),
        },
    )
    .unwrap();
    let txn = db.begin();
    let fview = GraphView::build(&txn, Some(person), Some(knows)).unwrap();
    let freference = fview.pagerank_pull(15, 0.85);
    let fkernel = algo::pagerank(&fsnap, 15, 0.85, workers, &ctx).unwrap();
    assert_eq!(fkernel.len(), freference.len());
    assert_eq!(fkernel.len(), snb.data.person_ids.len());
    for (i, (k, r)) in fkernel.iter().zip(&freference).enumerate() {
        assert_eq!(k.to_bits(), r.to_bits(), "filtered pagerank mismatch at {i}");
    }
    assert_eq!(
        algo::wcc(&fsnap, workers, &ctx).unwrap(),
        fview.connected_components()
    );
}

// ---------------------------------------------------------------------
// 3. Crash consistency of the durability ladder: `every=N` and
//    `checkpoint` may lose the un-checkpointed tail, but recovery is
//    always a clean prefix and the engine stays usable.
// ---------------------------------------------------------------------

fn ladder_crash_round(
    mode: SyncMode,
    tag: &str,
    crash_at: i64,
    policy: CrashPolicy,
) {
    const TXNS: u64 = 12;
    const CKPT_EVERY: u64 = 4;
    let path = tmpfile(&format!("ladder-{tag}-{crash_at}"));
    let db = GraphDb::create(
        DbOptions::pmem(&path, 96 << 20)
            .profile(DeviceProfile::dram())
            .crash_tracking(true),
    )
    .unwrap();
    db.set_group_commit(false);
    db.set_sync_mode(mode).unwrap();

    let committed = AtomicU64::new(0);
    let checkpointed = AtomicU64::new(0);
    db.pool().inject_crash_after_flushes(crash_at);
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for i in 0..TXNS {
            let mut tx = db.begin();
            tx.create_node("Item", &[("seq", Value::Int(i as i64))])
                .unwrap();
            tx.commit().unwrap();
            committed.store(i + 1, Ordering::SeqCst);
            if (i + 1) % CKPT_EVERY == 0 {
                db.checkpoint().unwrap();
                checkpointed.store(i + 1, Ordering::SeqCst);
            }
        }
    }));
    db.pool().clear_crash_injection();
    db.pool().simulate_crash(policy).unwrap();
    let committed = committed.load(Ordering::SeqCst);
    let checkpointed = checkpointed.load(Ordering::SeqCst);
    std::mem::forget(db); // power failure: no clean shutdown

    // Restart and verify: recovered markers are a clean prefix bounded by
    // [last completed checkpoint, commits at crash time].
    let db = GraphDb::open(&path, DeviceProfile::dram()).unwrap();
    let tx = db.begin();
    let mut ids = Vec::new();
    db.nodes().for_each_live(|id, _| ids.push(id));
    let mut markers = BTreeSet::new();
    for id in ids {
        if tx.node(id).unwrap().is_some() {
            let seq = tx
                .prop(PropOwner::Node(id), "seq")
                .unwrap()
                .and_then(|v| v.as_int())
                .expect("every Item carries seq");
            markers.insert(seq as u64);
        }
    }
    let recovered = markers.len() as u64;
    let expect: BTreeSet<u64> = (0..recovered).collect();
    assert_eq!(
        markers, expect,
        "{tag} crash_at={crash_at}: recovered set must be a prefix"
    );
    assert!(
        recovered >= checkpointed,
        "{tag} crash_at={crash_at}: checkpointed data lost ({recovered} < {checkpointed})"
    );
    assert!(
        recovered <= committed,
        "{tag} crash_at={crash_at}: phantom commits ({recovered} > {committed})"
    );
    drop(tx);

    // The engine is fully usable after recovery.
    let mut tx = db.begin();
    let n = tx.create_node("Post", &[("seq", Value::Int(999))]).unwrap();
    tx.commit().unwrap();
    let tx = db.begin();
    assert!(tx.node(n).unwrap().is_some());
    drop(tx);
    drop(db);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn every_n_mode_recovers_a_clean_prefix_after_crash() {
    for crash_at in (0..72).step_by(8) {
        ladder_crash_round(
            SyncMode::EveryN(3),
            "every3",
            crash_at,
            CrashPolicy::DropUnflushed,
        );
        ladder_crash_round(SyncMode::EveryN(3), "every3-torn", crash_at, CrashPolicy::Torn(7));
    }
}

#[test]
fn checkpoint_only_mode_recovers_a_clean_prefix_after_crash() {
    for crash_at in (0..72).step_by(8) {
        ladder_crash_round(
            SyncMode::CheckpointOnly,
            "ckpt",
            crash_at,
            CrashPolicy::DropUnflushed,
        );
        ladder_crash_round(
            SyncMode::CheckpointOnly,
            "ckpt-torn",
            crash_at,
            CrashPolicy::Torn(42),
        );
    }
}
