//! Crash consistency of the group-commit pipeline (DESIGN.md §10).
//!
//! Several writers commit pair-updates (two records set to the same
//! generation) through the grouped commit path while a crash is injected
//! at a randomized flush point. After `simulate_crash(DropUnflushed)` and
//! full recovery, every transaction — whether it committed alone or merged
//! into a group — must be all-or-nothing:
//!
//! * both records of a pair carry the same generation (no half-applied
//!   transaction, so no half-applied *group* either),
//! * every commit that was acknowledged before the crash is durable,
//! * no generation beyond the attempted range appears, and
//! * recovery leaves no write locks behind.
//!
//! A deterministic sweep covers the early flush points densely; the
//! proptest widens the writer count and crash point randomly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

use pmemgraph::graphcore::{DbOptions, GraphDb, PropOwner, Value};
use pmemgraph::pmem::{CrashPolicy, CrashPoint, DeviceProfile};
use proptest::prelude::*;

fn tmpfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pmemgraph-group-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

fn gen_of(db: &GraphDb, id: u64) -> i64 {
    db.begin()
        .prop(PropOwner::Node(id), "g")
        .unwrap()
        .and_then(|v| v.as_int())
        .unwrap()
}

/// One crash scenario: `nthreads` writers, up to `per_thread` pair-updates
/// each, crash after `crash_at` flushed lines. Returns nothing; panics on
/// any violated invariant.
fn run_case(name: &str, crash_at: i64, nthreads: usize, per_thread: usize) {
    let path = tmpfile(name);
    let db = GraphDb::create(
        DbOptions::pmem(&path, 64 << 20)
            .profile(DeviceProfile::dram())
            .crash_tracking(true),
    )
    .unwrap();
    db.set_group_commit(true);

    // Thread-private record pairs, committed before the adversary arms.
    let pairs: Vec<(u64, u64)> = (0..nthreads)
        .map(|_| {
            let mut tx = db.begin();
            let a = tx.create_node("P", &[("g", Value::Int(0))]).unwrap();
            let b = tx.create_node("P", &[("g", Value::Int(0))]).unwrap();
            tx.commit().unwrap();
            (a, b)
        })
        .collect();

    db.pool().inject_crash_after_flushes(crash_at);
    let crashed = AtomicBool::new(false);
    // Highest generation whose commit was acknowledged, per thread.
    let acked: Vec<i64> = std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .iter()
            .map(|&(a, b)| {
                let db = &db;
                let crashed = &crashed;
                s.spawn(move || {
                    let mut acked = 0i64;
                    for g in 1..=per_thread as i64 {
                        if crashed.load(Ordering::Relaxed) {
                            break;
                        }
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            let mut tx = db.begin();
                            tx.set_prop(PropOwner::Node(a), "g", Value::Int(g))?;
                            tx.set_prop(PropOwner::Node(b), "g", Value::Int(g))?;
                            tx.commit()
                        }));
                        match r {
                            Ok(Ok(())) => acked = g,
                            // Pipeline poisoned (or similar post-crash
                            // failure): not acknowledged, stop writing.
                            Ok(Err(_)) => break,
                            Err(p) => {
                                assert!(
                                    p.downcast_ref::<CrashPoint>().is_some(),
                                    "only the injected crash may panic"
                                );
                                crashed.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    acked
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Power failure: drop every cache line that was never flushed, leave
    // the file without a clean shutdown, reopen through full recovery.
    db.pool().clear_crash_injection();
    db.pool().simulate_crash(CrashPolicy::DropUnflushed).unwrap();
    std::mem::forget(db);
    let db = GraphDb::open(&path, DeviceProfile::dram()).unwrap();

    for (t, &(a, b)) in pairs.iter().enumerate() {
        let (ga, gb) = (gen_of(&db, a), gen_of(&db, b));
        assert_eq!(
            ga, gb,
            "{name}: pair of writer {t} split by the crash ({ga} vs {gb})"
        );
        assert!(
            ga >= acked[t],
            "{name}: writer {t} lost acknowledged commit {} (found {ga})",
            acked[t]
        );
        assert!(
            ga <= per_thread as i64,
            "{name}: writer {t} shows phantom generation {ga}"
        );
    }
    db.nodes()
        .for_each_live(|id, n| assert_eq!(n.txn_id, 0, "{name}: node {id} lock leaked"));
    drop(db);
    let _ = std::fs::remove_file(&path);
}

/// Dense deterministic sweep over the first flush points, where the
/// pair-setup, first group formation and first log truncation live.
#[test]
fn grouped_commit_crash_sweep_is_atomic() {
    for crash_at in (0..48).step_by(3) {
        run_case(&format!("sweep-{crash_at}"), crash_at, 3, 6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grouped_commit_crash_is_atomic_anywhere(
        crash_at in 0i64..160,
        nthreads in 2usize..5,
        per_thread in 3usize..10,
    ) {
        run_case(
            &format!("prop-{crash_at}-{nthreads}-{per_thread}"),
            crash_at,
            nthreads,
            per_thread,
        );
    }
}
