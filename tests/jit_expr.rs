//! Expression-tier restart survival: a residual predicate compiled
//! against a file-backed [`ShardedDb`] must be served from the on-disk
//! code cache after a reopen — the warm engine reports **zero** compiles
//! while still executing the compiled function (cache hits observed, rows
//! identical).

#![cfg(target_arch = "x86_64")]

use std::sync::Arc;

use pmemgraph::gjit::{
    attach_residual_expr, expr_key, ExprSource, ExprTier, JitEngine,
};
use pmemgraph::gquery::{
    execute_collect_ctx, pred_fingerprint, CmpOp, ExecCtx, Op, PPar, Plan, Pred,
};
use pmemgraph::graphcore::shard::{ShardOptions, ShardedDb};
use pmemgraph::graphcore::{GraphDb, Value};
use pmemgraph::gstore::PVal;
use pmemgraph::pmem::DeviceProfile;

const SHARDS: usize = 2;
const ITEMS: usize = 2_000;

fn tmpfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pmemgraph-jitexpr-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    for i in 0..SHARDS {
        let _ = std::fs::remove_file(p.with_extension(format!("s{i}")));
    }
    let _ = std::fs::remove_file(p.with_extension("jitcache"));
    p
}

/// The residual the tier compiles: `v >= 100 && v <= 140` over scattered
/// values, so pruning cannot shortcut it.
fn residual(v_key: u32) -> Pred {
    Pred::And(
        Box::new(Pred::Prop {
            col: 0,
            key: v_key,
            op: CmpOp::Ge,
            value: PPar::Const(PVal::Int(100)),
        }),
        Box::new(Pred::Prop {
            col: 0,
            key: v_key,
            op: CmpOp::Le,
            value: PPar::Const(PVal::Int(140)),
        }),
    )
}

fn plan_for(item: u32, pred: &Pred) -> Plan {
    Plan::new(
        vec![
            Op::NodeScan { label: Some(item) },
            Op::Filter(pred.clone()),
            Op::Count,
        ],
        0,
    )
}

/// Run the counted plan on one shard with the expression tier armed
/// through the public attach/probe path; returns the count.
fn run_shard(engine: &Arc<JitEngine>, shard: &GraphDb, expect_compiled: bool) -> i64 {
    let item = shard.intern("Item").unwrap();
    let v = shard.intern("v").unwrap();
    let pred = residual(v);
    let plan = plan_for(item, &pred);
    let mut txn = shard.begin();
    let mut ctx = ExecCtx::new(&[]);
    let _pgo = attach_residual_expr(engine, &plan, &mut ctx);
    if expect_compiled {
        assert!(
            ctx.residual_expr.as_ref().is_some_and(|s| s.is_compiled()),
            "probe must publish cached code before the first morsel"
        );
    }
    let rows = execute_collect_ctx(&plan, &mut txn, &mut ctx).unwrap();
    ctx.residual_expr = None;
    match rows[0][0].as_pval() {
        Some(PVal::Int(n)) => n,
        other => panic!("count returned {other:?}"),
    }
}

#[test]
fn warm_reopen_executes_from_disk_cache_with_zero_compiles() {
    if !pmemgraph::gjit::expr::supported() {
        return;
    }
    let path = tmpfile("restart");
    let load = std::sync::atomic::Ordering::Relaxed;

    // Phase 1: create, populate, compile, run. The engine persists each
    // shard's residual into {path}.jitcache.
    let cold_counts: Vec<i64>;
    {
        let db = ShardedDb::create(
            ShardOptions::pmem(&path, 128 << 20)
                .profile(DeviceProfile::dram())
                .shards(SHARDS),
        )
        .unwrap();
        let mut tx = db.begin();
        for i in 0..ITEMS {
            tx.create_node("Item", &[("v", Value::Int(((i * 7) % 1000) as i64))])
                .unwrap();
        }
        tx.commit().unwrap();

        let engine = Arc::new(JitEngine::new());
        engine.attach_disk_cache(&path);
        for shard in db.shards() {
            let v = shard.intern("v").unwrap();
            let pred = residual(v);
            let key = expr_key(
                ExprSource::Node,
                pred_fingerprint(&pred),
                ExprTier::Generic,
                0,
            );
            engine
                .get_or_compile_expr(key, ExprSource::Node, &pred, None)
                .expect("residual compiles");
        }
        assert!(
            engine.stats().compiles.load(load) >= 1,
            "phase 1 must actually compile"
        );
        cold_counts = db
            .shards()
            .iter()
            .map(|s| run_shard(&engine, s, true))
            .collect();
        assert!(cold_counts.iter().sum::<i64>() > 0, "fixture must match rows");
        assert!(engine.disk_cache_len() >= 1, "compiled code must be on disk");
    }

    // Phase 2: reopen the database AND a brand-new engine. The probe must
    // find every shard's residual in the disk cache — zero compiles.
    let db = ShardedDb::open(&path, SHARDS, DeviceProfile::dram()).unwrap();
    let engine = Arc::new(JitEngine::new());
    engine.attach_disk_cache(&path);
    let warm_counts: Vec<i64> = db
        .shards()
        .iter()
        .map(|s| run_shard(&engine, s, true))
        .collect();
    assert_eq!(warm_counts, cold_counts, "warm reopen must return identical rows");
    assert_eq!(
        engine.stats().compiles.load(load),
        0,
        "warm reopen must serve compiled code from the disk cache"
    );
    assert!(
        engine.stats().cache_hits.load(load) >= SHARDS as u64,
        "each shard's probe must hit the cache"
    );
}
