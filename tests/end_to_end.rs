//! Whole-system integration: generate → query (all modes) → update →
//! crash → recover → re-query, on a persistent PMem-emulated pool.

use pmemgraph::gjit::JitEngine;
use pmemgraph::graphcore::{DbOptions, GraphDb, PropOwner, Value};
use pmemgraph::gstore::PVal;
use pmemgraph::ldbc::{self, generate, IuQuery, Mode, SnbParams, SrQuery};
use pmemgraph::pmem::{CrashPolicy, DeviceProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn tmpfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pmemgraph-e2e-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn full_lifecycle_on_persistent_pool() {
    let path = tmpfile("lifecycle");

    // Phase 1: generate on a persistent pool (no injected latency to keep
    // the test fast), run reads and updates, then simulate a crash.
    let snapshot_checks: Vec<(SrQuery, Vec<PVal>, usize)>;
    {
        let snb = generate(
            &SnbParams::tiny(2024),
            DbOptions::pmem(&path, 512 << 20)
                .profile(DeviceProfile::dram())
                .crash_tracking(true),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(77);

        // Record expected results for a few queries.
        snapshot_checks = SrQuery::ALL
            .iter()
            .map(|&q| {
                let params = q.params(&snb, &mut rng);
                let rows = ldbc::run_spec(
                    &snb.db,
                    &q.spec(&snb.codes),
                    &params,
                    &Mode::Interp,
                )
                .unwrap();
                (q, params, rows.len())
            })
            .collect();

        // Commit some updates.
        for q in IuQuery::ALL {
            let params = q.params(&snb, &mut rng);
            ldbc::run_spec(&snb.db, &q.spec(&snb.codes), &params, &Mode::Interp).unwrap();
        }

        // Start an update that will never commit, then crash.
        let person0 = {
            let tx = snb.db.begin();
            tx.lookup_nodes("Person", "id", &Value::Int(0)).unwrap()[0]
        };
        let mut tx = snb.db.begin();
        tx.set_prop(PropOwner::Node(person0), "firstName", Value::from("GONE"))
            .unwrap();
        std::mem::forget(tx);
        snb.db
            .pool()
            .simulate_crash(CrashPolicy::DropUnflushed)
            .unwrap();
        std::mem::forget(snb.db);
    }

    // Phase 2: reopen, verify recovery and re-run the recorded queries.
    {
        let db = GraphDb::open(&path, DeviceProfile::dram()).unwrap();
        let codes = ldbc::SnbCodes::resolve(&db).unwrap();

        // The aborted update vanished.
        let tx = db.begin();
        let person0 = tx.lookup_nodes("Person", "id", &Value::Int(0)).unwrap()[0];
        let name = tx.prop(PropOwner::Node(person0), "firstName").unwrap();
        assert_ne!(name, Some(Value::Str("GONE".into())));
        drop(tx);

        // Read queries still answer; committed IU effects are durable
        // (e.g. the IU1 person exists).
        for (q, params, expected) in &snapshot_checks {
            let rows =
                ldbc::run_spec(&db, &q.spec(&codes), params, &Mode::Interp).unwrap();
            // Updates may have added replies/likes, so IS7-style queries can
            // only grow; everything else must match exactly.
            assert!(
                rows.len() >= *expected,
                "{}: {} < {expected}",
                q.name(),
                rows.len()
            );
        }
        let tx = db.begin();
        let new_person = tx.lookup_nodes("Person", "id", &Value::Int(60)).unwrap();
        assert_eq!(new_person.len(), 1, "IU1 person survives the crash");
        drop(tx);

        // Phase 3: the reopened database accepts new work in every mode.
        let engine = JitEngine::new();
        let engine_arc = Arc::new(JitEngine::new());
        let spec = SrQuery::Is1.spec(&codes);
        let base = ldbc::run_spec(&db, &spec, &[PVal::Int(3)], &Mode::Interp).unwrap();
        for mode in [
            Mode::Parallel(2),
            Mode::Jit(&engine),
            Mode::Adaptive(&engine_arc, 2),
        ] {
            assert_eq!(
                ldbc::run_spec(&db, &spec, &[PVal::Int(3)], &mode).unwrap(),
                base
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pmem_and_dram_configurations_agree() {
    // The same seed must produce semantically identical graphs on both
    // devices, and every query must return identical row counts.
    let path = tmpfile("agree");
    let dram = generate(&SnbParams::tiny(5), DbOptions::dram(512 << 20)).unwrap();
    let pmem = generate(
        &SnbParams::tiny(5),
        DbOptions::pmem(&path, 512 << 20).profile(DeviceProfile::dram()),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    for q in SrQuery::ALL {
        for _ in 0..3 {
            let params = q.params(&dram, &mut rng);
            let a = ldbc::run_spec(&dram.db, &q.spec(&dram.codes), &params, &Mode::Interp)
                .unwrap();
            let b = ldbc::run_spec(&pmem.db, &q.spec(&pmem.codes), &params, &Mode::Interp)
                .unwrap();
            assert_eq!(a.len(), b.len(), "query {}", q.name());
        }
    }
    drop(pmem);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn scan_variant_equals_indexed_results() {
    // The Fig. 5 "-s" configuration (scans) must compute the same answers
    // as the indexed configuration.
    let snb = generate(&SnbParams::tiny(9), DbOptions::dram(512 << 20)).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    for q in SrQuery::ALL {
        let spec = q.spec(&snb.codes);
        let scan = spec.scan_variant();
        for _ in 0..3 {
            let params = q.params(&snb, &mut rng);
            let a = ldbc::run_spec(&snb.db, &spec, &params, &Mode::Interp).unwrap();
            let b = ldbc::run_spec(&snb.db, &scan, &params, &Mode::Interp).unwrap();
            assert_eq!(a, b, "query {}", q.name());
        }
    }
}
