//! Differential matrix over the unified morsel scheduler: every
//! morsel-splittable access path (node-chunk scan, edge-chunk scan,
//! index-range scan) with filter / expand / aggregate tails, executed
//! interpreted, parallel and adaptively — all three must produce identical
//! rows in identical (morsel-merge) order.
//!
//! The forced-slow-compile test pins the adaptive switch mid-run: an
//! injected compile delay plus interpreted-morsel pacing guarantees both
//! interpreted and compiled morsels in one execution, with results still
//! byte-identical to the sequential interpreter.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pmemgraph::gjit::{execute_adaptive, execute_adaptive_ctx, execute_jit, JitEngine};
use pmemgraph::gquery::plan::RelEnd;
use pmemgraph::gquery::{
    execute_collect, execute_collect_ctx, execute_parallel, execute_parallel_ctx, CmpOp, ExecCtx,
    FallbackReason, Op, PPar, Plan, Pred, Proj, QueryError,
};
use pmemgraph::graphcore::{DbOptions, Dir, GraphDb, PropOwner, Value};
use pmemgraph::gstore::{IndexKind, PVal};

struct Fx {
    db: GraphDb,
    item: u32,
    thing: u32,
    link: u32,
    v: u32,
    w: u32,
}

/// `n` Item nodes (`v` cycling over 0..1000), `n/2` Thing nodes (`w`
/// sequential, no index), and ~1.5n LINK rels with a `w` property.
/// `indexed` controls whether `(Item, v)` gets a B+-tree index, so range
/// scans exercise both the index path and the full-scan fallback.
fn fixture(n: usize, indexed: bool) -> Fx {
    let db = GraphDb::create(DbOptions::dram(256 << 20)).unwrap();
    if indexed {
        db.create_index("Item", "v", IndexKind::Volatile).unwrap();
    }
    let mut tx = db.begin();
    let mut items = Vec::with_capacity(n);
    for i in 0..n {
        let id = tx
            .create_node("Item", &[("v", Value::Int((i as i64 * 7) % 1000))])
            .unwrap();
        items.push(id);
    }
    for i in 0..n / 2 {
        tx.create_node("Thing", &[("w", Value::Int(i as i64))])
            .unwrap();
    }
    for (i, &a) in items.iter().enumerate() {
        let b = items[(i * 13 + 1) % items.len()];
        tx.create_rel(a, "LINK", b, &[("w", Value::Int(i as i64 % 50))])
            .unwrap();
        if i % 2 == 0 {
            let c = items[(i * 31 + 7) % items.len()];
            tx.create_rel(a, "LINK", c, &[("w", Value::Int(99))]).unwrap();
        }
    }
    tx.commit().unwrap();
    let item = db.intern("Item").unwrap();
    let thing = db.intern("Thing").unwrap();
    let link = db.intern("LINK").unwrap();
    let v = db.intern("v").unwrap();
    let w = db.intern("w").unwrap();
    Fx {
        db,
        item,
        thing,
        link,
        v,
        w,
    }
}

/// Run `plan` through all three read modes and assert identical results.
/// Returns the adaptive report's (interpreted, compiled) morsel counts.
fn assert_modes_agree(fx: &Fx, plan: &Plan, params: &[PVal]) -> (usize, usize) {
    let engine = Arc::new(JitEngine::new());
    let mut tx = fx.db.begin();
    let interp = execute_collect(plan, &mut tx, params).unwrap();
    for threads in [1, 2, 4] {
        let par = execute_parallel(plan, &fx.db, &tx, params, threads).unwrap();
        assert_eq!(par, interp, "parallel({threads}) differs from interpreter");
    }
    let report = execute_adaptive(&engine, plan, &fx.db, &tx, params, 4).unwrap();
    assert_eq!(report.rows, interp, "adaptive differs from interpreter");
    assert_eq!(
        (report.interpreted_morsels + report.compiled_morsels) as u64,
        report.profile.morsels,
        "every morsel must be counted exactly once"
    );
    (report.interpreted_morsels, report.compiled_morsels)
}

#[test]
fn node_scan_matrix() {
    let fx = fixture(640, false);
    let scan = Op::NodeScan {
        label: Some(fx.item),
    };
    let filter = Op::Filter(Pred::Prop {
        col: 0,
        key: fx.v,
        op: CmpOp::Ge,
        value: PPar::Const(PVal::Int(300)),
    });
    let plans = [
        Plan::new(vec![scan.clone()], 0),
        Plan::new(vec![scan.clone(), filter.clone()], 0),
        Plan::new(
            vec![
                scan.clone(),
                filter.clone(),
                Op::Project(vec![Proj::Prop { col: 0, key: fx.v }]),
            ],
            0,
        ),
        // Expand tail: every LINK out of every Item, plus its target.
        Plan::new(
            vec![
                scan.clone(),
                Op::ForeachRel {
                    col: 0,
                    dir: Dir::Out,
                    label: Some(fx.link),
                },
                Op::GetNode {
                    col: 1,
                    end: RelEnd::Dst,
                },
            ],
            0,
        ),
        // Aggregate + breaker tails.
        Plan::new(vec![scan.clone(), filter.clone(), Op::Count], 0),
        Plan::new(
            vec![
                scan.clone(),
                Op::OrderBy {
                    key: Proj::Prop { col: 0, key: fx.v },
                    desc: true,
                },
                Op::Limit(17),
                Op::Project(vec![Proj::Prop { col: 0, key: fx.v }]),
            ],
            0,
        ),
    ];
    for plan in &plans {
        assert_modes_agree(&fx, plan, &[]);
    }
}

#[test]
fn edge_scan_matrix() {
    let fx = fixture(640, false);
    let scan = Op::RelScan {
        label: Some(fx.link),
    };
    let filter = Op::Filter(Pred::Prop {
        col: 0,
        key: fx.w,
        op: CmpOp::Ge,
        value: PPar::Param(0),
    });
    let plans = [
        Plan::new(vec![scan.clone()], 0),
        Plan::new(vec![Op::RelScan { label: None }, Op::Count], 0),
        Plan::new(vec![scan.clone(), filter.clone()], 1),
        // Expand from the edge to its endpoints, then aggregate.
        Plan::new(
            vec![
                scan.clone(),
                filter.clone(),
                Op::GetNode {
                    col: 0,
                    end: RelEnd::Src,
                },
                Op::Project(vec![Proj::Prop { col: 1, key: fx.v }]),
            ],
            1,
        ),
        Plan::new(vec![scan.clone(), filter.clone(), Op::Count], 1),
    ];
    for plan in &plans {
        let (interp, compiled) = assert_modes_agree(&fx, plan, &[PVal::Int(25)]);
        // Edge chunks are a first-class morsel source: the adaptive run
        // must have scheduled real morsels, not one sequential task.
        assert!(
            interp + compiled > 1,
            "rel scan should split into multiple morsels"
        );
    }
}

#[test]
fn index_range_matrix() {
    for indexed in [true, false] {
        let fx = fixture(640, indexed);
        let range = |lo: i64, hi: i64| Op::IndexRangeScan {
            label: fx.item,
            key: fx.v,
            lo: PPar::Const(PVal::Int(lo)),
            hi: PPar::Const(PVal::Int(hi)),
        };
        let plans = [
            Plan::new(vec![range(100, 400)], 0),
            Plan::new(
                vec![
                    range(100, 400),
                    Op::Filter(Pred::Prop {
                        col: 0,
                        key: fx.v,
                        op: CmpOp::Ne,
                        value: PPar::Const(PVal::Int(105)),
                    }),
                    Op::Project(vec![Proj::Prop { col: 0, key: fx.v }]),
                ],
                0,
            ),
            Plan::new(vec![range(0, 999), Op::Count], 0),
            Plan::new(
                vec![
                    range(200, 800),
                    Op::OrderBy {
                        key: Proj::Prop { col: 0, key: fx.v },
                        desc: false,
                    },
                    Op::Limit(11),
                ],
                0,
            ),
            // Parameterised bounds; lo > hi must yield exactly nothing.
            Plan::new(
                vec![Op::IndexRangeScan {
                    label: fx.item,
                    key: fx.v,
                    lo: PPar::Param(0),
                    hi: PPar::Param(1),
                }],
                2,
            ),
        ];
        for plan in &plans[..4] {
            assert_modes_agree(&fx, plan, &[]);
        }
        assert_modes_agree(&fx, &plans[4], &[PVal::Int(50), PVal::Int(60)]);
        let mut tx = fx.db.begin();
        let empty =
            execute_collect(&plans[4], &mut tx, &[PVal::Int(60), PVal::Int(50)]).unwrap();
        assert!(empty.is_empty(), "inverted range must be empty");
        drop(tx);

        // The unindexed Thing label exercises the full-scan fallback of
        // the same access path.
        let plan = Plan::new(
            vec![
                Op::IndexRangeScan {
                    label: fx.thing,
                    key: fx.w,
                    lo: PPar::Const(PVal::Int(10)),
                    hi: PPar::Const(PVal::Int(200)),
                },
                Op::Project(vec![Proj::Prop { col: 0, key: fx.w }]),
            ],
            0,
        );
        assert_modes_agree(&fx, &plan, &[]);
    }
}

#[test]
fn index_range_adaptive_reports_jit_fallback() {
    let fx = fixture(640, true);
    let engine = Arc::new(JitEngine::new());
    let plan = Plan::new(
        vec![Op::IndexRangeScan {
            label: fx.item,
            key: fx.v,
            lo: PPar::Const(PVal::Int(0)),
            hi: PPar::Const(PVal::Int(999)),
        }],
        0,
    );
    let tx = fx.db.begin();
    let report = execute_adaptive(&engine, &plan, &fx.db, &tx, &[], 4).unwrap();
    // The code generator cannot address candidate batches, so compilation
    // is reported as a fallback and every morsel interprets — but the
    // morsel scheduler still ran the access path in parallel.
    assert_eq!(report.compiled_morsels, 0);
    assert!(report.interpreted_morsels > 1);
    assert_eq!(report.profile.fallback, Some(FallbackReason::JitUnsupported));
}

#[test]
fn forced_slow_compile_switches_mid_run() {
    // A non-NodeScan access path (edge chunks) through the adaptive
    // scheduler: compilation is delayed and interpreted morsels are paced,
    // so the task swap happens mid-run — some morsels interpret, the rest
    // run machine code, and the merged result is still exactly the
    // sequential interpreter's.
    let fx = fixture(1024, false);
    let engine = Arc::new(JitEngine::new());
    engine.set_compile_delay(Duration::from_millis(120));
    let plan = Plan::new(
        vec![
            Op::RelScan {
                label: Some(fx.link),
            },
            Op::Filter(Pred::Prop {
                col: 0,
                key: fx.w,
                op: CmpOp::Ge,
                value: PPar::Const(PVal::Int(10)),
            }),
        ],
        0,
    );
    let mut tx = fx.db.begin();
    let interp = execute_collect(&plan, &mut tx, &[]).unwrap();
    let morsels = fx.db.rels().chunk_count();
    assert!(morsels >= 8, "fixture must span many rel chunks");

    let mut ctx = ExecCtx::new(&[]).with_morsel_pace(Duration::from_millis(15));
    let report = execute_adaptive_ctx(&engine, &plan, &fx.db, &tx, &mut ctx, 2).unwrap();
    assert_eq!(report.rows, interp, "mid-run switch must not change results");
    assert!(report.switched, "compilation must have finished");
    assert!(
        report.interpreted_morsels > 0,
        "the compile delay must leave interpreted morsels"
    );
    assert!(
        report.compiled_morsels > 0,
        "the pacing must leave morsels for compiled code"
    );
    assert_eq!(report.interpreted_morsels + report.compiled_morsels, morsels);
}

#[test]
fn deadline_and_cancellation_surface_typed_errors() {
    let fx = fixture(320, false);
    let plan = Plan::new(
        vec![Op::NodeScan {
            label: Some(fx.item),
        }],
        0,
    );
    let tx = fx.db.begin();

    // Already-expired deadline: rejected before any morsel runs.
    let mut ctx = ExecCtx::new(&[]).with_deadline(Instant::now());
    let err = execute_parallel_ctx(&plan, &fx.db, &tx, &mut ctx, 4).unwrap_err();
    assert!(matches!(err, QueryError::DeadlineExceeded), "{err:?}");

    // Deadline expiring mid-run (paced morsels, single worker).
    let mut ctx = ExecCtx::new(&[])
        .with_deadline(Instant::now() + Duration::from_millis(40))
        .with_morsel_pace(Duration::from_millis(10));
    let err = execute_parallel_ctx(&plan, &fx.db, &tx, &mut ctx, 1).unwrap_err();
    assert!(matches!(err, QueryError::DeadlineExceeded), "{err:?}");

    // Pre-raised cancellation flag.
    let cancel = AtomicBool::new(true);
    let mut ctx = ExecCtx::new(&[]).with_cancel(&cancel);
    let err = execute_parallel_ctx(&plan, &fx.db, &tx, &mut ctx, 4).unwrap_err();
    assert!(matches!(err, QueryError::Cancelled), "{err:?}");

    // The sequential path honours the same controls.
    let mut reader = fx.db.begin();
    let mut ctx = ExecCtx::new(&[]).with_cancel(&cancel);
    let err = execute_collect_ctx(&plan, &mut reader, &mut ctx).unwrap_err();
    assert!(matches!(err, QueryError::Cancelled), "{err:?}");
}

#[test]
fn matrix_agrees_under_grouped_commits() {
    // Every row so far builds its fixture in one fat transaction, which the
    // commit pipeline never groups. This row builds and then mutates the
    // graph through many small concurrent transactions with group commit
    // enabled (DESIGN.md §10), so reads in all four execution modes run
    // against data whose commit records were batched by the leader —
    // grouping must be invisible to MVTO visibility in every mode.
    let db = GraphDb::create(DbOptions::dram(256 << 20)).unwrap();
    db.set_group_commit(true);
    assert!(db.group_commit());

    let per = 160usize;
    let ids: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|t: usize| {
                let db = &db;
                s.spawn(move || {
                    (0..per)
                        .map(|i| {
                            let mut tx = db.begin();
                            let id = tx
                                .create_node(
                                    "Item",
                                    &[("v", Value::Int(((t * per + i) * 7 % 1000) as i64))],
                                )
                                .unwrap();
                            tx.commit().unwrap();
                            id
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let item = db.intern("Item").unwrap();
    let v = db.intern("v").unwrap();
    let plan = Plan::new(
        vec![
            Op::NodeScan { label: Some(item) },
            Op::Filter(Pred::Prop {
                col: 0,
                key: v,
                op: CmpOp::Ge,
                value: PPar::Const(PVal::Int(300)),
            }),
            Op::Project(vec![Proj::Prop { col: 0, key: v }, Proj::Id { col: 0 }]),
        ],
        0,
    );

    // Reader snapshot taken before a wave of grouped updates rewrites every
    // `v` to 0: all four modes must keep serving the old snapshot.
    let mut reader = db.begin();
    let before = execute_collect(&plan, &mut reader, &[]).unwrap();
    assert!(!before.is_empty(), "fixture must have rows with v >= 300");
    std::thread::scope(|s| {
        for mine in &ids {
            let db = &db;
            s.spawn(move || {
                for &id in mine {
                    let mut tx = db.begin();
                    tx.set_prop(PropOwner::Node(id), "v", Value::Int(0)).unwrap();
                    tx.commit().unwrap();
                }
            });
        }
    });
    let engine = Arc::new(JitEngine::new());
    for threads in [1, 2, 4] {
        let par = execute_parallel(&plan, &db, &reader, &[], threads).unwrap();
        assert_eq!(par, before, "parallel({threads}) diverged under grouped commits");
    }
    let report = execute_adaptive(&engine, &plan, &db, &reader, &[], 4).unwrap();
    assert_eq!(report.rows, before, "adaptive diverged under grouped commits");
    let jit = execute_jit(&engine, &plan, &mut reader, &[]).unwrap();
    assert_eq!(jit, before, "jit one-shot diverged under grouped commits");
    drop(reader);

    // A fresh snapshot sees every grouped update, in every mode.
    let mut fresh = db.begin();
    let after = execute_collect(&plan, &mut fresh, &[]).unwrap();
    assert!(after.is_empty(), "every v was rewritten to 0");
    let count_plan = Plan::new(vec![Op::NodeScan { label: Some(item) }, Op::Count], 0);
    let total = execute_collect(&count_plan, &mut fresh, &[]).unwrap();
    for threads in [2, 4] {
        let par = execute_parallel(&count_plan, &db, &fresh, &[], threads).unwrap();
        assert_eq!(par, total, "parallel({threads}) count diverged");
    }
    let rep = execute_adaptive(&engine, &count_plan, &db, &fresh, &[], 4).unwrap();
    assert_eq!(rep.rows, total, "adaptive count diverged");
    let jit_total = execute_jit(&engine, &count_plan, &mut fresh, &[]).unwrap();
    assert_eq!(jit_total, total, "jit count diverged");

    // The pipeline must actually have grouped something across the 1280
    // small commits, or this row degenerates to the ungrouped matrix.
    let snap = db.pool().stats().snapshot();
    assert!(
        snap.grouped_txns > 0,
        "no commit group formed ({} groups, {} grouped txns)",
        snap.commit_groups,
        snap.grouped_txns
    );
}

#[test]
fn pruning_matrix_with_dirtied_chunk() {
    // Clustered fixture (`v = i`) so zone maps genuinely prune, indexed so
    // (Item, v) is a registered zone-map key. (The shared `fixture()`
    // spreads `v` over the full range inside every chunk, which never
    // prunes — useless for this row.)
    let db = GraphDb::create(DbOptions::dram(256 << 20)).unwrap();
    db.create_index("Item", "v", IndexKind::Volatile).unwrap();
    let mut tx = db.begin();
    let items: Vec<u64> = (0..640)
        .map(|i| tx.create_node("Item", &[("v", Value::Int(i))]).unwrap())
        .collect();
    tx.commit().unwrap();
    let item = db.intern("Item").unwrap();
    let v = db.intern("v").unwrap();
    let plan = Plan::new(
        vec![
            Op::NodeScan { label: Some(item) },
            Op::Filter(Pred::Prop {
                col: 0,
                key: v,
                op: CmpOp::Ge,
                value: PPar::Const(PVal::Int(600)),
            }),
            Op::Project(vec![Proj::Prop { col: 0, key: v }, Proj::Id { col: 0 }]),
        ],
        0,
    );

    // Reader snapshot taken BEFORE the writer begins, then a newer txn
    // dirties chunks inside the scanned window with uncommitted inserts:
    // the clean-chunk fast path must stand down on those chunks, and the
    // MVTO read must treat the newer uncommitted inserts as invisible
    // (not as lock conflicts) in every execution mode.
    let mut reader = db.begin();
    let mut writer = db.begin();
    for _ in 0..130 {
        writer
            .create_node("Item", &[("v", Value::Int(700))])
            .unwrap();
    }

    db.set_read_accel(false);
    let unpruned = execute_collect(&plan, &mut reader, &[]).unwrap();
    db.set_read_accel(true);
    let pruned = execute_collect(&plan, &mut reader, &[]).unwrap();
    assert_eq!(pruned, unpruned, "sequential pruned scan differs");
    let engine = Arc::new(JitEngine::new());
    for threads in [1, 2, 4] {
        let par = execute_parallel(&plan, &db, &reader, &[], threads).unwrap();
        assert_eq!(par, unpruned, "parallel({threads}) differs on dirty chunks");
    }
    let report = execute_adaptive(&engine, &plan, &db, &reader, &[], 4).unwrap();
    assert_eq!(report.rows, unpruned, "adaptive differs on dirty chunks");
    let jit = execute_jit(&engine, &plan, &mut reader, &[]).unwrap();
    assert_eq!(jit, unpruned, "jit one-shot differs on dirty chunks");

    // The accelerated run must actually have pruned something, or this
    // row exercises nothing.
    let mut ctx = ExecCtx::new(&[]);
    let rows = execute_parallel_ctx(&plan, &db, &reader, &mut ctx, 4).unwrap();
    assert_eq!(rows, unpruned);
    assert!(
        ctx.profile.chunks_pruned > 0,
        "fixture must exercise zone-map pruning: {:?}",
        ctx.profile
    );
    writer.abort();

    // Committed-update variant: a writer that commits AFTER the reader's
    // snapshot dirties chunks, commits (re-cleaning them), and forces the
    // older reader onto the version-chain history fallback.
    let mut reader2 = db.begin();
    let mut w2 = db.begin();
    for &id in &items[600..640] {
        w2.set_prop(PropOwner::Node(id), "v", Value::Int(0)).unwrap();
    }
    w2.commit().unwrap();
    db.set_read_accel(false);
    let unpruned2 = execute_collect(&plan, &mut reader2, &[]).unwrap();
    db.set_read_accel(true);
    let pruned2 = execute_collect(&plan, &mut reader2, &[]).unwrap();
    assert_eq!(pruned2, unpruned2, "history fallback diverged under pruning");
    assert_eq!(
        pruned2, unpruned,
        "reader2 predates the update and must still see the old rows"
    );
    for threads in [2, 4] {
        let par = execute_parallel(&plan, &db, &reader2, &[], threads).unwrap();
        assert_eq!(par, unpruned2, "parallel({threads}) history fallback diverged");
    }
}
