//! gconfig — the one home for every `PMEMGRAPH_*` environment knob.
//!
//! Before this crate, each subsystem parsed its own environment variables
//! with its own (mostly-but-not-quite identical) conventions: `pmem::alloc`
//! read `PMEMGRAPH_ALLOC_ARENAS`, `gtxn::commitpipe` read
//! `PMEMGRAPH_GROUP_COMMIT`/`PMEMGRAPH_GROUP_WAIT_US`, `graphcore::db` read
//! `PMEMGRAPH_READ_ACCEL`, and `gserver` read `PMEMGRAPH_METRICS_ADDR` and
//! `PMEMGRAPH_SLOW_QUERY_US`. Nothing enumerated them, so discovering the
//! effective configuration of a running server meant reading five source
//! files. This crate collects the parsing in one place and pairs it with a
//! machine-readable registry ([`KNOBS`], [`effective`]) that the server's
//! `CONFIG` verb and the bench meta blocks dump verbatim.
//!
//! Conventions (unchanged from the scattered parsers):
//!
//! * boolean knobs are **on unless** the value is `0`, `false`, `off` or
//!   `no` (after trimming);
//! * numeric knobs fall back to their default on parse failure;
//! * knobs are read at use-site time, not cached — tests and benches that
//!   mutate the environment between database instances keep working.
//!
//! Layering: this crate depends on nothing, so everything from `pmem` up
//! can depend on it.

/// Value shape of one knob, for documentation and `CONFIG` rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobKind {
    /// On/off switch (`0`/`false`/`off`/`no` disable).
    Bool,
    /// Unsigned integer.
    U64,
    /// Free-form string (e.g. a socket address).
    Str,
}

/// One documented environment knob.
#[derive(Debug, Clone, Copy)]
pub struct Knob {
    /// Full environment-variable name.
    pub name: &'static str,
    pub kind: KnobKind,
    /// Rendered default (what an unset variable means).
    pub default: &'static str,
    /// One-line description for docs and the `CONFIG` verb.
    pub help: &'static str,
}

/// Every `PMEMGRAPH_*` knob the engine reads, in one table. README's knob
/// table and the server's `CONFIG` verb are both generated from this.
pub const KNOBS: &[Knob] = &[
    Knob {
        name: "PMEMGRAPH_READ_ACCEL",
        kind: KnobKind::Bool,
        default: "on",
        help: "chunk-grain read acceleration: zone-map pruning + MVTO single-version fast path",
    },
    Knob {
        name: "PMEMGRAPH_GROUP_COMMIT",
        kind: KnobKind::Bool,
        default: "on",
        help: "group concurrent commits into one undo-log transaction (4 fences per group)",
    },
    Knob {
        name: "PMEMGRAPH_GROUP_WAIT_US",
        kind: KnobKind::U64,
        default: "3",
        help: "group-commit leader straggler wait bound in microseconds",
    },
    Knob {
        name: "PMEMGRAPH_ALLOC_ARENAS",
        kind: KnobKind::Bool,
        default: "on",
        help: "sharded per-thread PMem allocation arenas for small size classes",
    },
    Knob {
        name: "PMEMGRAPH_SYNC_MODE",
        kind: KnobKind::Str,
        default: "per_txn",
        help: "durability ladder: per_txn | every=N (fence every N commits) | checkpoint (explicit CHECKPOINT only)",
    },
    Knob {
        name: "PMEMGRAPH_SLOW_QUERY_US",
        kind: KnobKind::U64,
        default: "disabled",
        help: "slow-query log threshold in microseconds (unset = never log)",
    },
    Knob {
        name: "PMEMGRAPH_METRICS_ADDR",
        kind: KnobKind::Str,
        default: "disabled",
        help: "standalone Prometheus exporter listen address (unset = no exporter)",
    },
    Knob {
        name: "PMEMGRAPH_SHARDS",
        kind: KnobKind::U64,
        default: "1",
        help: "number of PMem pool shards (per-shard txn/commit/recovery domains; 1 = unsharded layout)",
    },
    Knob {
        name: "PMEMGRAPH_SNAPSHOT_CACHE_CAP",
        kind: KnobKind::U64,
        default: "8",
        help: "max CSR snapshots retained by the analytics cache before LRU eviction (0 = unbounded)",
    },
    Knob {
        name: "PMEMGRAPH_EXPR_JIT",
        kind: KnobKind::Bool,
        default: "on",
        help: "compile residual filter predicates to native code (the gjit expression tier)",
    },
    Knob {
        name: "PMEMGRAPH_PGO",
        kind: KnobKind::Bool,
        default: "on",
        help: "profile-guided expression tiering: interpret, then compile, then recompile with parameters inlined as row counts accumulate (off = compile immediately, no recompilation)",
    },
    Knob {
        name: "PMEMGRAPH_CODE_CACHE_BYTES",
        kind: KnobKind::U64,
        default: "16777216",
        help: "LRU bound, in code bytes, of the on-disk compiled-expression cache ({base}.jitcache)",
    },
    Knob {
        name: "PMEMGRAPH_NET_MODE",
        kind: KnobKind::Str,
        default: "evented",
        help: "network front end: evented (epoll reactor + fixed net-worker pool) | threaded (thread per connection; the fallback on non-Linux)",
    },
    Knob {
        name: "PMEMGRAPH_MAX_CONNS",
        kind: KnobKind::U64,
        default: "1024",
        help: "maximum concurrent connections (session-table bound; further connects get SERVER_BUSY)",
    },
    Knob {
        name: "PMEMGRAPH_PIPELINE_DEPTH",
        kind: KnobKind::U64,
        default: "32",
        help: "per-connection in-flight request cap; past it the reactor pauses the socket's read interest instead of erroring",
    },
    Knob {
        name: "PMEMGRAPH_NET_WORKERS",
        kind: KnobKind::U64,
        default: "0",
        help: "evented-mode request-processing threads (0 = auto: max(workers, 4))",
    },
];

/// Parse a boolean knob: on unless set to `0`/`false`/`off`/`no`. An unset
/// variable yields `default`.
pub fn flag(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => default,
    }
}

/// Parse an unsigned-integer knob; unset or unparsable yields `default`.
pub fn u64_knob(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default)
}

/// Read a string knob verbatim (empty counts as unset).
pub fn str_knob(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|s| !s.is_empty())
}

// ----------------------------------------------------------------------
// Typed accessors — the use-sites in pmem/gtxn/graphcore/gserver call
// these instead of re-implementing the parse.
// ----------------------------------------------------------------------

/// `PMEMGRAPH_READ_ACCEL` (default on).
pub fn read_accel() -> bool {
    flag("PMEMGRAPH_READ_ACCEL", true)
}

/// `PMEMGRAPH_GROUP_COMMIT` (default on).
pub fn group_commit() -> bool {
    flag("PMEMGRAPH_GROUP_COMMIT", true)
}

/// `PMEMGRAPH_GROUP_WAIT_US` (default 3 µs).
pub fn group_wait_us() -> u64 {
    u64_knob("PMEMGRAPH_GROUP_WAIT_US", 3)
}

/// `PMEMGRAPH_ALLOC_ARENAS` (default on).
pub fn alloc_arenas() -> bool {
    flag("PMEMGRAPH_ALLOC_ARENAS", true)
}

/// `PMEMGRAPH_SYNC_MODE` raw value (default `per_txn`). Parsing into the
/// typed `SyncMode` lives in `gtxn` — this crate stays string-only so it
/// depends on nothing.
pub fn sync_mode() -> String {
    std::env::var("PMEMGRAPH_SYNC_MODE").unwrap_or_else(|_| "per_txn".into())
}

/// `PMEMGRAPH_SLOW_QUERY_US`: threshold in µs, `u64::MAX` (never) unset.
pub fn slow_query_us() -> u64 {
    u64_knob("PMEMGRAPH_SLOW_QUERY_US", u64::MAX)
}

/// `PMEMGRAPH_METRICS_ADDR`: exporter listen address, if configured.
pub fn metrics_addr() -> Option<String> {
    str_knob("PMEMGRAPH_METRICS_ADDR")
}

/// `PMEMGRAPH_SHARDS`: pool shard count (default 1 = unsharded layout).
/// Values below 1 are clamped to 1.
pub fn shards() -> u64 {
    u64_knob("PMEMGRAPH_SHARDS", 1).max(1)
}

/// `PMEMGRAPH_SNAPSHOT_CACHE_CAP`: analytics snapshot-cache capacity
/// (default 8 entries; 0 disables the bound).
pub fn snapshot_cache_cap() -> u64 {
    u64_knob("PMEMGRAPH_SNAPSHOT_CACHE_CAP", 8)
}

/// `PMEMGRAPH_EXPR_JIT` (default on): residual-expression compilation.
pub fn expr_jit() -> bool {
    flag("PMEMGRAPH_EXPR_JIT", true)
}

/// `PMEMGRAPH_PGO` (default on): profile-guided expression tiering.
pub fn pgo() -> bool {
    flag("PMEMGRAPH_PGO", true)
}

/// `PMEMGRAPH_CODE_CACHE_BYTES` (default 16 MiB): LRU bound of the
/// on-disk compiled-expression cache, in code bytes.
pub fn code_cache_bytes() -> u64 {
    u64_knob("PMEMGRAPH_CODE_CACHE_BYTES", 16 << 20)
}

/// `PMEMGRAPH_NET_MODE` raw value (default `evented`). Parsing into the
/// typed mode enum lives in `gserver`.
pub fn net_mode() -> String {
    std::env::var("PMEMGRAPH_NET_MODE").unwrap_or_else(|_| "evented".into())
}

/// `PMEMGRAPH_MAX_CONNS` (default 1024): concurrent-connection bound.
/// Values below 1 are clamped to 1.
pub fn max_conns() -> u64 {
    u64_knob("PMEMGRAPH_MAX_CONNS", 1024).max(1)
}

/// `PMEMGRAPH_PIPELINE_DEPTH` (default 32): per-connection in-flight
/// request cap before read interest is paused. Clamped to at least 1.
pub fn pipeline_depth() -> u64 {
    u64_knob("PMEMGRAPH_PIPELINE_DEPTH", 32).max(1)
}

/// `PMEMGRAPH_NET_WORKERS` (default 0 = auto): evented-mode
/// request-processing threads.
pub fn net_workers() -> u64 {
    u64_knob("PMEMGRAPH_NET_WORKERS", 0)
}

/// One knob's effective state: `(name, value, is_default, help)`.
#[derive(Debug, Clone)]
pub struct Effective {
    pub name: &'static str,
    /// Rendered effective value (set value, or the rendered default).
    pub value: String,
    /// True if the variable is unset (the default applies).
    pub is_default: bool,
    pub help: &'static str,
}

/// Snapshot the effective value of every registered knob from the current
/// environment. This is what the server's `CONFIG` verb and the bench meta
/// blocks serialize.
pub fn effective() -> Vec<Effective> {
    KNOBS
        .iter()
        .map(|k| {
            let set = std::env::var(k.name).ok().filter(|s| !s.is_empty());
            let is_default = set.is_none();
            let value = match (&set, k.kind) {
                (Some(v), KnobKind::Bool) => {
                    if matches!(v.trim(), "0" | "false" | "off" | "no") {
                        "off".into()
                    } else {
                        "on".into()
                    }
                }
                (Some(v), _) => v.clone(),
                (None, _) => k.default.into(),
            };
            Effective {
                name: k.name,
                value,
                is_default,
                help: k.help,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests mutate process state; keep them in one test so cargo's
    // parallel test runner cannot interleave them.
    #[test]
    fn parsing_and_effective_snapshot() {
        let name = "PMEMGRAPH_GCONFIG_TEST_FLAG";
        std::env::remove_var(name);
        assert!(flag(name, true));
        assert!(!flag(name, false));
        for off in ["0", "false", "off", "no", " off "] {
            std::env::set_var(name, off);
            assert!(!flag(name, true), "{off:?} must disable");
        }
        std::env::set_var(name, "1");
        assert!(flag(name, false));
        std::env::remove_var(name);

        std::env::remove_var("PMEMGRAPH_GCONFIG_TEST_NUM");
        assert_eq!(u64_knob("PMEMGRAPH_GCONFIG_TEST_NUM", 7), 7);
        std::env::set_var("PMEMGRAPH_GCONFIG_TEST_NUM", "41");
        assert_eq!(u64_knob("PMEMGRAPH_GCONFIG_TEST_NUM", 7), 41);
        std::env::set_var("PMEMGRAPH_GCONFIG_TEST_NUM", "nope");
        assert_eq!(u64_knob("PMEMGRAPH_GCONFIG_TEST_NUM", 7), 7);
        std::env::remove_var("PMEMGRAPH_GCONFIG_TEST_NUM");

        // Every registered knob renders an effective value.
        let eff = effective();
        assert_eq!(eff.len(), KNOBS.len());
        assert!(eff.iter().any(|e| e.name == "PMEMGRAPH_SYNC_MODE"));
        for e in &eff {
            assert!(!e.value.is_empty());
            assert!(!e.help.is_empty());
        }
    }

    #[test]
    fn sync_mode_defaults_to_per_txn() {
        // Only sound if no outer harness set it; guard accordingly.
        if std::env::var("PMEMGRAPH_SYNC_MODE").is_err() {
            assert_eq!(sync_mode(), "per_txn");
        }
    }
}
