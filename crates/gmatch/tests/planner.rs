//! Planner unit tests on a skewed fixture: access-path choice driven by
//! index presence and zone-map selectivity, the forced-worst arm, and
//! the PGO per-segment feedback loop.

use gjit::PgoTable;
use gmatch::{parse, plan, DbStats, DictResolver, PatternGraph, PlanChoice, StatsSource};
use graphcore::{DbOptions, GraphDb, Value};
use gstore::{IndexKind, PVal};

/// 1024 Person nodes with *sequential* ids (so the 64-record zone-map
/// chunks carry tight, disjoint id ranges — the skew the cost model
/// reads) plus a `knows` ring with modest fan-out. `id` is indexed,
/// `age` is not.
fn fixture() -> GraphDb {
    let db = GraphDb::create(DbOptions::dram(96 << 20)).unwrap();
    let mut tx = db.begin();
    let mut people = Vec::new();
    for i in 0..1024i64 {
        let p = tx
            .create_node(
                "Person",
                &[("id", Value::Int(i)), ("age", Value::Int(i % 90))],
            )
            .unwrap();
        people.push(p);
    }
    for i in 0..people.len() {
        let a = people[i];
        tx.create_rel(a, "knows", people[(i + 1) % people.len()], &[])
            .unwrap();
        tx.create_rel(a, "knows", people[(i + 7) % people.len()], &[])
            .unwrap();
    }
    tx.commit().unwrap();
    db.create_index("Person", "id", IndexKind::Volatile).unwrap();
    db
}

fn resolve(db: &GraphDb, q: &str) -> PatternGraph {
    PatternGraph::resolve(&parse(q).unwrap(), &DictResolver(db.dict())).unwrap()
}

#[test]
fn selective_equality_picks_the_index_probe() {
    let db = fixture();
    let pg = resolve(&db, "match (a:Person {id = ?0})-[:knows]->(b) return b");
    let params = [PVal::Int(17)];
    let stats = DbStats(&db);

    let best = plan(&pg, &stats, &params, None, PlanChoice::Best).unwrap();
    assert!(
        best.summary.contains("index_eq"),
        "selective point predicate should pick the B+-tree probe: {}",
        best.summary
    );

    let worst = plan(&pg, &stats, &params, None, PlanChoice::Worst).unwrap();
    assert!(
        worst.summary.contains("scan("),
        "forced-worst arm should pick the full scan: {}",
        worst.summary
    );
    assert!(
        worst.est_cost >= best.est_cost,
        "worst ({}) must not be cheaper than best ({})",
        worst.est_cost,
        best.est_cost
    );
}

#[test]
fn unindexed_predicate_falls_back_to_pruned_scan() {
    let db = fixture();
    let pg = resolve(&db, "match (a:Person {age = ?0})-[:knows]->(b) return b");
    let best = plan(&pg, &DbStats(&db), &[PVal::Int(30)], None, PlanChoice::Best).unwrap();
    assert!(
        best.summary.contains("scan("),
        "no index over (Person, age): {}",
        best.summary
    );
}

#[test]
fn zone_maps_report_skewed_survival() {
    // The stats the planner prices with: sequential ids mean a tight id
    // range survives almost nowhere, while a full-range predicate
    // survives everywhere. (Registered by create_index on `id`.)
    let db = fixture();
    let stats = DbStats(&db);
    let id = db.dict().code_of("id").unwrap();
    let lo = PVal::Int(0).index_key();
    let narrow = stats.node_survival(&[], &[(id, lo, PVal::Int(31).index_key())]);
    let full = stats.node_survival(&[], &[(id, lo, PVal::Int(1_000_000).index_key())]);
    assert!(
        narrow < 0.2,
        "a 32-id window should prune most chunks, survival={narrow}"
    );
    assert!(full > 0.9, "an all-id window prunes nothing, survival={full}");
}

#[test]
fn zone_map_selectivity_drives_the_cost_estimate() {
    let db = fixture();
    let stats = DbStats(&db);
    // Same shape, different constants: a narrow ordered predicate over
    // clustered (zone-tracked) ids must be priced cheaper than an
    // all-pass one.
    let narrow = resolve(&db, "match (a:Person {id < 32}) return a");
    let wide = resolve(&db, "match (a:Person {id < 1000000}) return a");
    let c_narrow = plan(&narrow, &stats, &[], None, PlanChoice::Best).unwrap().est_cost;
    let c_wide = plan(&wide, &stats, &[], None, PlanChoice::Best).unwrap().est_cost;
    assert!(
        c_narrow < c_wide,
        "narrow {c_narrow} should be cheaper than wide {c_wide}"
    );
}

#[test]
fn variable_length_edges_enumerate_fixed_length_pipelines() {
    let db = fixture();
    let pg = resolve(&db, "match (a:Person {id = ?0})-[:knows*1..3]->(b) return b");
    let mp = plan(&pg, &DbStats(&db), &[PVal::Int(3)], None, PlanChoice::Best).unwrap();
    assert_eq!(mp.pipelines.len(), 3, "one pipeline per fixed length");
    for p in &mp.pipelines {
        assert!(p.segments.len() >= 2, "head + expansion");
        assert_eq!(p.segments[1].access, "expand");
    }
}

#[test]
fn observed_segment_selectivity_reprices_on_replan() {
    let db = fixture();
    let pg = resolve(&db, "match (a:Person {id = ?0})-[:knows]->(b) return b");
    let params = [PVal::Int(17)];
    let stats = DbStats(&db);

    let pgo = PgoTable::new();
    let base = plan(&pg, &stats, &params, Some(&pgo), PlanChoice::Best).unwrap();

    // Feed back a catastrophic observed fan-out on every pipeline's
    // expansion segment: 100 binding rows in, 50_000 out.
    for p in &base.pipelines {
        pgo.record_segment(p.plan.fingerprint(), 1, 100, 50_000);
    }
    let repriced = plan(&pg, &stats, &params, Some(&pgo), PlanChoice::Best).unwrap();
    assert!(
        repriced.est_cost > base.est_cost,
        "observed 500x fan-out must reprice the plan upward: {} -> {}",
        base.est_cost,
        repriced.est_cost
    );
}
