//! Differential test: the full gmatch stack (parse → resolve → plan →
//! execute) against the brute-force reference matcher, over random small
//! graphs, across all four execution backends and both shard layouts.
//!
//! Row order is unspecified on both sides, so results are compared as
//! sorted multisets of decoded values. `limit` is deliberately absent
//! from the pattern pool (which rows survive a limit is order-dependent).

use std::sync::Arc;

use gjit::JitEngine;
use gmatch::{
    execute_match_sharded, parse, plan, reference_rows, Backend, DictResolver, PatternGraph,
    PlanChoice, RefGraph, ShardStats,
};
use graphcore::{ShardOptions, ShardedDb, Value};
use gstore::PVal;
use proptest::prelude::*;

/// Patterns exercised against every random graph. All are connected (the
/// planner rejects cartesian products) and name only the labels/keys the
/// fixture interns: node labels L0/L1, edge labels E0/E1, property v.
const PATTERNS: &[&str] = &[
    "match (a) return a",
    "match (a:L0) return a, a.v",
    "match (a {v = ?0})-[:E0]->(b) return a, b",
    "match (a:L0)-[:E0*1..2]->(b:L1) return a, b",
    "match (a)-[:E0]->(b)-[:E1]->(c) where c.v > 1 return a, c.v",
    "match (a)-[:E0]->(b), (a)-[:E1]->(c) return b, c",
    "match (a)-[:E0]->(b), (b)-[:E0]->(a) return a, b",
    "match (a) where a.v >= ?0 count",
];

/// A random graph description: nodes are `(label 0|1, optional v)`, edges
/// are `(src, dst, label 0|1)` with endpoints taken modulo node count.
#[derive(Debug, Clone)]
struct Fixture {
    nodes: Vec<(u8, Option<i64>)>,
    edges: Vec<(u8, u8, u8)>,
    param: i64,
}

fn fixture_strategy() -> impl Strategy<Value = Fixture> {
    (
        prop::collection::vec((0u8..2, prop::option::of(0i64..5)), 3..8),
        prop::collection::vec((0u8..8, 0u8..8, 0u8..2), 0..14),
        0i64..5,
    )
        .prop_map(|(nodes, edges, param)| Fixture {
            nodes,
            edges,
            param,
        })
}

/// Build the fixture into a fresh `shards`-pool database and the mirror
/// reference graph (global ids, interned codes).
fn build(fx: &Fixture, shards: usize) -> (ShardedDb, RefGraph) {
    let db = ShardedDb::create(ShardOptions::dram(32 << 20).shards(shards)).unwrap();
    // Intern every name the patterns may reference up front, so
    // resolution succeeds even on graphs that never use a label.
    let l = [db.intern("L0").unwrap(), db.intern("L1").unwrap()];
    let e = [db.intern("E0").unwrap(), db.intern("E1").unwrap()];
    let v = db.intern("v").unwrap();

    let mut rg = RefGraph::default();
    let mut tx = db.begin();
    let mut ids = Vec::with_capacity(fx.nodes.len());
    for (i, (label, val)) in fx.nodes.iter().enumerate() {
        let name = if *label == 0 { "L0" } else { "L1" };
        let props: Vec<(&str, Value)> = match val {
            Some(x) => vec![("v", Value::Int(*x))],
            None => vec![],
        };
        let gid = tx.create_node_on(i % shards, name, &props).unwrap();
        let rprops: Vec<(u32, PVal)> = val.iter().map(|x| (v, PVal::Int(*x))).collect();
        rg.add_node(gid, l[*label as usize], &rprops);
        ids.push(gid);
    }
    for (s, d, label) in &fx.edges {
        let (src, dst) = (
            ids[*s as usize % ids.len()],
            ids[*d as usize % ids.len()],
        );
        let name = if *label == 0 { "E0" } else { "E1" };
        tx.create_rel(src, name, dst, &[]).unwrap();
        rg.add_edge(src, dst, e[*label as usize]);
    }
    tx.commit().unwrap();
    (db, rg)
}

/// Canonical sortable encoding of one result row.
fn canon_vals(row: &[PVal]) -> String {
    row.iter()
        .map(|p| format!("{p:?}"))
        .collect::<Vec<_>>()
        .join("|")
}

fn canon_slots(row: &[gquery::Slot]) -> String {
    row.iter()
        .map(|s| format!("{:?}", s.as_pval().unwrap_or(PVal::Null)))
        .collect::<Vec<_>>()
        .join("|")
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_matches_reference_on_random_graphs(fx in fixture_strategy()) {
        let params = [PVal::Int(fx.param)];
        for shards in [1usize, 4] {
            let (db, rg) = build(&fx, shards);
            let engine = Arc::new(JitEngine::new());
            let stats = ShardStats(&db);
            let resolver = DictResolver(db.shard(0).dict());
            for q in PATTERNS {
                let pg = PatternGraph::resolve(&parse(q).unwrap(), &resolver).unwrap();
                let mp = plan(&pg, &stats, &params, None, PlanChoice::Best).unwrap();
                let expect = sorted(
                    reference_rows(&pg, &rg, &params)
                        .iter()
                        .map(|r| canon_vals(r))
                        .collect(),
                );
                let backends = [
                    ("interp", Backend::Interp),
                    ("parallel", Backend::Parallel(2)),
                    ("jit", Backend::Jit(&engine)),
                    ("adaptive", Backend::Adaptive(&engine, 2)),
                ];
                for (name, backend) in backends {
                    let (rows, _) = execute_match_sharded(&mp, &db, backend, &params)
                        .unwrap_or_else(|err| {
                            panic!("{q} failed on {name}/{shards} shard(s): {err:?}")
                        });
                    let got = sorted(rows.iter().map(|r| canon_slots(r)).collect());
                    prop_assert_eq!(
                        &got, &expect,
                        "pattern {} diverged on backend {} with {} shard(s)",
                        q, name, shards
                    );
                }
            }
        }
    }
}
