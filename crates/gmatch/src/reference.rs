//! Brute-force reference matcher for differential testing.
//!
//! [`reference_rows`] evaluates a resolved [`PatternGraph`] over a plain
//! in-memory graph by exhaustive enumeration, with the same semantics the
//! engine implements:
//!
//! * **walk semantics** — a variable-length edge of fixed length `L`
//!   contributes one result per distinct directed edge *sequence* of
//!   length `L` (interior nodes are unconstrained and may repeat);
//! * **bag results** — the result is the union over all fixed-length
//!   assignments of every variable-length edge, with multiplicity;
//! * **predicate semantics** — a missing property never satisfies any
//!   comparison; `=`/`<>` compare decoded values, ordered operators
//!   compare order-preserving index keys (mirroring
//!   [`gquery::eval_pred`]).
//!
//! Instead of materializing interior nodes, the matcher enumerates
//! bindings for the *pattern* nodes only (small graphs: `V^k`) and scales
//! each surviving binding by the product of per-edge walk counts — the
//!   number of length-`L` label-matching walks between its endpoints,
//! computed by dynamic programming. Row order is unspecified, like the
//! engine's; tests compare sorted multisets.

use std::collections::HashMap;

use gquery::CmpOp;
use gstore::PVal;

use crate::pattern::{PatternGraph, PropPred, RetItem};

/// A node in the reference graph (ids are arbitrary, typically the
/// engine-assigned global ids so projections line up).
#[derive(Debug, Clone)]
pub struct RefNode {
    pub id: u64,
    pub label: u32,
    pub props: Vec<(u32, PVal)>,
}

/// A directed, labelled edge.
#[derive(Debug, Clone)]
pub struct RefEdge {
    pub src: u64,
    pub dst: u64,
    pub label: u32,
}

/// A plain in-memory property graph.
#[derive(Debug, Clone, Default)]
pub struct RefGraph {
    pub nodes: Vec<RefNode>,
    pub edges: Vec<RefEdge>,
}

impl RefGraph {
    pub fn add_node(&mut self, id: u64, label: u32, props: &[(u32, PVal)]) {
        self.nodes.push(RefNode {
            id,
            label,
            props: props.to_vec(),
        });
    }

    pub fn add_edge(&mut self, src: u64, dst: u64, label: u32) {
        self.edges.push(RefEdge { src, dst, label });
    }

    fn node(&self, id: u64) -> Option<&RefNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    fn prop(&self, id: u64, key: u32) -> Option<PVal> {
        self.node(id)?
            .props
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    /// Number of directed walks of exactly `hops` label-matching edges
    /// from `from` to `to` (interior nodes unconstrained).
    fn walk_count(&self, from: u64, to: u64, label: Option<u32>, hops: u32) -> u64 {
        let mut cur: HashMap<u64, u64> = HashMap::from([(from, 1)]);
        for _ in 0..hops {
            let mut next: HashMap<u64, u64> = HashMap::new();
            for e in &self.edges {
                if label.is_some_and(|l| l != e.label) {
                    continue;
                }
                if let Some(&c) = cur.get(&e.src) {
                    *next.entry(e.dst).or_insert(0) += c;
                }
            }
            cur = next;
        }
        cur.get(&to).copied().unwrap_or(0)
    }
}

fn pred_holds(g: &RefGraph, id: u64, p: &PropPred, params: &[PVal]) -> bool {
    let Some(actual) = g.prop(id, p.key) else {
        return false;
    };
    let expect = p.value.resolve(params);
    match p.op {
        CmpOp::Eq => actual == expect,
        CmpOp::Ne => actual != expect,
        op => op.eval_u64(actual.index_key(), expect.index_key()),
    }
}

fn node_admits(g: &RefGraph, pg: &PatternGraph, pat: usize, id: u64, params: &[PVal]) -> bool {
    let pn = &pg.nodes[pat];
    if let Some(label) = pn.label {
        if g.node(id).is_none_or(|n| n.label != label) {
            return false;
        }
    }
    pn.preds.iter().all(|p| pred_holds(g, id, p, params))
}

/// All result rows (as decoded values; `Null` marks a missing projected
/// property) for `pg` over `g`, with multiplicity, in unspecified order.
pub fn reference_rows(pg: &PatternGraph, g: &RefGraph, params: &[PVal]) -> Vec<Vec<PVal>> {
    // Fixed-length assignments of every pattern edge.
    let mut assignments: Vec<Vec<u32>> = vec![vec![]];
    for e in &pg.edges {
        let mut next = Vec::new();
        for a in &assignments {
            for len in e.min_hops..=e.max_hops {
                let mut a = a.clone();
                a.push(len);
                next.push(a);
            }
        }
        assignments = next;
    }

    let ids: Vec<u64> = g.nodes.iter().map(|n| n.id).collect();
    let k = pg.nodes.len();
    let mut rows = Vec::new();
    for lens in &assignments {
        // Enumerate bindings of pattern nodes to graph nodes.
        let mut binding = vec![0u64; k];
        enumerate(pg, g, params, lens, &ids, &mut binding, 0, &mut rows);
    }
    if let Some(l) = pg.limit {
        rows.truncate(l);
    }
    if pg.count {
        return vec![vec![PVal::Int(rows.len() as i64)]];
    }
    rows
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    pg: &PatternGraph,
    g: &RefGraph,
    params: &[PVal],
    lens: &[u32],
    ids: &[u64],
    binding: &mut [u64],
    depth: usize,
    rows: &mut Vec<Vec<PVal>>,
) {
    if depth == binding.len() {
        let mut mult: u64 = 1;
        for (e, &len) in pg.edges.iter().zip(lens) {
            mult *= g.walk_count(binding[e.src], binding[e.dst], e.label, len);
            if mult == 0 {
                return;
            }
        }
        let row: Vec<PVal> = pg
            .returns
            .iter()
            .map(|r| match r {
                RetItem::Id(i) => PVal::Int(binding[*i] as i64),
                RetItem::Prop(i, key) => g.prop(binding[*i], *key).unwrap_or(PVal::Null),
            })
            .collect();
        for _ in 0..mult {
            rows.push(row.clone());
        }
        return;
    }
    for &id in ids {
        if node_admits(g, pg, depth, id, params) {
            binding[depth] = id;
            enumerate(pg, g, params, lens, ids, binding, depth + 1, rows);
        }
    }
}
