//! Pattern execution: scan heads through the four execution modes,
//! expansion segments over binding tables, per-segment PGO feedback.
//!
//! A [`MatchPlan`]'s pipelines run one after another; the result is their
//! union (then `LIMIT`, then `COUNT`). Each pipeline splits at its
//! segment boundaries:
//!
//! * **Head** — the access-path segment (scan or index probe plus its
//!   residual filters) is a plain [`Plan`], so it runs through whichever
//!   backend the caller picked: the AOT interpreter, the morsel
//!   scheduler, the JIT code cache, or adaptive execution. Engine-bearing
//!   backends arm the §14 expression tier for the head's residual
//!   conjunction exactly like ad-hoc queries do.
//! * **Expansions** — each later segment walks adjacency over the binding
//!   table ([`gquery::execute_prebuffered`]) and then applies the
//!   segment's trailing filters. The node-local part of that filter
//!   conjunction (label + property predicates on the freshly bound
//!   column) is *rebased to column 0* and routed through the expression
//!   tier — compiled residual code only reads the scanned column, so the
//!   executor hands it a one-column view of the binding row. Join filters
//!   (`ColEq` from closing edges) stay interpreted.
//!
//! Every segment records `(rows_in, rows_out)` into the engine's PGO
//! table ([`gjit::PgoTable::record_segment`]); the planner prefers those
//! observed selectivities over zone-map estimates on replan. The same
//! numbers surface in [`ExecProfile::expansions`] for `EXPLAIN`-style
//! introspection and the slow log.
//!
//! [`execute_match_sharded`] fans the head out across every pool of a
//! [`ShardedDb`] (local ids are rewritten to global ids as rows leave a
//! shard) and walks expansions through the §13 router: a stored endpoint
//! is resolved with [`ShardedDb::endpoint_global`], so `REMOTE`
//! half-edges land on the owning shard and mirror in-halves are never
//! double-walked (out-walks only read out-lists, in-walks only in-lists).

use std::sync::Arc;
use std::time::Instant;

use gjit::{
    attach_residual_expr, execute_adaptive_ctx, execute_jit_ctx, expr_key, params_hash,
    record_residual_run, ExprSource, ExprTier, JitEngine,
};
use gquery::{
    eval_pred, execute_collect_ctx, execute_morsels, execute_prebuffered, pred_fingerprint,
    ExecCtx, ExecProfile, Op, Plan, Pred, Proj, QueryError, RelEnd, Row, Slot,
};
use gstore::hash::fnv1a;
use gstore::PVal;
use graphcore::{GraphDb, GraphTxn, PropOwner, ShardedDb};

use crate::planner::{MatchPlan, Pipeline};

/// How pipeline heads execute. Expansion segments always run in-process
/// over the binding table; the backend decides how the (potentially
/// large) head scan is driven and whether compiled expressions apply.
#[derive(Clone, Copy)]
pub enum Backend<'e> {
    /// Sequential AOT interpretation.
    Interp,
    /// Morsel-parallel interpretation across N workers.
    Parallel(usize),
    /// JIT-compiled pipeline (single-threaded driver).
    Jit(&'e Arc<JitEngine>),
    /// Adaptive: interpret immediately, switch to compiled mid-run.
    Adaptive(&'e Arc<JitEngine>, usize),
}

impl<'e> Backend<'e> {
    fn engine(&self) -> Option<&'e Arc<JitEngine>> {
        match self {
            Backend::Jit(e) | Backend::Adaptive(e, _) => Some(e),
            Backend::Interp | Backend::Parallel(_) => None,
        }
    }
}

/// Ladder fingerprint of one pipeline segment: the expression tier keys
/// its promotion decisions per (pipeline shape, segment index).
fn segment_fp(plan_fp: u64, segment: usize) -> u64 {
    let mut bytes = [0u8; 12];
    bytes[..8].copy_from_slice(&plan_fp.to_le_bytes());
    bytes[8..].copy_from_slice(&(segment as u32).to_le_bytes());
    fnv1a(&bytes)
}

/// Execute a planned pattern against one database. Returns the result
/// rows (after `LIMIT`/`COUNT`) and the merged execution profile.
pub fn execute_match(
    mplan: &MatchPlan,
    db: &GraphDb,
    backend: Backend<'_>,
    params: &[PVal],
) -> Result<(Vec<Row>, ExecProfile), QueryError> {
    let mut profile = ExecProfile::default();
    let mut out: Vec<Row> = Vec::new();
    for pipe in &mplan.pipelines {
        out.extend(run_pipeline(pipe, db, backend, params, &mut profile)?);
        if mplan.limit.is_some_and(|l| out.len() >= l) {
            break;
        }
    }
    Ok(finish(out, mplan, profile))
}

fn finish(mut rows: Vec<Row>, mplan: &MatchPlan, mut profile: ExecProfile) -> (Vec<Row>, ExecProfile) {
    if let Some(l) = mplan.limit {
        rows.truncate(l);
    }
    if mplan.count {
        rows = vec![vec![Slot::val(PVal::Int(rows.len() as i64))]];
    }
    profile.rows = rows.len() as u64;
    (rows, profile)
}

fn run_pipeline(
    pipe: &Pipeline,
    db: &GraphDb,
    backend: Backend<'_>,
    params: &[PVal],
    profile: &mut ExecProfile,
) -> Result<Vec<Row>, QueryError> {
    let fp = pipe.plan.fingerprint();
    let mut txn = db.begin();
    let head = &pipe.segments[0];
    let head_plan = Plan::new(pipe.plan.ops[head.ops.clone()].to_vec(), pipe.plan.n_params);
    let mut ctx = ExecCtx::new(params);

    let start = Instant::now();
    let handle = backend
        .engine()
        .and_then(|e| attach_residual_expr(e, &head_plan, &mut ctx));
    let mut rows = run_head(&head_plan, db, &mut txn, backend, &mut ctx)?;
    if let (Some(engine), Some(h)) = (backend.engine(), handle.as_ref()) {
        record_residual_run(engine, h, ctx.profile.residual_rows(), start.elapsed());
    }
    ctx.residual_expr = None;

    let node_total = db.node_count() as u64;
    if let Some(engine) = backend.engine() {
        engine.pgo().record_segment(fp, 0, node_total, rows.len() as u64);
    }
    ctx.profile
        .expansions
        .push((head.desc.clone(), node_total, rows.len() as u64));

    for (i, seg) in pipe.segments.iter().enumerate().skip(1) {
        let ops = &pipe.plan.ops[seg.ops.clone()];
        let (walk, filters, project) = split_segment(ops)?;
        let rows_in = rows.len() as u64;

        let mut walked: Vec<Row> = Vec::new();
        execute_prebuffered(walk, &mut txn, params, std::mem::take(&mut rows), &mut |r| {
            walked.push(r.to_vec());
            Ok(())
        })?;

        rows = apply_segment_filters(
            &filters,
            walked,
            &mut txn,
            params,
            backend.engine(),
            segment_fp(fp, i),
            &mut ctx.profile,
        )?;

        let rows_out = rows.len() as u64;
        if let Some(engine) = backend.engine() {
            engine.pgo().record_segment(fp, i as u32, rows_in, rows_out);
        }
        ctx.profile
            .expansions
            .push((seg.desc.clone(), rows_in, rows_out));

        if let Some(projs) = project {
            let mut projected = Vec::with_capacity(rows.len());
            let ops = [Op::Project(projs.clone())];
            execute_prebuffered(&ops, &mut txn, params, std::mem::take(&mut rows), &mut |r| {
                projected.push(r.to_vec());
                Ok(())
            })?;
            rows = projected;
        }
    }

    profile.absorb(std::mem::take(&mut ctx.profile));
    Ok(rows)
}

fn run_head(
    head_plan: &Plan,
    db: &GraphDb,
    txn: &mut GraphTxn<'_>,
    backend: Backend<'_>,
    ctx: &mut ExecCtx<'_>,
) -> Result<Vec<Row>, QueryError> {
    match backend {
        Backend::Interp => execute_collect_ctx(head_plan, txn, ctx),
        Backend::Parallel(threads) => {
            match execute_morsels(head_plan, db, txn, ctx, threads, None)? {
                Some(rows) => Ok(rows),
                // Not morsel-splittable (e.g. an index point probe):
                // sequential interpretation, same snapshot.
                None => execute_collect_ctx(head_plan, txn, ctx),
            }
        }
        Backend::Jit(engine) => execute_jit_ctx(engine, head_plan, txn, ctx),
        Backend::Adaptive(engine, threads) => {
            Ok(execute_adaptive_ctx(engine, head_plan, db, txn, ctx, threads)?.rows)
        }
    }
}

/// Split one lowered segment into its adjacency walk, its trailing
/// filter run, and (last segment only) the final projection.
fn split_segment<'p>(
    ops: &'p [Op],
) -> Result<(&'p [Op], Vec<&'p Pred>, Option<&'p Vec<Proj>>), QueryError> {
    let mut end = ops.len();
    let project = match ops.last() {
        Some(Op::Project(p)) => {
            end -= 1;
            Some(p)
        }
        _ => None,
    };
    let mut start = end;
    while start > 0 && matches!(ops[start - 1], Op::Filter(_)) {
        start -= 1;
    }
    let filters = ops[start..end]
        .iter()
        .map(|op| match op {
            Op::Filter(p) => Ok(p),
            other => Err(QueryError::BadPlan(format!(
                "unexpected {other:?} in segment filter run"
            ))),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((&ops[..start], filters, project))
}

/// Apply a segment's trailing filters to the walked binding rows.
///
/// The label/property conjunction over the segment's newly bound node
/// column is rebased to column 0 and offered to the expression tier
/// (compiled code reads only the scanned column); each row is then
/// evaluated against a one-column view `[row[col]]`. Anything else —
/// `ColEq` join filters, or conjuncts spanning multiple columns — walks
/// the predicate AST on the full row.
#[allow(clippy::too_many_arguments)]
fn apply_segment_filters(
    filters: &[&Pred],
    walked: Vec<Row>,
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
    engine: Option<&Arc<JitEngine>>,
    seg_fp: u64,
    profile: &mut ExecProfile,
) -> Result<Vec<Row>, QueryError> {
    if filters.is_empty() {
        return Ok(walked);
    }

    // Partition: single-column node conjunction vs everything else.
    let mut node_col: Option<usize> = None;
    let mut node_preds: Vec<&Pred> = Vec::new();
    let mut rest: Vec<&Pred> = Vec::new();
    for p in filters {
        let col = match p {
            Pred::Prop { col, .. } | Pred::LabelIs { col, .. } => Some(*col),
            _ => None,
        };
        match col {
            Some(c) if node_col.is_none() || node_col == Some(c) => {
                node_col = Some(c);
                node_preds.push(p);
            }
            _ => rest.push(p),
        }
    }

    // Compiled path for the node conjunction, when an engine is present
    // and the PGO ladder (or a cache hit) admits it.
    let compiled = match (engine, node_col) {
        (Some(engine), Some(_)) => {
            let rebased = rebase_conjunction(&node_preds);
            compiled_filter(engine, seg_fp, &rebased, params, walked.len() as u64)
        }
        _ => None,
    };

    let mut kept = Vec::with_capacity(walked.len());
    let start = Instant::now();
    let rows_before = profile.residual_rows();
    for row in walked {
        let mut ok = true;
        if let Some(col) = node_col {
            match &compiled {
                Some(ce) => {
                    let view = [*row
                        .get(col)
                        .ok_or_else(|| QueryError::BadPlan(format!("column {col} out of range")))?];
                    ok = ce.eval(txn, params, &view)?;
                    profile.residual_rows_compiled += 1;
                }
                None => {
                    for p in &node_preds {
                        if !eval_pred(p, &row, txn, params)? {
                            ok = false;
                            break;
                        }
                    }
                    profile.residual_rows_interp += 1;
                }
            }
        }
        if ok {
            for p in &rest {
                if !eval_pred(p, &row, txn, params)? {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            kept.push(row);
        }
    }
    if let (Some(engine), Some(_)) = (engine, node_col) {
        // Drive the segment's tier ladder with the rows it evaluated.
        engine
            .pgo()
            .record(seg_fp, profile.residual_rows() - rows_before, start.elapsed());
    }
    Ok(kept)
}

/// Rewrite a single-column conjunction so every predicate reads column 0
/// — the only column the expression tier compiles — for evaluation
/// against a one-column row view.
fn rebase_conjunction(preds: &[&Pred]) -> Pred {
    let mut rebased = preds.iter().map(|p| match p {
        Pred::Prop {
            key, op, value, ..
        } => Pred::Prop {
            col: 0,
            key: *key,
            op: *op,
            value: *value,
        },
        Pred::LabelIs { label, .. } => Pred::LabelIs { col: 0, label: *label },
        other => (*other).clone(),
    });
    let first = rebased.next().expect("non-empty conjunction");
    rebased.fold(first, |acc, p| Pred::And(Box::new(acc), Box::new(p)))
}

/// Probe/compile the expression tier for a segment's rebased node
/// conjunction. Mirrors `gjit::attach_residual_expr`'s key scheme but
/// compiles synchronously — expansion filters run over an already
/// materialized binding table, so there is no scan to overlap with.
fn compiled_filter(
    engine: &Arc<JitEngine>,
    seg_fp: u64,
    pred: &Pred,
    params: &[PVal],
    _rows: u64,
) -> Option<Arc<gjit::CompiledExpr>> {
    if !gconfig::expr_jit() || !gjit::expr::supported() {
        return None;
    }
    let pred_fp = pred_fingerprint(pred);
    let generic_key = expr_key(ExprSource::Node, pred_fp, ExprTier::Generic, 0);
    let inlined_key = expr_key(ExprSource::Node, pred_fp, ExprTier::Inlined, params_hash(params));
    if let Some(ce) = engine
        .probe_expr(inlined_key)
        .or_else(|| engine.probe_expr(generic_key))
    {
        return Some(ce);
    }
    match engine.expr_tier(seg_fp) {
        ExprTier::Interpret => None,
        ExprTier::Generic => engine
            .get_or_compile_expr(generic_key, ExprSource::Node, pred, None)
            .ok(),
        ExprTier::Inlined => engine
            .get_or_compile_expr(inlined_key, ExprSource::Node, pred, Some(params))
            .ok(),
    }
}

// ---------------------------------------------------------------------
// Sharded execution
// ---------------------------------------------------------------------

/// Execute a planned pattern against a sharded database. The head plan
/// fans out to every shard (rows leave each shard with ids rewritten to
/// global ids); expansions walk adjacency through the router, resolving
/// `REMOTE` half-edges to their owning shard. One MVTO reader per shard
/// serves the whole pattern.
pub fn execute_match_sharded(
    mplan: &MatchPlan,
    db: &ShardedDb,
    backend: Backend<'_>,
    params: &[PVal],
) -> Result<(Vec<Row>, ExecProfile), QueryError> {
    if db.shard_count() == 1 {
        // gid == lid: the unsharded executor is exact (and keeps the
        // morsel scheduler + expression tier on their fast paths).
        return execute_match(mplan, db.shard(0), backend, params);
    }
    let mut profile = ExecProfile::default();
    let mut out: Vec<Row> = Vec::new();
    for pipe in &mplan.pipelines {
        out.extend(run_pipeline_sharded(pipe, db, backend, params, &mut profile)?);
        if mplan.limit.is_some_and(|l| out.len() >= l) {
            break;
        }
    }
    Ok(finish(out, mplan, profile))
}

fn run_pipeline_sharded(
    pipe: &Pipeline,
    db: &ShardedDb,
    backend: Backend<'_>,
    params: &[PVal],
    profile: &mut ExecProfile,
) -> Result<Vec<Row>, QueryError> {
    let fp = pipe.plan.fingerprint();
    let router = db.router();
    let head = &pipe.segments[0];
    let head_ops_full = &pipe.plan.ops[head.ops.clone()];
    // Projection must see global ids; peel it off the head (single-
    // segment pipelines) and evaluate it through the router at the end.
    let (head_ops, mut pending_project) = match head_ops_full.last() {
        Some(Op::Project(p)) => (&head_ops_full[..head_ops_full.len() - 1], Some(p)),
        _ => (head_ops_full, None),
    };
    let head_plan = Plan::new(head_ops.to_vec(), pipe.plan.n_params);

    let mut txns: Vec<GraphTxn<'_>> = db.shards().iter().map(|s| s.begin()).collect();
    let mut rows: Vec<Row> = Vec::new();
    let mut node_total = 0u64;
    for s in 0..db.shard_count() {
        let shard_db = db.shard(s);
        node_total += shard_db.node_count() as u64;
        let mut ctx = ExecCtx::new(params);
        let start = Instant::now();
        let handle = backend
            .engine()
            .and_then(|e| attach_residual_expr(e, &head_plan, &mut ctx));
        let shard_rows = run_head(&head_plan, shard_db, &mut txns[s], backend, &mut ctx)?;
        if let (Some(engine), Some(h)) = (backend.engine(), handle.as_ref()) {
            record_residual_run(engine, h, ctx.profile.residual_rows(), start.elapsed());
        }
        ctx.residual_expr = None;
        profile.absorb(std::mem::take(&mut ctx.profile));
        for mut r in shard_rows {
            for slot in r.iter_mut() {
                if let Some(lid) = slot.as_node() {
                    *slot = Slot::node(router.global_of(s, lid));
                } else if let Some(lid) = slot.as_rel() {
                    *slot = Slot::rel(router.global_of(s, lid));
                }
            }
            rows.push(r);
        }
    }
    if let Some(engine) = backend.engine() {
        engine.pgo().record_segment(fp, 0, node_total, rows.len() as u64);
    }
    profile
        .expansions
        .push((head.desc.clone(), node_total, rows.len() as u64));

    for (i, seg) in pipe.segments.iter().enumerate().skip(1) {
        let ops = &pipe.plan.ops[seg.ops.clone()];
        let rows_in = rows.len() as u64;
        let mut j = 0;
        while j < ops.len() {
            match &ops[j] {
                Op::ForeachRel { col, dir, label } => {
                    // Fused with the GetNode that names the landing end —
                    // the walker needs the record to resolve REMOTE.
                    let end = match ops.get(j + 1) {
                        Some(Op::GetNode { end, .. }) => *end,
                        other => {
                            return Err(QueryError::BadPlan(format!(
                                "sharded walk: ForeachRel not followed by GetNode ({other:?})"
                            )))
                        }
                    };
                    let mut next = Vec::new();
                    for r in &rows {
                        let gid = r
                            .get(*col)
                            .and_then(Slot::as_node)
                            .ok_or_else(|| bad_node_col(*col))?;
                        let s = router.shard_of(gid);
                        let lid = router.local_of(gid);
                        for (rid, rec) in txns[s].rels_of(lid, *dir, *label)? {
                            let raw = match end {
                                RelEnd::Dst => rec.dst,
                                RelEnd::Src => rec.src,
                                RelEnd::Other(_) => {
                                    return Err(QueryError::BadPlan(
                                        "sharded walk: RelEnd::Other unsupported".into(),
                                    ))
                                }
                            };
                            let mut nr = r.clone();
                            nr.push(Slot::rel(router.global_of(s, rid)));
                            nr.push(Slot::node(db.endpoint_global(s, raw)));
                            next.push(nr);
                        }
                    }
                    rows = next;
                    j += 2;
                }
                Op::Filter(p) => {
                    let mut kept = Vec::with_capacity(rows.len());
                    for r in std::mem::take(&mut rows) {
                        if matches!(p, Pred::Prop { .. } | Pred::LabelIs { .. }) {
                            profile.residual_rows_interp += 1;
                        }
                        if eval_pred_global(db, &txns, p, &r, params)? {
                            kept.push(r);
                        }
                    }
                    rows = kept;
                    j += 1;
                }
                Op::Project(p) => {
                    pending_project = Some(p);
                    j += 1;
                }
                other => {
                    return Err(QueryError::BadPlan(format!(
                        "operator {other:?} not supported in sharded match segments"
                    )))
                }
            }
        }
        let rows_out = rows.len() as u64;
        if let Some(engine) = backend.engine() {
            engine.pgo().record_segment(fp, i as u32, rows_in, rows_out);
        }
        profile
            .expansions
            .push((seg.desc.clone(), rows_in, rows_out));
    }

    if let Some(projs) = pending_project {
        let mut projected = Vec::with_capacity(rows.len());
        for r in &rows {
            let mut pr = Vec::with_capacity(projs.len());
            for p in projs {
                pr.push(eval_proj_global(db, &txns, p, r)?);
            }
            projected.push(pr);
        }
        rows = projected;
    }
    Ok(rows)
}

fn bad_node_col(col: usize) -> QueryError {
    QueryError::BadPlan(format!("column {col} is not a node"))
}

fn owner_global(
    db: &ShardedDb,
    row: &[Slot],
    col: usize,
) -> Result<(usize, PropOwner), QueryError> {
    let slot = row
        .get(col)
        .ok_or_else(|| QueryError::BadPlan(format!("column {col} out of range")))?;
    let r = db.router();
    if let Some(gid) = slot.as_node() {
        Ok((r.shard_of(gid), PropOwner::Node(r.local_of(gid))))
    } else if let Some(gid) = slot.as_rel() {
        Ok((r.shard_of(gid), PropOwner::Rel(r.local_of(gid))))
    } else {
        Err(QueryError::BadPlan(format!("column {col} is not an entity")))
    }
}

/// [`gquery::eval_pred`] against global ids: entity columns route to the
/// owning shard's reader. Same comparison semantics (missing property ⇒
/// false; Eq/Ne on value equality; ordered operators on the index key).
fn eval_pred_global(
    db: &ShardedDb,
    txns: &[GraphTxn<'_>],
    pred: &Pred,
    row: &[Slot],
    params: &[PVal],
) -> Result<bool, QueryError> {
    Ok(match pred {
        Pred::Prop {
            col,
            key,
            op,
            value,
        } => {
            let (s, owner) = owner_global(db, row, *col)?;
            match txns[s].prop_pval(owner, *key)? {
                Some(actual) => {
                    let expect = value.resolve(params);
                    match op {
                        gquery::CmpOp::Eq => actual == expect,
                        gquery::CmpOp::Ne => actual != expect,
                        _ => op.eval_u64(actual.index_key(), expect.index_key()),
                    }
                }
                None => false,
            }
        }
        Pred::LabelIs { col, label } => {
            let (s, owner) = owner_global(db, row, *col)?;
            match owner {
                PropOwner::Node(id) => txns[s].node(id)?.is_some_and(|n| n.label == *label),
                PropOwner::Rel(id) => txns[s].rel(id)?.is_some_and(|r| r.label == *label),
            }
        }
        Pred::ColEq { a, b } => {
            let sa = row.get(*a).ok_or_else(|| bad_node_col(*a))?;
            let sb = row.get(*b).ok_or_else(|| bad_node_col(*b))?;
            sa.tag == sb.tag && sa.val == sb.val
        }
        Pred::ColNe { a, b } => !eval_pred_global(db, txns, &Pred::ColEq { a: *a, b: *b }, row, params)?,
        Pred::And(l, r) => {
            eval_pred_global(db, txns, l, row, params)?
                && eval_pred_global(db, txns, r, row, params)?
        }
        Pred::Or(l, r) => {
            eval_pred_global(db, txns, l, row, params)?
                || eval_pred_global(db, txns, r, row, params)?
        }
        Pred::Not(x) => !eval_pred_global(db, txns, x, row, params)?,
        Pred::Connected { .. } => {
            return Err(QueryError::BadPlan(
                "Connected predicate unsupported in sharded match".into(),
            ))
        }
    })
}

/// [`Proj`] evaluation against global ids (ids project as their global
/// form — the one the client handed in and gets back).
fn eval_proj_global(
    db: &ShardedDb,
    txns: &[GraphTxn<'_>],
    proj: &Proj,
    row: &[Slot],
) -> Result<Slot, QueryError> {
    Ok(match proj {
        Proj::Col(c) => *row
            .get(*c)
            .ok_or_else(|| QueryError::BadPlan(format!("column {c} out of range")))?,
        Proj::Id { col } => {
            let slot = row
                .get(*col)
                .ok_or_else(|| QueryError::BadPlan(format!("column {col} out of range")))?;
            Slot::val(PVal::Int(slot.val as i64))
        }
        Proj::Prop { col, key } => {
            let (s, owner) = owner_global(db, row, *col)?;
            match txns[s].prop_pval(owner, *key)? {
                Some(p) => Slot::val(p),
                None => Slot::NULL,
            }
        }
        Proj::Label { col } => {
            let (s, owner) = owner_global(db, row, *col)?;
            let label = match owner {
                PropOwner::Node(id) => txns[s]
                    .node(id)?
                    .ok_or(QueryError::BadPlan(format!("node {id} vanished")))?
                    .label,
                PropOwner::Rel(id) => txns[s]
                    .rel(id)?
                    .ok_or(QueryError::BadPlan(format!("rel {id} vanished")))?
                    .label,
            };
            Slot::val(PVal::Int(label as i64))
        }
        Proj::ConnectedFlag { .. } => {
            return Err(QueryError::BadPlan(
                "ConnectedFlag unsupported in sharded match".into(),
            ))
        }
    })
}
