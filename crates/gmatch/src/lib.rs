//! Multi-hop pattern matching with cost-based planning (DESIGN.md §16).
//!
//! The query surface this crate adds is a Cypher-lite pattern language:
//! node/edge patterns with labels and property predicates, directed
//! variable-length paths (`*min..max`), joins on shared bindings and
//! property filters on interior nodes. A pattern is parsed ([`parse`])
//! into an AST, resolved against a database dictionary into a logical
//! *pattern graph* ([`PatternGraph`]), planned ([`plan`]) by a cost-based
//! planner that orders expansions and picks an access path per segment —
//! B+-tree index scan vs zone-mapped pruned chunk scan vs adjacency
//! expansion — and lowered onto the existing [`gquery::Plan`] operator
//! language, so the morsel scheduler, predicate pushdown, the MVTO fast
//! path and the §14 expression tier all apply unchanged.
//!
//! The cost model is fed by live statistics: table row counts, ReadAccel
//! zone-map chunk-survival fractions as selectivity estimates, index
//! presence, and — once a pattern has executed — observed per-segment
//! selectivity from the PGO table ([`gjit::PgoTable`]), which reprices
//! candidate plans on replan (the §14 feedback loop, ROADMAP item 4).
//!
//! Execution ([`exec`]) runs the scan head through any of the four
//! execution modes (interpreted / parallel / JIT / adaptive) and drives
//! each expansion segment over a binding table, with the segment's
//! residual predicate routed through the expression tier so hot patterns
//! get compiled filters. A sharded database fans the head out across
//! every pool and resolves `REMOTE` half-edges through the §13 router
//! (mirror halves are never double-walked).

pub mod exec;
pub mod parse;
pub mod pattern;
pub mod planner;
pub mod reference;
pub mod stats;

pub use exec::{execute_match, execute_match_sharded, Backend};
pub use parse::{parse, Ast, MatchError};
pub use pattern::{DictResolver, NameResolver, PatternGraph};
pub use planner::{plan, MatchPlan, Pipeline, PlanChoice, Segment};
pub use reference::{reference_rows, RefGraph};
pub use stats::{DbStats, ShardStats, StatsSource};
