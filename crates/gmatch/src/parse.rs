//! The Cypher-lite pattern grammar (DESIGN.md §16):
//!
//! ```text
//! query    := path (',' path)* [where] [return] [limit] ['count']
//! path     := node (edge node)*
//! node     := '(' [var] [':' Label] ['{' prop (',' prop)* '}'] ')'
//! prop     := Key cmp value
//! edge     := '-[' [':' Label] ['*' min '..' max] ']->'
//!           | '<-[' [':' Label] ['*' min '..' max] ']-'
//! where    := 'where' cond ('and' cond)*
//! cond     := var '.' Key cmp value
//! return   := 'return' item (',' item)*      (default: every named var's id)
//! item     := var | var '.' Key
//! cmp      := '=' | '!=' | '<' | '<=' | '>' | '>='
//! value    := int | float | 'string' | true | false | null | ?N
//! ```
//!
//! Edges are directed (no undirected form) and anonymous (no edge
//! variables); variable-length bounds are `1 <= min <= max <= 8`. Values
//! use the same literal syntax as the server's ad-hoc verbs, including
//! `?N` parameter holes. Labels, keys and string literals stay *names* in
//! the AST — [`crate::pattern`] resolves them to dictionary codes.

use gquery::CmpOp;

/// A parse or semantic error, with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchError(pub String);

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for MatchError {}

pub(crate) fn err<T>(msg: impl Into<String>) -> Result<T, MatchError> {
    Err(MatchError(msg.into()))
}

/// A literal in the pattern text (unresolved: strings are not interned).
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
    /// `?N` parameter hole.
    Param(usize),
}

/// One property constraint, `key cmp value`.
#[derive(Debug, Clone, PartialEq)]
pub struct PropPat {
    pub key: String,
    pub op: CmpOp,
    pub value: Lit,
}

/// One node pattern.
#[derive(Debug, Clone, Default)]
pub struct NodePat {
    /// Binding variable; `None` for anonymous nodes.
    pub var: Option<String>,
    pub label: Option<String>,
    pub props: Vec<PropPat>,
}

/// Edge direction relative to the textual left-to-right order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeDir {
    /// `-[..]->`: left node is the source.
    Right,
    /// `<-[..]-`: right node is the source.
    Left,
}

/// One edge pattern.
#[derive(Debug, Clone)]
pub struct EdgePat {
    pub label: Option<String>,
    pub dir: EdgeDir,
    /// Hop bounds; `(1, 1)` for a plain edge.
    pub min_hops: u32,
    pub max_hops: u32,
}

/// One linear path: a node followed by (edge, node) pairs.
#[derive(Debug, Clone)]
pub struct PathPat {
    pub start: NodePat,
    pub hops: Vec<(EdgePat, NodePat)>,
}

/// A `where` conjunct: `var.key cmp value`.
#[derive(Debug, Clone)]
pub struct CondPat {
    pub var: String,
    pub prop: PropPat,
}

/// One `return` item.
#[derive(Debug, Clone, PartialEq)]
pub enum ReturnItem {
    /// `var` — the bound entity's id.
    Var(String),
    /// `var.key` — a property of the bound entity.
    Prop(String, String),
}

/// The parsed query.
#[derive(Debug, Clone)]
pub struct Ast {
    pub paths: Vec<PathPat>,
    pub conds: Vec<CondPat>,
    /// Empty ⇒ default projection (every named variable's id, in first
    /// appearance order).
    pub returns: Vec<ReturnItem>,
    pub limit: Option<usize>,
    pub count: bool,
}

/// Upper bound on variable-length hops, so a typo cannot request an
/// exponential expansion.
pub const MAX_HOPS: u32 = 8;

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Param(usize),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Colon,
    Comma,
    Dot,
    DotDot,
    Star,
    Dash,
    Arrow,     // ->
    BackArrow, // <-
    Cmp(CmpOp),
}

fn tokenize(text: &str) -> Result<Vec<Tok>, MatchError> {
    let b: Vec<char> = text.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '.' => {
                if b.get(i + 1) == Some(&'.') {
                    toks.push(Tok::DotDot);
                    i += 2;
                } else {
                    toks.push(Tok::Dot);
                    i += 1;
                }
            }
            '-' => {
                if b.get(i + 1) == Some(&'>') {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else {
                    toks.push(Tok::Dash);
                    i += 1;
                }
            }
            '<' => match b.get(i + 1) {
                Some('-') => {
                    toks.push(Tok::BackArrow);
                    i += 2;
                }
                Some('=') => {
                    toks.push(Tok::Cmp(CmpOp::Le));
                    i += 2;
                }
                _ => {
                    toks.push(Tok::Cmp(CmpOp::Lt));
                    i += 1;
                }
            },
            '>' => {
                if b.get(i + 1) == Some(&'=') {
                    toks.push(Tok::Cmp(CmpOp::Ge));
                    i += 2;
                } else {
                    toks.push(Tok::Cmp(CmpOp::Gt));
                    i += 1;
                }
            }
            '=' => {
                toks.push(Tok::Cmp(CmpOp::Eq));
                i += 1;
            }
            '!' => {
                if b.get(i + 1) == Some(&'=') {
                    toks.push(Tok::Cmp(CmpOp::Ne));
                    i += 2;
                } else {
                    return err("unexpected '!'");
                }
            }
            '?' => {
                let mut j = i + 1;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                if j == i + 1 {
                    return err("expected digits after '?'");
                }
                let n: usize = b[i + 1..j]
                    .iter()
                    .collect::<String>()
                    .parse()
                    .map_err(|_| MatchError("parameter index out of range".into()))?;
                toks.push(Tok::Param(n));
                i = j;
            }
            '\'' => {
                let mut j = i + 1;
                while j < b.len() && b[j] != '\'' {
                    j += 1;
                }
                if j >= b.len() {
                    return err("unterminated string literal");
                }
                toks.push(Tok::Str(b[i + 1..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                // A '.' starts a float only when followed by a digit —
                // `1..3` must tokenize as Int(1) DotDot Int(3).
                let is_float = b.get(j) == Some(&'.')
                    && b.get(j + 1).is_some_and(|d| d.is_ascii_digit());
                if is_float {
                    j += 1;
                    while j < b.len() && b[j].is_ascii_digit() {
                        j += 1;
                    }
                    let s: String = b[i..j].iter().collect();
                    toks.push(Tok::Float(s.parse().map_err(|_| {
                        MatchError(format!("bad float literal '{s}'"))
                    })?));
                } else {
                    let s: String = b[i..j].iter().collect();
                    toks.push(Tok::Int(s.parse().map_err(|_| {
                        MatchError(format!("integer literal '{s}' out of range"))
                    })?));
                }
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                toks.push(Tok::Ident(b[i..j].iter().collect()));
                i = j;
            }
            other => return err(format!("unexpected character '{other}'")),
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<(), MatchError> {
        if self.eat(&t) {
            Ok(())
        } else {
            err(format!("expected {what}"))
        }
    }

    /// A keyword is a case-insensitive bare identifier.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self, what: &str) -> Result<String, MatchError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => err(format!("expected {what}")),
        }
    }

    fn value(&mut self) -> Result<Lit, MatchError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Lit::Int(v)),
            Some(Tok::Float(v)) => Ok(Lit::Float(v)),
            Some(Tok::Str(s)) => Ok(Lit::Str(s)),
            Some(Tok::Param(n)) => Ok(Lit::Param(n)),
            // Unary minus on numeric literals.
            Some(Tok::Dash) => match self.next() {
                Some(Tok::Int(v)) => Ok(Lit::Int(-v)),
                Some(Tok::Float(v)) => Ok(Lit::Float(-v)),
                _ => err("expected number after '-'"),
            },
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Lit::Bool(true)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Lit::Bool(false)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Lit::Null),
            _ => err("expected value (int, float, 'str', true, false, null or ?N)"),
        }
    }

    fn prop(&mut self) -> Result<PropPat, MatchError> {
        let key = self.ident("property key")?;
        let op = match self.next() {
            Some(Tok::Cmp(op)) => op,
            _ => return err("expected comparison operator after property key"),
        };
        let value = self.value()?;
        Ok(PropPat { key, op, value })
    }

    fn node(&mut self) -> Result<NodePat, MatchError> {
        self.expect(Tok::LParen, "'(' starting a node pattern")?;
        let mut n = NodePat::default();
        if let Some(Tok::Ident(_)) = self.peek() {
            n.var = Some(self.ident("variable")?);
        }
        if self.eat(&Tok::Colon) {
            n.label = Some(self.ident("label after ':'")?);
        }
        if self.eat(&Tok::LBrace) {
            loop {
                n.props.push(self.prop()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RBrace, "'}' closing the property map")?;
        }
        self.expect(Tok::RParen, "')' closing the node pattern")?;
        Ok(n)
    }

    /// Parse one edge if the next token starts one.
    fn edge(&mut self) -> Result<Option<EdgePat>, MatchError> {
        let dir = match self.peek() {
            Some(Tok::Dash) => EdgeDir::Right,
            Some(Tok::BackArrow) => EdgeDir::Left,
            _ => return Ok(None),
        };
        self.pos += 1;
        self.expect(Tok::LBracket, "'[' in edge pattern")?;
        if let Some(Tok::Ident(v)) = self.peek() {
            return err(format!("edge variables are not supported (got '{v}')"));
        }
        let mut label = None;
        if self.eat(&Tok::Colon) {
            label = Some(self.ident("label after ':'")?);
        }
        let (mut min_hops, mut max_hops) = (1, 1);
        if self.eat(&Tok::Star) {
            min_hops = match self.next() {
                Some(Tok::Int(v)) if v >= 0 => v as u32,
                _ => return err("expected hop count after '*'"),
            };
            max_hops = min_hops;
            if self.eat(&Tok::DotDot) {
                max_hops = match self.next() {
                    Some(Tok::Int(v)) if v >= 0 => v as u32,
                    _ => return err("expected upper hop bound after '..'"),
                };
            }
            if min_hops == 0 {
                return err("zero-length paths (*0..) are not supported");
            }
            if min_hops > max_hops {
                return err(format!("empty hop range *{min_hops}..{max_hops}"));
            }
            if max_hops > MAX_HOPS {
                return err(format!("hop bound {max_hops} exceeds the maximum {MAX_HOPS}"));
            }
        }
        self.expect(Tok::RBracket, "']' in edge pattern")?;
        match dir {
            EdgeDir::Right => self.expect(Tok::Arrow, "'->' after ']'")?,
            EdgeDir::Left => self.expect(Tok::Dash, "'-' after ']'")?,
        }
        Ok(Some(EdgePat {
            label,
            dir,
            min_hops,
            max_hops,
        }))
    }

    fn path(&mut self) -> Result<PathPat, MatchError> {
        let start = self.node()?;
        let mut hops = Vec::new();
        while let Some(edge) = self.edge()? {
            let node = self.node()?;
            hops.push((edge, node));
        }
        Ok(PathPat { start, hops })
    }
}

/// Parse a pattern query. A leading `match` keyword is accepted and
/// ignored, so both the bare pattern and the full server verb parse.
pub fn parse(text: &str) -> Result<Ast, MatchError> {
    let mut p = P {
        toks: tokenize(text)?,
        pos: 0,
    };
    p.eat_kw("match");
    let mut paths = vec![p.path()?];
    while p.eat(&Tok::Comma) {
        paths.push(p.path()?);
    }
    let mut conds = Vec::new();
    if p.eat_kw("where") {
        loop {
            let var = p.ident("variable in where clause")?;
            p.expect(Tok::Dot, "'.' after variable")?;
            let prop = p.prop()?;
            conds.push(CondPat { var, prop });
            if !p.eat_kw("and") {
                break;
            }
        }
    }
    let mut returns = Vec::new();
    if p.eat_kw("return") {
        loop {
            let var = p.ident("return item")?;
            if p.eat(&Tok::Dot) {
                let key = p.ident("property key after '.'")?;
                returns.push(ReturnItem::Prop(var, key));
            } else {
                returns.push(ReturnItem::Var(var));
            }
            if !p.eat(&Tok::Comma) {
                break;
            }
        }
    }
    let mut limit = None;
    let mut count = false;
    loop {
        if p.eat_kw("limit") {
            limit = match p.next() {
                Some(Tok::Int(v)) if v >= 0 => Some(v as usize),
                _ => return err("expected row count after 'limit'"),
            };
        } else if p.eat_kw("count") {
            count = true;
        } else {
            break;
        }
    }
    if p.pos != p.toks.len() {
        return err("trailing tokens after pattern query");
    }
    Ok(Ast {
        paths,
        conds,
        returns,
        limit,
        count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_hop_with_props_and_clauses() {
        let ast = parse(
            "match (a:Person {id = ?0})-[:KNOWS*1..3]->(b)<-[:HAS_CREATOR]-(m:Post) \
             where b.age >= 21 and m.score != -1 return b, m.content limit 10",
        )
        .unwrap();
        assert_eq!(ast.paths.len(), 1);
        let path = &ast.paths[0];
        assert_eq!(path.start.var.as_deref(), Some("a"));
        assert_eq!(path.start.label.as_deref(), Some("Person"));
        assert_eq!(path.start.props[0].value, Lit::Param(0));
        assert_eq!(path.hops.len(), 2);
        assert_eq!(path.hops[0].0.max_hops, 3);
        assert_eq!(path.hops[1].0.dir, EdgeDir::Left);
        assert_eq!(ast.conds.len(), 2);
        assert_eq!(ast.conds[1].prop.value, Lit::Int(-1));
        assert_eq!(
            ast.returns,
            vec![
                ReturnItem::Var("b".into()),
                ReturnItem::Prop("m".into(), "content".into())
            ]
        );
        assert_eq!(ast.limit, Some(10));
        assert!(!ast.count);
    }

    #[test]
    fn parses_joined_paths_and_count() {
        let ast = parse("(a:X)-[:E]->(b:Y), (b)-[:F]->(a) count").unwrap();
        assert_eq!(ast.paths.len(), 2);
        assert!(ast.count);
        assert!(ast.returns.is_empty());
    }

    #[test]
    fn rejects_bad_patterns() {
        assert!(parse("(a)-[:E*0..2]->(b)").is_err(), "zero-length path");
        assert!(parse("(a)-[:E*3..2]->(b)").is_err(), "empty range");
        assert!(parse("(a)-[:E*1..99]->(b)").is_err(), "hop cap");
        assert!(parse("(a)-[e:E]->(b)").is_err(), "edge variable");
        assert!(parse("(a)-[:E]->(b) nonsense").is_err(), "trailing tokens");
        assert!(parse("(a:'x')").is_err(), "label must be an identifier");
    }

    #[test]
    fn string_and_float_literals() {
        let ast = parse("(a {name = 'Ada Lovelace', score > 2.5})").unwrap();
        assert_eq!(
            ast.paths[0].start.props[0].value,
            Lit::Str("Ada Lovelace".into())
        );
        assert_eq!(ast.paths[0].start.props[1].value, Lit::Float(2.5));
    }
}
