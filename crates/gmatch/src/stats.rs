//! Statistics feeding the cost model.
//!
//! The planner never touches storage directly; it asks a [`StatsSource`]
//! for row counts, index presence, and zone-map selectivity estimates.
//! Selectivity comes from the same DRAM zone maps the executor prunes
//! with ([`gquery::Pushdown`]): the fraction of chunks that would survive
//! a pruned scan under the segment's sargable conjuncts. That makes the
//! estimate *self-consistent* — a plan the model scores cheap because
//! most chunks prune is exactly the plan whose scan skips those chunks.
//!
//! [`DbStats`] reads one [`GraphDb`]; [`ShardStats`] aggregates a
//! [`ShardedDb`] by summing counts and chunk-weighting survival
//! fractions, so one plan is chosen for all shards (patterns are planned
//! once and fanned out, DESIGN.md §13).

use graphcore::{GraphDb, ShardedDb};
use gquery::{Op, Pushdown};

/// Everything the cost model may ask of a database.
pub trait StatsSource {
    fn node_count(&self) -> u64;
    fn rel_count(&self) -> u64;
    /// Is there a B+-tree over `(label, key)`?
    fn has_index(&self, label: u32, key: u32) -> bool;
    /// Fraction of node chunks (0.0..=1.0) surviving zone-map pruning
    /// under the given required labels and per-key index-key ranges.
    /// 1.0 when acceleration is off or the table is empty (no pruning).
    fn node_survival(&self, labels: &[u32], ranges: &[(u32, u64, u64)]) -> f64;
    /// Fraction of relationship chunks whose label bitset admits `label`.
    fn rel_survival(&self, label: Option<u32>) -> f64;
}

fn pushdown(labels: &[u32], ranges: &[(u32, u64, u64)]) -> Pushdown {
    Pushdown {
        labels: labels.to_vec(),
        ranges: ranges.to_vec(),
        never: false,
    }
}

/// Stats over one standalone [`GraphDb`].
pub struct DbStats<'a>(pub &'a GraphDb);

impl StatsSource for DbStats<'_> {
    fn node_count(&self) -> u64 {
        self.0.node_count() as u64
    }

    fn rel_count(&self) -> u64 {
        self.0.rel_count() as u64
    }

    fn has_index(&self, label: u32, key: u32) -> bool {
        self.0.index_for(label, key).is_some()
    }

    fn node_survival(&self, labels: &[u32], ranges: &[(u32, u64, u64)]) -> f64 {
        let chunks = self.0.nodes().chunk_count();
        if chunks == 0 || !self.0.accel().enabled() {
            return 1.0;
        }
        let (list, _) = pushdown(labels, ranges).surviving_node_chunks(self.0.accel(), chunks);
        list.len() as f64 / chunks as f64
    }

    fn rel_survival(&self, label: Option<u32>) -> f64 {
        let chunks = self.0.rels().chunk_count();
        let Some(label) = label else { return 1.0 };
        if chunks == 0 || !self.0.accel().enabled() {
            return 1.0;
        }
        let pd = pushdown(&[label], &[]);
        let (list, _) = pd.surviving_rel_chunks(self.0.accel(), chunks);
        list.len() as f64 / chunks as f64
    }
}

/// Aggregated stats over every pool of a [`ShardedDb`].
pub struct ShardStats<'a>(pub &'a ShardedDb);

impl ShardStats<'_> {
    /// Chunk-weighted average of a per-shard fraction.
    fn weighted<F>(&self, chunks_of: impl Fn(&GraphDb) -> usize, frac_of: F) -> f64
    where
        F: Fn(DbStats<'_>) -> f64,
    {
        let mut total = 0usize;
        let mut surviving = 0.0f64;
        for s in self.0.shards() {
            let c = chunks_of(s);
            total += c;
            surviving += frac_of(DbStats(s)) * c as f64;
        }
        if total == 0 {
            1.0
        } else {
            surviving / total as f64
        }
    }
}

impl StatsSource for ShardStats<'_> {
    fn node_count(&self) -> u64 {
        self.0.shards().iter().map(|s| s.node_count() as u64).sum()
    }

    fn rel_count(&self) -> u64 {
        self.0.shards().iter().map(|s| s.rel_count() as u64).sum()
    }

    fn has_index(&self, label: u32, key: u32) -> bool {
        // Indexes are created on every shard; presence on shard 0 decides.
        self.0.shard(0).index_for(label, key).is_some()
    }

    fn node_survival(&self, labels: &[u32], ranges: &[(u32, u64, u64)]) -> f64 {
        self.weighted(
            |db| db.nodes().chunk_count(),
            |s| s.node_survival(labels, ranges),
        )
    }

    fn rel_survival(&self, label: Option<u32>) -> f64 {
        self.weighted(|db| db.rels().chunk_count(), |s| s.rel_survival(label))
    }
}

/// Survival fraction for a lowered head segment (access path + leading
/// filters), the quantity the planner prices scans with. Extracts the
/// sargable conjuncts exactly as the executor's pushdown will.
pub fn segment_survival(stats: &dyn StatsSource, seg: &[Op], params: &[gstore::PVal]) -> f64 {
    let pd = Pushdown::extract(seg, params);
    if pd.never {
        return 0.0;
    }
    stats.node_survival(&pd.labels, &pd.ranges)
}
