//! Cost-based pattern planning: expansion ordering, access-path choice,
//! and lowering onto the [`gquery::Plan`] operator language.
//!
//! A connected [`PatternGraph`] admits many join orders and, for its
//! start node, several access paths: a B+-tree point probe
//! ([`Op::IndexScan`]) when an equality predicate hits an index, a
//! B+-tree range probe ([`Op::IndexRangeScan`]) for ordered predicates,
//! or a zone-map pruned chunk scan ([`Op::NodeScan`] + pushdown). The
//! planner enumerates one greedy expansion order per candidate start
//! node, lowers each candidate into physical pipelines (one per
//! fixed-length assignment of the variable-length edges), prices every
//! pipeline with the cost model, and keeps the cheapest candidate —
//! or the most expensive under [`PlanChoice::Worst`], which is the
//! forced-bad-plan arm of the `pattern_match` bench.
//!
//! The cost model combines three signal sources:
//!
//! * **counts** — node/relationship table sizes from the stats source;
//! * **zone maps** — chunk-survival fractions for the sargable conjuncts
//!   of each pattern node, the same pruning the executor will perform;
//! * **PGO** — once a pipeline shape has run, observed per-segment
//!   selectivity from [`gjit::PgoTable::segment_selectivity`] replaces
//!   the static estimate on replan, so mis-estimates self-correct.
//!
//! Lowered pipelines are plain [`Plan`]s: the morsel scheduler, JIT
//! code cache, predicate pushdown and the expression tier all apply
//! unchanged. Residual predicates are kept on every segment even when an
//! access path over-approximates them (index keys are order-preserving
//! but not injective across value types), so a chosen access path never
//! changes which rows qualify — only how much work finding them costs.

use std::ops::Range;

use gjit::PgoTable;
use gquery::{CmpOp, Op, PPar, Plan, Pred, Proj, RelEnd};
use gstore::hash::fnv1a;
use gstore::PVal;
use graphcore::Dir;

use crate::parse::{err, MatchError};
use crate::pattern::{PatternGraph, PropPred, RetItem};
use crate::stats::StatsSource;

/// Records per chunk (zone-map grain): an equality conjunct inside a
/// surviving chunk is expected to keep ~1/64 of its rows.
const CHUNK: f64 = 64.0;
/// Assumed row survival of an ordered conjunct inside surviving chunks.
const ORD_REFINE: f64 = 1.0 / 3.0;
/// Cost of one B+-tree descent, in row-visit units.
const INDEX_PROBE: f64 = 16.0;
/// Cap on fixed-length pipelines one pattern may enumerate.
const MAX_PIPELINES: usize = 32;

/// Pick the cheapest or the most expensive candidate plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanChoice {
    Best,
    /// Deliberately worst order + access paths (bench baseline arm).
    Worst,
}

/// One physical pipeline segment: a contiguous operator range of the
/// pipeline plan, with its cost-model estimates.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Operator range into the owning [`Pipeline::plan`].
    pub ops: Range<usize>,
    /// Human-readable description for the slow log, e.g.
    /// `index_eq(a,key=4)` or `expand(a->b,rel=7,hops=2)`.
    pub desc: String,
    /// Access-path class: `index_eq`, `index_range`, `scan`, `expand`,
    /// `close`.
    pub access: &'static str,
    /// Static selectivity estimate (`rows_out / rows_in`; head segments
    /// are relative to the node count). May exceed 1 for expansions.
    pub sel: f64,
    /// Work term: absolute row-visits for head segments, per-input-row
    /// visits for expansions.
    pub work: f64,
    /// Estimated rows leaving this segment (filled by the cost pass,
    /// PGO-corrected when observations exist).
    pub est_rows: f64,
}

/// One lowered fixed-length pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    pub plan: Plan,
    /// Segment 0 is the scan head; segments 1.. are expansions.
    pub segments: Vec<Segment>,
    /// Estimated total row-visits (filled by the cost pass).
    pub est_cost: f64,
}

/// The chosen physical plan for one pattern.
#[derive(Debug, Clone)]
pub struct MatchPlan {
    /// One pipeline per fixed-length assignment of variable-length edges;
    /// results are the union, in pipeline order.
    pub pipelines: Vec<Pipeline>,
    pub limit: Option<usize>,
    pub count: bool,
    pub n_params: usize,
    /// Total estimated cost across pipelines.
    pub est_cost: f64,
    /// One-line plan summary (start node, access path, expansion order)
    /// for the slow log.
    pub summary: String,
    /// Shape hash over all pipeline fingerprints.
    pub fingerprint: u64,
}

/// Plan a pattern: enumerate candidate orders, lower, price, choose.
/// `params` must bind every `?N` the pattern references — the planner
/// prices zone-map survival against the *actual* parameter values, which
/// is why replanning per request is cheap and worthwhile.
pub fn plan(
    pg: &PatternGraph,
    stats: &dyn StatsSource,
    params: &[PVal],
    pgo: Option<&PgoTable>,
    choice: PlanChoice,
) -> Result<MatchPlan, MatchError> {
    if pg.nodes.is_empty() {
        return err("empty pattern");
    }
    if !pg.is_connected() {
        return err("disconnected pattern: every node must be reachable through pattern edges");
    }
    if params.len() < pg.n_params {
        return Err(MatchError(format!(
            "pattern references {} parameter(s), {} given",
            pg.n_params,
            params.len()
        )));
    }
    let combos: usize = pg
        .edges
        .iter()
        .map(|e| (e.max_hops - e.min_hops + 1) as usize)
        .product();
    if combos > MAX_PIPELINES {
        return Err(MatchError(format!(
            "pattern enumerates {combos} fixed-length pipelines (cap {MAX_PIPELINES}); tighten *min..max bounds"
        )));
    }

    let mut best: Option<(f64, MatchPlan)> = None;
    for start in 0..pg.nodes.len() {
        let steps = greedy_order(pg, stats, params, start);
        let candidate = lower_candidate(pg, stats, params, pgo, choice, start, &steps)?;
        let better = match &best {
            None => true,
            Some((cost, _)) => match choice {
                PlanChoice::Best => candidate.est_cost < *cost,
                PlanChoice::Worst => candidate.est_cost > *cost,
            },
        };
        if better {
            best = Some((candidate.est_cost, candidate));
        }
    }
    Ok(best.expect("at least one candidate").1)
}

/// One step of a candidate order.
#[derive(Debug, Clone, Copy)]
struct Step {
    edge: usize,
    /// Both endpoints already bound: the edge only filters.
    closing: bool,
    /// Walk direction: true ⇒ from the edge's `src` endpoint outward.
    from_src: bool,
}

/// Greedy expansion order from `start`: closing edges as soon as both
/// endpoints bind (they only shrink the binding table), otherwise the
/// expansion with the smallest estimated fan-out × target selectivity.
fn greedy_order(
    pg: &PatternGraph,
    stats: &dyn StatsSource,
    params: &[PVal],
    start: usize,
) -> Vec<Step> {
    let mut bound = vec![false; pg.nodes.len()];
    bound[start] = true;
    let mut done = vec![false; pg.edges.len()];
    let mut steps = Vec::with_capacity(pg.edges.len());
    loop {
        // Closing edges first, in pattern order.
        let mut progressed = false;
        for (i, e) in pg.edges.iter().enumerate() {
            if !done[i] && bound[e.src] && bound[e.dst] {
                done[i] = true;
                progressed = true;
                steps.push(Step {
                    edge: i,
                    closing: true,
                    from_src: true,
                });
            }
        }
        // Cheapest expansion next.
        let mut pick: Option<(f64, usize, bool)> = None;
        for (i, e) in pg.edges.iter().enumerate() {
            if done[i] {
                continue;
            }
            let (from_src, target) = match (bound[e.src], bound[e.dst]) {
                (true, false) => (true, e.dst),
                (false, true) => (false, e.src),
                _ => continue,
            };
            let deg = avg_degree(stats, e.label);
            let hops = f64::from(e.min_hops + e.max_hops) / 2.0;
            let (sel, _, _) = node_sel(stats, pg, target, params);
            let score = deg.powf(hops) * sel;
            if pick.map_or(true, |(s, _, _)| score < s) {
                pick = Some((score, i, from_src));
            }
        }
        match pick {
            Some((_, i, from_src)) => {
                done[i] = true;
                let e = &pg.edges[i];
                bound[if from_src { e.dst } else { e.src }] = true;
                steps.push(Step {
                    edge: i,
                    closing: false,
                    from_src,
                });
            }
            None if progressed => continue,
            None => break,
        }
    }
    steps
}

/// Lower one candidate into its pipelines, price them, and assemble a
/// [`MatchPlan`].
fn lower_candidate(
    pg: &PatternGraph,
    stats: &dyn StatsSource,
    params: &[PVal],
    pgo: Option<&PgoTable>,
    choice: PlanChoice,
    start: usize,
    steps: &[Step],
) -> Result<MatchPlan, MatchError> {
    let head = pick_head(pg, stats, params, choice, start);
    let mut assignments: Vec<Vec<u32>> = vec![vec![]];
    for e in &pg.edges {
        let mut next = Vec::new();
        for a in &assignments {
            for len in e.min_hops..=e.max_hops {
                let mut a = a.clone();
                a.push(len);
                next.push(a);
            }
        }
        assignments = next;
    }

    let mut pipelines = Vec::with_capacity(assignments.len());
    let mut total = 0.0;
    for lens in &assignments {
        let mut p = lower_pipeline(pg, stats, params, &head, start, steps, lens)?;
        price_pipeline(&mut p, stats, pgo);
        total += p.est_cost;
        pipelines.push(p);
    }

    let mut summary = format!("start={} {}", pg.nodes[start].name, head.desc);
    for s in steps {
        let e = &pg.edges[s.edge];
        let hops = if e.min_hops == e.max_hops {
            format!("{}", e.min_hops)
        } else {
            format!("{}..{}", e.min_hops, e.max_hops)
        };
        summary.push_str(&format!(
            " -> {}({}-[{}*{}]->{})",
            if s.closing { "close" } else { "expand" },
            pg.nodes[e.src].name,
            e.label.map_or_else(|| "*".into(), |l| l.to_string()),
            hops,
            pg.nodes[e.dst].name,
        ));
    }

    let mut fp_bytes = Vec::with_capacity(pipelines.len() * 8);
    for p in &pipelines {
        fp_bytes.extend_from_slice(&p.plan.fingerprint().to_le_bytes());
    }
    Ok(MatchPlan {
        pipelines,
        limit: pg.limit,
        count: pg.count,
        n_params: pg.n_params,
        est_cost: total,
        summary,
        fingerprint: fnv1a(&fp_bytes),
    })
}

/// A chosen head access path.
struct Head {
    ops: Vec<Op>,
    desc: String,
    access: &'static str,
    /// rows_out / node_count.
    sel: f64,
    /// Absolute row-visit cost of the access itself.
    work: f64,
}

/// Index-key range image of one sargable conjunct (the same rules as
/// `Pushdown::add_conjunct`); `None` when the conjunct can never hold.
fn range_of(p: &PropPred, params: &[PVal]) -> Option<Option<(u32, u64, u64)>> {
    let k = p.value.resolve(params).index_key();
    Some(match p.op {
        CmpOp::Eq => Some((p.key, k, k)),
        CmpOp::Le => Some((p.key, 0, k)),
        CmpOp::Ge => Some((p.key, k, u64::MAX)),
        CmpOp::Lt if k == 0 => return None,
        CmpOp::Lt => Some((p.key, 0, k - 1)),
        CmpOp::Gt if k == u64::MAX => return None,
        CmpOp::Gt => Some((p.key, k + 1, u64::MAX)),
        CmpOp::Ne => None,
    })
}

/// Zone-map + refinement selectivity of one pattern node's predicates:
/// `(row survival, chunk survival, provably-empty)`.
fn node_sel(
    pg_stats: &dyn StatsSource,
    pg: &PatternGraph,
    node: usize,
    params: &[PVal],
) -> (f64, f64, bool) {
    let n = &pg.nodes[node];
    let labels: Vec<u32> = n.label.into_iter().collect();
    let mut ranges = Vec::new();
    let mut refine = 1.0;
    for p in &n.preds {
        match range_of(p, params) {
            None => return (0.0, 0.0, true),
            Some(Some(r)) => ranges.push(r),
            Some(None) => {}
        }
        refine *= match p.op {
            CmpOp::Eq => 1.0 / CHUNK,
            CmpOp::Ne => 1.0,
            _ => ORD_REFINE,
        };
    }
    let survival = pg_stats.node_survival(&labels, &ranges);
    (survival * refine, survival, false)
}

/// Average fan-out of one relationship label.
fn avg_degree(stats: &dyn StatsSource, label: Option<u32>) -> f64 {
    let n = stats.node_count().max(1) as f64;
    stats.rel_count() as f64 * stats.rel_survival(label) / n
}

/// Enumerate viable head access paths for `start` and pick per `choice`.
fn pick_head(
    pg: &PatternGraph,
    stats: &dyn StatsSource,
    params: &[PVal],
    choice: PlanChoice,
    start: usize,
) -> Head {
    let s = &pg.nodes[start];
    let n = stats.node_count().max(1) as f64;
    let (sel, survival, never) = node_sel(stats, pg, start, params);
    let residual: Vec<Op> = s
        .preds
        .iter()
        .map(|p| {
            Op::Filter(Pred::Prop {
                col: 0,
                key: p.key,
                op: p.op,
                value: p.value,
            })
        })
        .collect();

    // Option 1: zone-map pruned chunk scan (always viable).
    let mut options = Vec::new();
    let mut scan_ops = vec![Op::NodeScan { label: s.label }];
    scan_ops.extend(residual.iter().cloned());
    options.push(Head {
        ops: scan_ops,
        desc: format!(
            "scan({},label={})",
            s.name,
            s.label.map_or_else(|| "*".into(), |l| l.to_string())
        ),
        access: "scan",
        sel: if never { 0.0 } else { sel },
        work: if never { 0.0 } else { n * survival },
    });

    // Options 2/3: B+-tree probes, when an index covers a predicate.
    if let Some(label) = s.label {
        for p in &s.preds {
            if never || !stats.has_index(label, p.key) {
                continue;
            }
            let (op, access) = match p.op {
                CmpOp::Eq => (
                    Op::IndexScan {
                        label,
                        key: p.key,
                        value: p.value,
                    },
                    "index_eq",
                ),
                CmpOp::Le | CmpOp::Lt => (
                    Op::IndexRangeScan {
                        label,
                        key: p.key,
                        lo: PPar::Const(PVal::Int(i64::MIN)),
                        hi: p.value,
                    },
                    "index_range",
                ),
                CmpOp::Ge | CmpOp::Gt => (
                    Op::IndexRangeScan {
                        label,
                        key: p.key,
                        lo: p.value,
                        hi: PPar::Const(PVal::Int(i64::MAX)),
                    },
                    "index_range",
                ),
                CmpOp::Ne => continue,
            };
            // The probe bounds the candidates; residuals keep exactness
            // (index keys are order-preserving, not injective).
            let probe_sel = if access == "index_eq" {
                (survival / CHUNK).min(1.0)
            } else {
                survival * ORD_REFINE
            };
            let mut ops = vec![op];
            ops.extend(residual.iter().cloned());
            options.push(Head {
                ops,
                desc: format!("{access}({},key={})", s.name, p.key),
                access,
                sel,
                work: INDEX_PROBE + n * probe_sel,
            });
        }
    }

    let idx = match choice {
        PlanChoice::Best => (0..options.len())
            .min_by(|&a, &b| options[a].work.total_cmp(&options[b].work))
            .unwrap(),
        PlanChoice::Worst => (0..options.len())
            .max_by(|&a, &b| options[a].work.total_cmp(&options[b].work))
            .unwrap(),
    };
    options.swap_remove(idx)
}

/// Lower one fixed-length pipeline for a candidate order.
fn lower_pipeline(
    pg: &PatternGraph,
    stats: &dyn StatsSource,
    params: &[PVal],
    head: &Head,
    start: usize,
    steps: &[Step],
    lens: &[u32],
) -> Result<Pipeline, MatchError> {
    let mut ops: Vec<Op> = head.ops.clone();
    let mut segments = vec![Segment {
        ops: 0..ops.len(),
        desc: head.desc.clone(),
        access: head.access,
        sel: head.sel,
        work: head.work,
        est_rows: 0.0,
    }];
    let mut col_of: Vec<Option<usize>> = vec![None; pg.nodes.len()];
    col_of[start] = Some(0);
    let mut next_col = 1usize;

    for step in steps {
        let e = &pg.edges[step.edge];
        let hops = lens[step.edge];
        let seg_start = ops.len();
        let deg = avg_degree(stats, e.label);
        let (from, to) = if step.from_src {
            (e.src, e.dst)
        } else {
            (e.dst, e.src)
        };
        let (dir, end) = if step.from_src {
            (Dir::Out, RelEnd::Dst)
        } else {
            (Dir::In, RelEnd::Src)
        };
        let mut cur = col_of[from].expect("walk origin is bound");
        let walk_hops = if step.closing { hops.saturating_sub(1) } else { hops };
        for _ in 0..walk_hops {
            ops.push(Op::ForeachRel {
                col: cur,
                dir,
                label: e.label,
            });
            ops.push(Op::GetNode {
                col: next_col,
                end,
            });
            cur = next_col + 1;
            next_col += 2;
        }
        let (sel, work);
        if step.closing {
            // Final hop lands on the already-bound endpoint.
            let target = col_of[to].expect("closing edge target is bound");
            ops.push(Op::ForeachRel {
                col: cur,
                dir,
                label: e.label,
            });
            ops.push(Op::GetNode {
                col: next_col,
                end,
            });
            let landed = next_col + 1;
            next_col += 2;
            ops.push(Op::Filter(Pred::ColEq { a: landed, b: target }));
            let n = stats.node_count().max(1) as f64;
            sel = deg.powi(hops as i32) / n;
            work = deg.powi(hops as i32);
        } else {
            // Target node's own constraints apply on the last hop.
            let t = &pg.nodes[to];
            if let Some(label) = t.label {
                ops.push(Op::Filter(Pred::LabelIs { col: cur, label }));
            }
            for p in &t.preds {
                ops.push(Op::Filter(Pred::Prop {
                    col: cur,
                    key: p.key,
                    op: p.op,
                    value: p.value,
                }));
            }
            col_of[to] = Some(cur);
            let (tsel, _, tnever) = node_sel(stats, pg, to, params);
            sel = if tnever { 0.0 } else { deg.powi(hops as i32) * tsel };
            work = deg.powi(hops as i32);
        }
        segments.push(Segment {
            ops: seg_start..ops.len(),
            desc: format!(
                "{}({}-[{}*{}]->{})",
                if step.closing { "close" } else { "expand" },
                pg.nodes[e.src].name,
                e.label.map_or_else(|| "*".into(), |l| l.to_string()),
                hops,
                pg.nodes[e.dst].name,
            ),
            access: if step.closing { "close" } else { "expand" },
            sel,
            work,
            est_rows: 0.0,
        });
    }

    // Final projection rides on the last segment.
    let mut projs = Vec::with_capacity(pg.returns.len());
    for r in &pg.returns {
        let proj = match r {
            RetItem::Id(i) => Proj::Id {
                col: col_of[*i]
                    .ok_or_else(|| MatchError(format!("node {} never bound", pg.nodes[*i].name)))?,
            },
            RetItem::Prop(i, key) => Proj::Prop {
                col: col_of[*i]
                    .ok_or_else(|| MatchError(format!("node {} never bound", pg.nodes[*i].name)))?,
                key: *key,
            },
        };
        projs.push(proj);
    }
    ops.push(Op::Project(projs));
    segments.last_mut().expect("head exists").ops.end = ops.len();

    Ok(Pipeline {
        plan: Plan::new(ops, pg.n_params),
        segments,
        est_cost: 0.0,
    })
}

/// The cost pass: walk the pipeline's segments, preferring observed PGO
/// selectivity over the static estimate, accumulating row-visit cost and
/// filling `est_rows`.
fn price_pipeline(p: &mut Pipeline, stats: &dyn StatsSource, pgo: Option<&PgoTable>) {
    let fp = p.plan.fingerprint();
    let mut rows = stats.node_count() as f64;
    let mut cost = 0.0;
    for (i, seg) in p.segments.iter_mut().enumerate() {
        let sel = pgo
            .and_then(|t| t.segment_selectivity(fp, i as u32))
            .unwrap_or(seg.sel);
        if i == 0 {
            cost += seg.work;
            rows = (rows * sel).max(0.0);
        } else {
            cost += rows * seg.work;
            rows *= sel;
        }
        seg.est_rows = rows;
    }
    p.est_cost = cost + rows;
}
