//! The logical pattern graph: the parsed AST resolved against a
//! database dictionary.
//!
//! Resolution unifies variables (two occurrences of `b` across paths are
//! one pattern node — the join on shared bindings), folds `where`
//! conjuncts into the node they constrain, normalises edge direction to
//! `src -> dst`, and maps label/key/string names to dictionary codes.
//! Unknown labels and keys are errors (the query cannot match and the
//! user almost certainly misspelled a name — the same contract as the
//! server's ad-hoc verbs); an unknown *string literal* resolves to a
//! sentinel code that equals no interned string, so `name = 'nobody'`
//! matches nothing and `name != 'nobody'` matches every node carrying
//! the key, exactly as if the string were interned but unused.

use gquery::{CmpOp, PPar};
use gstore::{Dictionary, PVal};

use crate::parse::{err, Ast, EdgeDir, Lit, MatchError, NodePat, PropPat, ReturnItem};

/// Name-to-code resolution, abstracted so planning does not care whether
/// codes come from a standalone dictionary or a sharded database's
/// mirrored dictionaries.
pub trait NameResolver {
    fn label_code(&self, name: &str) -> Option<u32>;
    fn key_code(&self, name: &str) -> Option<u32>;
    /// The dictionary code of an interned string literal, if present.
    fn str_code(&self, s: &str) -> Option<u32>;
}

/// Resolver over one [`Dictionary`] (a standalone database, or shard 0 of
/// a sharded one — interning is mirrored, so every shard agrees).
pub struct DictResolver<'a>(pub &'a Dictionary);

impl NameResolver for DictResolver<'_> {
    fn label_code(&self, name: &str) -> Option<u32> {
        self.0.code_of(name)
    }
    fn key_code(&self, name: &str) -> Option<u32> {
        self.0.code_of(name)
    }
    fn str_code(&self, s: &str) -> Option<u32> {
        self.0.code_of(s)
    }
}

/// A resolved property predicate on one pattern node.
#[derive(Debug, Clone, PartialEq)]
pub struct PropPred {
    pub key: u32,
    pub op: CmpOp,
    pub value: PPar,
}

/// A resolved pattern node.
#[derive(Debug, Clone)]
pub struct PNode {
    /// Variable name; synthesized (`_N`) for anonymous nodes.
    pub name: String,
    /// True when the node was written without a variable.
    pub anon: bool,
    pub label: Option<u32>,
    pub preds: Vec<PropPred>,
}

/// A resolved, direction-normalised pattern edge (`src -> dst`).
#[derive(Debug, Clone)]
pub struct PEdge {
    pub src: usize,
    pub dst: usize,
    pub label: Option<u32>,
    pub min_hops: u32,
    pub max_hops: u32,
}

/// One resolved return item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetItem {
    /// The entity id of a pattern node.
    Id(usize),
    /// A property of a pattern node.
    Prop(usize, u32),
}

/// The logical pattern graph the planner consumes.
#[derive(Debug, Clone)]
pub struct PatternGraph {
    pub nodes: Vec<PNode>,
    pub edges: Vec<PEdge>,
    pub returns: Vec<RetItem>,
    pub limit: Option<usize>,
    pub count: bool,
    /// Parameter slots referenced (`?N` ⇒ at least `N + 1`).
    pub n_params: usize,
}

impl PatternGraph {
    /// Resolve a parsed AST against a dictionary.
    pub fn resolve(ast: &Ast, names: &dyn NameResolver) -> Result<PatternGraph, MatchError> {
        let mut pg = PatternGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            returns: Vec::new(),
            limit: ast.limit,
            count: ast.count,
            n_params: 0,
        };
        let mut anon = 0usize;
        for path in &ast.paths {
            let mut prev = pg.add_node(&path.start, names, &mut anon)?;
            for (edge, node) in &path.hops {
                let next = pg.add_node(node, names, &mut anon)?;
                let label = match &edge.label {
                    Some(name) => Some(names.label_code(name).ok_or_else(|| {
                        MatchError(format!("unknown relationship label '{name}'"))
                    })?),
                    None => None,
                };
                let (src, dst) = match edge.dir {
                    EdgeDir::Right => (prev, next),
                    EdgeDir::Left => (next, prev),
                };
                pg.edges.push(PEdge {
                    src,
                    dst,
                    label,
                    min_hops: edge.min_hops,
                    max_hops: edge.max_hops,
                });
                prev = next;
            }
        }
        for cond in &ast.conds {
            let idx = pg.named(&cond.var).ok_or_else(|| {
                MatchError(format!("where clause references unknown variable '{}'", cond.var))
            })?;
            let pred = resolve_prop(&cond.prop, names, &mut pg.n_params)?;
            pg.nodes[idx].preds.push(pred);
        }
        if ast.returns.is_empty() {
            // Default projection: every named variable's id, in order.
            for (i, n) in pg.nodes.iter().enumerate() {
                if !n.anon {
                    pg.returns.push(RetItem::Id(i));
                }
            }
        } else {
            for item in &ast.returns {
                let (var, key) = match item {
                    ReturnItem::Var(v) => (v, None),
                    ReturnItem::Prop(v, k) => (v, Some(k)),
                };
                let idx = pg.named(var).ok_or_else(|| {
                    MatchError(format!("return item references unknown variable '{var}'"))
                })?;
                match key {
                    None => pg.returns.push(RetItem::Id(idx)),
                    Some(k) => {
                        let code = names
                            .key_code(k)
                            .ok_or_else(|| MatchError(format!("unknown property key '{k}'")))?;
                        pg.returns.push(RetItem::Prop(idx, code));
                    }
                }
            }
        }
        if pg.returns.is_empty() && !pg.count {
            return err("pattern binds no named variables; add a variable or 'count'");
        }
        Ok(pg)
    }

    /// Index of the named pattern node, if any.
    pub fn named(&self, var: &str) -> Option<usize> {
        self.nodes.iter().position(|n| !n.anon && n.name == var)
    }

    fn add_node(
        &mut self,
        pat: &NodePat,
        names: &dyn NameResolver,
        anon: &mut usize,
    ) -> Result<usize, MatchError> {
        let label = match &pat.label {
            Some(name) => Some(
                names
                    .label_code(name)
                    .ok_or_else(|| MatchError(format!("unknown node label '{name}'")))?,
            ),
            None => None,
        };
        let idx = match &pat.var {
            Some(var) => {
                if let Some(i) = self.named(var) {
                    // Shared binding: merge constraints into the one node.
                    match (self.nodes[i].label, label) {
                        (Some(a), Some(b)) if a != b => {
                            return err(format!("variable '{var}' bound to two different labels"));
                        }
                        (None, Some(b)) => self.nodes[i].label = Some(b),
                        _ => {}
                    }
                    i
                } else {
                    self.nodes.push(PNode {
                        name: var.clone(),
                        anon: false,
                        label,
                        preds: Vec::new(),
                    });
                    self.nodes.len() - 1
                }
            }
            None => {
                *anon += 1;
                self.nodes.push(PNode {
                    name: format!("_{anon}"),
                    anon: true,
                    label,
                    preds: Vec::new(),
                });
                self.nodes.len() - 1
            }
        };
        for prop in &pat.props {
            let mut n_params = self.n_params;
            let pred = resolve_prop(prop, names, &mut n_params)?;
            self.n_params = n_params;
            self.nodes[idx].preds.push(pred);
        }
        Ok(idx)
    }

    /// True when every pattern node is reachable from node 0 through
    /// pattern edges (in either direction). The planner only handles
    /// connected patterns — a cartesian product has no expansion to
    /// order.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for e in &self.edges {
                for (a, b) in [(e.src, e.dst), (e.dst, e.src)] {
                    if a == i && !seen[b] {
                        seen[b] = true;
                        stack.push(b);
                    }
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

/// Sentinel dictionary code for string literals that were never interned:
/// equal to no stored string, so `=` matches nothing and `!=` matches
/// every row carrying the key.
const UNINTERNED: u32 = u32::MAX;

fn resolve_prop(
    prop: &PropPat,
    names: &dyn NameResolver,
    n_params: &mut usize,
) -> Result<PropPred, MatchError> {
    let key = names
        .key_code(&prop.key)
        .ok_or_else(|| MatchError(format!("unknown property key '{}'", prop.key)))?;
    let value = match &prop.value {
        Lit::Int(v) => PPar::Const(PVal::Int(*v)),
        Lit::Float(v) => PPar::Const(PVal::Double(*v)),
        Lit::Bool(v) => PPar::Const(PVal::Bool(*v)),
        Lit::Null => PPar::Const(PVal::Null),
        Lit::Str(s) => PPar::Const(PVal::Str(names.str_code(s).unwrap_or(UNINTERNED))),
        Lit::Param(n) => {
            *n_params = (*n_params).max(n + 1);
            PPar::Param(*n)
        }
    };
    Ok(PropPred {
        key,
        op: prop.op,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapResolver(HashMap<String, u32>);

    impl NameResolver for MapResolver {
        fn label_code(&self, name: &str) -> Option<u32> {
            self.0.get(name).copied()
        }
        fn key_code(&self, name: &str) -> Option<u32> {
            self.0.get(name).copied()
        }
        fn str_code(&self, s: &str) -> Option<u32> {
            self.0.get(s).copied()
        }
    }

    fn resolver() -> MapResolver {
        MapResolver(
            [("Person", 1), ("KNOWS", 2), ("id", 3), ("age", 4)]
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn unifies_shared_bindings_across_paths() {
        let ast = crate::parse("(a:Person)-[:KNOWS]->(b), (b)-[:KNOWS]->(a) where b.age > 30")
            .unwrap();
        let pg = PatternGraph::resolve(&ast, &resolver()).unwrap();
        assert_eq!(pg.nodes.len(), 2, "a and b each resolve once");
        assert_eq!(pg.edges.len(), 2);
        assert_eq!(pg.edges[0].src, 0);
        assert_eq!(pg.edges[1].src, 1);
        assert_eq!(pg.nodes[1].preds.len(), 1, "where folded into b");
        assert_eq!(pg.returns, vec![RetItem::Id(0), RetItem::Id(1)]);
        assert!(pg.is_connected());
    }

    #[test]
    fn left_edges_normalise_direction() {
        let ast = crate::parse("(a:Person)<-[:KNOWS]-(b:Person)").unwrap();
        let pg = PatternGraph::resolve(&ast, &resolver()).unwrap();
        assert_eq!(pg.edges[0].src, 1, "b is the source");
        assert_eq!(pg.edges[0].dst, 0);
    }

    #[test]
    fn params_count_and_unknown_names_error() {
        let ast = crate::parse("(a:Person {id = ?2})").unwrap();
        let pg = PatternGraph::resolve(&ast, &resolver()).unwrap();
        assert_eq!(pg.n_params, 3);

        let ast = crate::parse("(a:Nope)").unwrap();
        assert!(PatternGraph::resolve(&ast, &resolver()).is_err());
        let ast = crate::parse("(a:Person {nope = 1})").unwrap();
        assert!(PatternGraph::resolve(&ast, &resolver()).is_err());
        let ast = crate::parse("(a:Person) where q.age > 1").unwrap();
        assert!(PatternGraph::resolve(&ast, &resolver()).is_err());
    }

    #[test]
    fn disconnected_patterns_detected() {
        let ast = crate::parse("(a:Person), (b:Person)").unwrap();
        let pg = PatternGraph::resolve(&ast, &resolver()).unwrap();
        assert!(!pg.is_connected());
    }
}
