//! Per-chunk DRAM write-tracking for the single-version scan fast path.
//!
//! The paper's premise (C1) is that PMem reads dominate scan cost, yet the
//! MVTO read path pays a version-chain probe and an `rts` CAS per record
//! even on tables that have never been updated. This module tracks, per
//! 64-record chunk, how many *in-flight* write intents currently touch the
//! chunk (`dirty`) plus the newest snapshot that scanned the chunk through
//! the fast path (`read_ts`). A chunk with `dirty == 0` is *clean*: every
//! record either is the latest committed version or carries enough
//! persistent state (`txn_id`/`bts`/`ets`) for a per-record fallback, so a
//! scan may consume record bytes directly.
//!
//! Soundness hinges on two rules (see DESIGN.md):
//!
//! * A fast scan publishes its snapshot id into `read_ts` **between** two
//!   `dirty == 0` checks (all `SeqCst`). A writer increments `dirty`
//!   *before* validating `read_ts`. In the sequentially-consistent total
//!   order either the reader's re-check observes the increment (the scan
//!   falls back to the full MVTO read) or the writer's validation observes
//!   the published `read_ts` (the writer aborts with `WriteConflict`,
//!   exactly as if the skipped per-record `rts` bumps had happened).
//! * `dirty` is balanced: +1 per acquired write lock and per insert,
//!   -1 at commit/abort once the record again satisfies the single-version
//!   invariant from every snapshot's perspective *or* carries a lock/`bts`
//!   that the per-record fast check rejects.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::chain::TableTag;

/// Tracking cell for one table chunk.
#[derive(Default)]
pub(crate) struct ChunkMeta {
    /// In-flight write intents (acquired locks + uncommitted inserts).
    pub dirty: AtomicU64,
    /// Newest snapshot id that fast-scanned this chunk (monotone, the
    /// chunk-grain analogue of a record's `rts`).
    pub read_ts: AtomicU64,
}

/// Grow-on-demand chunk metadata for one table. Chunks with no cell have
/// never seen a write intent since startup and count as clean.
#[derive(Default)]
struct TableChunks {
    metas: RwLock<Vec<Arc<ChunkMeta>>>,
}

impl TableChunks {
    /// The cell for `chunk`, creating it (and all predecessors) on demand.
    fn at(&self, chunk: usize) -> Arc<ChunkMeta> {
        {
            let g = self.metas.read();
            if let Some(m) = g.get(chunk) {
                return m.clone();
            }
        }
        let mut g = self.metas.write();
        while g.len() <= chunk {
            g.push(Arc::new(ChunkMeta::default()));
        }
        g[chunk].clone()
    }

    fn get(&self, chunk: usize) -> Option<Arc<ChunkMeta>> {
        self.metas.read().get(chunk).cloned()
    }

    fn reset(&self) {
        for m in self.metas.write().iter() {
            m.dirty.store(0, Ordering::SeqCst);
            m.read_ts.store(0, Ordering::SeqCst);
        }
    }
}

/// DRAM-only chunk state for the node and relationship tables. Owned by
/// the [`TxnManager`](crate::TxnManager); rebuilt empty on open (after a
/// crash or restart no transaction is in flight, so every chunk is clean).
#[derive(Default)]
pub struct ChunkState {
    enabled: AtomicBool,
    nodes: TableChunks,
    rels: TableChunks,
}

impl ChunkState {
    fn table(&self, tag: TableTag) -> &TableChunks {
        match tag {
            TableTag::Node => &self.nodes,
            TableTag::Rel => &self.rels,
        }
    }

    /// Enable or disable the fast-scan protocol. Write tracking itself is
    /// always on (it is a handful of atomics per write); the flag only
    /// gates [`try_fast_chunk`](Self::try_fast_chunk), so toggling at
    /// runtime is safe.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// True if fast scans are enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Try to claim the single-version fast path for scanning `chunk` at
    /// snapshot `reader_ts`: checks clean, publishes the snapshot id, and
    /// re-checks clean (see the module docs for the ordering argument).
    /// Returns false if the chunk has an in-flight writer or fast scans
    /// are disabled; the caller must then use the full MVTO read path.
    pub fn try_fast_chunk(&self, tag: TableTag, chunk: usize, reader_ts: u64) -> bool {
        if !self.enabled() {
            return false;
        }
        let meta = self.table(tag).at(chunk);
        if meta.dirty.load(Ordering::SeqCst) != 0 {
            return false;
        }
        meta.read_ts.fetch_max(reader_ts, Ordering::SeqCst);
        meta.dirty.load(Ordering::SeqCst) == 0
    }

    /// Newest fast-scan snapshot over `chunk` (0 if never fast-scanned).
    pub fn chunk_read_ts(&self, tag: TableTag, chunk: usize) -> u64 {
        self.table(tag)
            .get(chunk)
            .map(|m| m.read_ts.load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    /// Register a write intent on `chunk`. Returns the cell so the caller
    /// can validate `read_ts` after the increment.
    pub(crate) fn add_dirty(&self, tag: TableTag, chunk: usize) -> Arc<ChunkMeta> {
        let meta = self.table(tag).at(chunk);
        meta.dirty.fetch_add(1, Ordering::SeqCst);
        meta
    }

    /// Retire one write intent on `chunk`.
    pub(crate) fn sub_dirty(&self, tag: TableTag, chunk: usize) {
        if let Some(meta) = self.table(tag).get(chunk) {
            // `fetch_update` with `checked_sub` guards against an unpaired
            // decrement ever wrapping the counter to u64::MAX (which would
            // disable the fast path for the chunk forever).
            let _ = meta
                .dirty
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1));
        }
    }

    /// Current dirty count (diagnostics/tests).
    pub fn dirty_count(&self, tag: TableTag, chunk: usize) -> u64 {
        self.table(tag)
            .get(chunk)
            .map(|m| m.dirty.load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    /// Drop all tracking state for one table (crash recovery: no
    /// transaction survives a restart, so every chunk is clean again).
    pub(crate) fn reset(&self, tag: TableTag) {
        self.table(tag).reset();
    }
}
