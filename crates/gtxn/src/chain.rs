//! Volatile version chains (paper §5.2).
//!
//! The paper gives every node/relationship record a *volatile* pointer to a
//! DRAM list of dirty versions. We realise that as a sharded hash map from
//! record identity to a [`Chain`]: at most one uncommitted version (at the
//! front, owned by the locking transaction) plus superseded committed
//! versions kept for older readers until GC reclaims them.

use std::collections::HashMap;

use parking_lot::Mutex;

use gstore::RecId;

/// Maximum record size storable in a chain entry (NodeRecord 64, RelRecord
/// 88).
pub(crate) const MAX_REC: usize = 96;

/// Which primary table a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableTag {
    Node,
    Rel,
}

/// Identity of a versioned object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjKey {
    pub tag: TableTag,
    pub id: RecId,
}

/// One version held in DRAM.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VersionEntry {
    pub bytes: [u8; MAX_REC],
    /// Begin timestamp (copied out of the record for generic GC).
    pub bts: u64,
    /// End timestamp; `TS_INF` for an uncommitted new version.
    pub ets: u64,
    /// Creating transaction (0 for committed history entries). Kept for
    /// diagnostics and the `Debug` output of chain dumps.
    #[allow(dead_code)]
    pub by: u64,
}

impl VersionEntry {
    pub(crate) fn decode<R: pmem::Pod>(&self) -> R {
        let size = std::mem::size_of::<R>();
        debug_assert!(size <= MAX_REC);
        unsafe { (self.bytes.as_ptr() as *const R).read_unaligned() }
    }

    pub(crate) fn encode<R: pmem::Pod>(rec: &R, bts: u64, ets: u64, by: u64) -> VersionEntry {
        let size = std::mem::size_of::<R>();
        assert!(size <= MAX_REC, "record too large for version chain");
        let mut bytes = [0u8; MAX_REC];
        unsafe {
            std::ptr::copy_nonoverlapping(rec as *const R as *const u8, bytes.as_mut_ptr(), size);
        }
        VersionEntry { bytes, bts, ets, by }
    }
}

/// The dirty list of one object.
#[derive(Debug, Default)]
pub(crate) struct Chain {
    /// The in-flight version created by the locking transaction, if any.
    pub uncommitted: Option<VersionEntry>,
    /// Superseded committed versions, newest first.
    pub history: Vec<VersionEntry>,
}

impl Chain {
    fn is_empty(&self) -> bool {
        self.uncommitted.is_none() && self.history.is_empty()
    }
}

const SHARDS: usize = 16;

/// Sharded map of all version chains.
pub(crate) struct ChainMap {
    shards: [Mutex<HashMap<ObjKey, Chain>>; SHARDS],
}

impl ChainMap {
    pub fn new() -> ChainMap {
        ChainMap {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, key: &ObjKey) -> &Mutex<HashMap<ObjKey, Chain>> {
        let h = gstore::hash::mix64(key.id ^ ((key.tag as u64) << 56));
        &self.shards[(h as usize) % SHARDS]
    }

    /// Run `f` on the (possibly fresh) chain of `key`; drops the chain if it
    /// ends up empty.
    pub fn with<R>(&self, key: ObjKey, f: impl FnOnce(&mut Chain) -> R) -> R {
        let mut guard = self.shard(&key).lock();
        let chain = guard.entry(key).or_default();
        let r = f(chain);
        if chain.is_empty() {
            guard.remove(&key);
        }
        r
    }

    /// Read-only peek; returns `None` when the object has no chain.
    pub fn peek<R>(&self, key: ObjKey, f: impl FnOnce(&Chain) -> R) -> Option<R> {
        let guard = self.shard(&key).lock();
        guard.get(&key).map(f)
    }

    /// Prune history entries no longer visible to any transaction with
    /// `id >= oldest_active`. Returns the number of pruned entries.
    pub fn gc_key(&self, key: ObjKey, oldest_active: u64) -> usize {
        let mut guard = self.shard(&key).lock();
        let Some(chain) = guard.get_mut(&key) else {
            return 0;
        };
        let before = chain.history.len();
        chain.history.retain(|v| v.ets > oldest_active);
        let pruned = before - chain.history.len();
        if chain.is_empty() {
            guard.remove(&key);
        }
        pruned
    }

    /// Full sweep over all chains (periodic GC). Returns pruned count.
    pub fn gc_all(&self, oldest_active: u64) -> usize {
        let mut pruned = 0;
        for shard in &self.shards {
            let mut guard = shard.lock();
            guard.retain(|_, chain| {
                let before = chain.history.len();
                chain.history.retain(|v| v.ets > oldest_active);
                pruned += before - chain.history.len();
                !chain.is_empty()
            });
        }
        pruned
    }

    /// Total number of chains (test/stat helper).
    #[allow(dead_code)]
    pub fn chain_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Total number of history versions (test/stat helper).
    pub fn version_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .values()
                    .map(|c| c.history.len() + c.uncommitted.is_some() as usize)
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstore::NodeRecord;

    #[test]
    fn encode_decode_roundtrip() {
        let n = NodeRecord::new(5);
        let e = VersionEntry::encode(&n, 1, 2, 3);
        let back: NodeRecord = e.decode();
        assert_eq!(back, n);
        assert_eq!((e.bts, e.ets, e.by), (1, 2, 3));
    }

    #[test]
    fn empty_chains_are_dropped() {
        let m = ChainMap::new();
        let key = ObjKey {
            tag: TableTag::Node,
            id: 7,
        };
        m.with(key, |c| {
            assert!(c.uncommitted.is_none());
        });
        assert_eq!(m.chain_count(), 0);
        m.with(key, |c| {
            c.uncommitted = Some(VersionEntry::encode(&NodeRecord::new(1), 1, u64::MAX, 1));
        });
        assert_eq!(m.chain_count(), 1);
    }

    #[test]
    fn gc_prunes_by_ets() {
        let m = ChainMap::new();
        let key = ObjKey {
            tag: TableTag::Rel,
            id: 1,
        };
        m.with(key, |c| {
            for ets in [5u64, 10, 15] {
                c.history
                    .push(VersionEntry::encode(&NodeRecord::new(0), 1, ets, 0));
            }
        });
        assert_eq!(m.gc_key(key, 10), 2); // ets 5 and 10 invisible to id>=10
        assert_eq!(m.version_count(), 1);
        assert_eq!(m.gc_all(100), 1);
        assert_eq!(m.chain_count(), 0);
    }
}
