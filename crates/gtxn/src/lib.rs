//! MVTO multi-version concurrency control for PMem (paper §5).
//!
//! The protocol follows the paper's design decisions:
//!
//! * **Timestamp ordering** (§5.1): every transaction gets a unique id from
//!   a monotonic counter; `txn_id` on each record is a CAS-acquired write
//!   lock; `bts`/`ets` bracket a version's validity; `rts` records the
//!   newest reader (updated with an un-flushed CAS — after a crash all
//!   transactions are dead, so `rts` is safely reset by recovery).
//! * **DRAM version chains** (§5.2, DG1/DG2): uncommitted new versions and
//!   superseded old versions live in a volatile side table keyed by record
//!   id (the paper's per-record volatile `pointer` field); PMem always
//!   holds the *latest committed* version, so reads hit PMem first and only
//!   fall back to DRAM for older snapshots or own writes.
//! * **Atomic commit** (§5.1, DG4): all record overwrites of one commit are
//!   staged into a [`pmem::TxBatch`] and applied inside a single PMDK-style
//!   undo-log transaction ([`pmem::Pool::tx_apply_batches`]); new version
//!   bytes embed `txn_id = 0`, so the undo-log truncation is the single
//!   commit point and recovery never sees an ambiguous lock. Inserted
//!   records are stored in PMem immediately but stay locked until the
//!   commit transaction clears their `txn_id`. Concurrent commits are
//!   merged by the group-commit pipeline ([`CommitPipeline`]): one flush
//!   pass, one fence per phase and one log truncation for the whole group
//!   (DESIGN.md §10).
//! * **Transaction-level GC** (§5.3, DG5): version-chain entries whose
//!   `ets` precedes the oldest active transaction are pruned at commit;
//!   slots of deleted/aborted-insert records are recycled through the
//!   chunk bitmaps, never deallocated.

mod chain;
mod chunkstate;
mod commitpipe;
mod error;
mod manager;
mod obs;
mod syncmode;

pub use chain::{ObjKey, TableTag};
pub use chunkstate::ChunkState;
pub use commitpipe::CommitPipeline;
pub use error::TxnError;
pub use manager::{PendingCommit, Txn, TxnManager, TxnStats};
pub use syncmode::SyncMode;
