//! Transaction errors. Any error aborts the transaction (the paper's MVTO
//! aborts on every conflict; there is no waiting).

use std::fmt;

/// Why a transactional operation failed.
#[derive(Debug)]
pub enum TxnError {
    /// The record is write-locked by another active transaction (§5.1:
    /// "In case of a lock held by another transaction, the transaction is
    /// aborted").
    Locked,
    /// A write conflicted: the latest version was created or read by a
    /// newer transaction, or the object was deleted.
    WriteConflict,
    /// Operation on a transaction that already committed or aborted.
    Finished,
    /// A configuration string did not parse (e.g. `PMEMGRAPH_SYNC_MODE`).
    Config(String),
    /// Underlying pool error (out of space etc.).
    Pmem(pmem::PmemError),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Locked => write!(f, "record locked by another transaction"),
            TxnError::WriteConflict => write!(f, "write conflict (newer version or reader)"),
            TxnError::Finished => write!(f, "transaction already finished"),
            TxnError::Config(msg) => write!(f, "configuration error: {msg}"),
            TxnError::Pmem(e) => write!(f, "pool error: {e}"),
        }
    }
}

impl std::error::Error for TxnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TxnError::Pmem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pmem::PmemError> for TxnError {
    fn from(e: pmem::PmemError) -> Self {
        TxnError::Pmem(e)
    }
}

impl TxnError {
    /// True for conflicts that a caller may retry with a fresh transaction.
    pub fn is_retryable(&self) -> bool {
        matches!(self, TxnError::Locked | TxnError::WriteConflict)
    }
}
