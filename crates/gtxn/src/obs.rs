//! Transaction-path span histograms, registered lazily in the
//! process-global [`gobs`] registry.
//!
//! Sites pair [`gobs::span_start`] (one relaxed load when spans are
//! disabled — the default for embedded/benchmark use) with
//! `Histogram::observe_span`, so the hot commit path pays nothing until a
//! metrics consumer (the query server or the standalone exporter) enables
//! spans.

use gobs::Histogram;
use std::sync::OnceLock;
use std::time::Instant;

fn observe(
    cell: &'static OnceLock<Histogram>,
    name: &'static str,
    help: &'static str,
    span: Option<Instant>,
) {
    if span.is_some() {
        cell.get_or_init(|| gobs::global().histogram(name, help))
            .observe_span(span);
    }
}

/// Transaction begin: timestamp allocation + active-set insert (+ the
/// occasional high-water-mark persist).
pub fn begin(span: Option<Instant>) {
    static H: OnceLock<Histogram> = OnceLock::new();
    observe(
        &H,
        "pmemgraph_txn_begin_us",
        "transaction begin: timestamp allocation and active-set registration",
        span,
    );
}

/// MVTO write validation: the CAS write-lock acquire plus the rts /
/// chunk-read_ts checks in `lock_for_write`.
pub fn validate(span: Option<Instant>) {
    static H: OnceLock<Histogram> = OnceLock::new();
    observe(
        &H,
        "pmemgraph_txn_validate_us",
        "MVTO write validation: write-lock CAS and read-timestamp checks",
        span,
    );
}

/// Whole writer commit: history move, staging, durable persist, GC.
pub fn commit(span: Option<Instant>) {
    static H: OnceLock<Histogram> = OnceLock::new();
    observe(
        &H,
        "pmemgraph_txn_commit_us",
        "writer commit end-to-end: version staging, durable persist, chain GC",
        span,
    );
}

/// The durability wait inside commit: from batch handoff to the
/// group-commit pipeline until the log truncation makes it durable.
pub fn persist(span: Option<Instant>) {
    static H: OnceLock<Histogram> = OnceLock::new();
    observe(
        &H,
        "pmemgraph_txn_persist_us",
        "durability wait: group-commit handoff until log truncation",
        span,
    );
}

/// One group-commit application: the leader's 4-phase
/// `tx_apply_batches` over a drained group.
pub fn group_apply(span: Option<Instant>) {
    static H: OnceLock<Histogram> = OnceLock::new();
    observe(
        &H,
        "pmemgraph_txn_group_apply_us",
        "group-commit leader applying one drained batch group (4-fence budget)",
        span,
    );
}
