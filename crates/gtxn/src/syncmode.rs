//! The tiered durability ladder.
//!
//! OLTP traffic wants every acknowledged commit to survive a crash; bulk
//! ingest wants to amortise fences across thousands of transactions and is
//! happy to redo a lost tail. [`SyncMode`] names the three rungs and maps
//! them onto the two `pmem` commit primitives:
//!
//! * [`SyncMode::PerTxn`] — the default. Every commit (or commit group)
//!   runs the strict four-fence [`pmem::Pool::tx_apply_batches`] protocol
//!   and is durable when acknowledged.
//! * [`SyncMode::EveryN`]`(n)` — commits run the two-fence
//!   [`pmem::Pool::tx_apply_deferred`] protocol; after every `n`
//!   transactions the pipeline checkpoints (flush deferred data + truncate
//!   the accumulated undo log, two more fences). Amortised cost:
//!   `2 + 4/n` fences per transaction instead of 4. A crash loses at most
//!   the last `< n` transactions and recovers cleanly to the previous
//!   checkpoint.
//! * [`SyncMode::CheckpointOnly`] — like `EveryN` but nothing checkpoints
//!   automatically; durability points are the caller's explicit
//!   `CHECKPOINT` calls (server verb, [`crate::TxnManager::checkpoint`]) —
//!   plus implicit drains forced by a full undo log or a strict-path
//!   transaction.
//!
//! In the deferred rungs, the un-checkpointed tail is *atomic as a whole*:
//! recovery rolls back every transaction after the last checkpoint, never
//! a torn prefix of one.

use crate::error::TxnError;

/// Which durability rung commits run on. See the module docs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SyncMode {
    /// Strict: every commit durable when acknowledged (4 fences/group).
    #[default]
    PerTxn,
    /// Deferred with automatic checkpoints every `n` transactions.
    EveryN(u64),
    /// Deferred; only explicit `CHECKPOINT` creates a durability point.
    CheckpointOnly,
}

impl SyncMode {
    /// Parse the `PMEMGRAPH_SYNC_MODE` surface syntax:
    /// `per_txn` | `every=N` (N ≥ 1) | `checkpoint`.
    pub fn parse(s: &str) -> Result<SyncMode, TxnError> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("per_txn") {
            return Ok(SyncMode::PerTxn);
        }
        if s.eq_ignore_ascii_case("checkpoint") {
            return Ok(SyncMode::CheckpointOnly);
        }
        if let Some(n) = s.strip_prefix("every=") {
            if let Ok(n) = n.trim().parse::<u64>() {
                if n >= 1 {
                    return Ok(SyncMode::EveryN(n));
                }
            }
        }
        Err(TxnError::Config(format!(
            "bad sync mode {s:?}: want per_txn | every=N | checkpoint"
        )))
    }

    /// Resolve the mode from `PMEMGRAPH_SYNC_MODE`, falling back to the
    /// strict default on an unparsable value (an env typo must not silently
    /// weaken durability the *other* way — weakening requires a valid
    /// opt-in string).
    pub fn from_env() -> SyncMode {
        SyncMode::parse(&gconfig::sync_mode()).unwrap_or_default()
    }

    /// True for the rungs that defer data flushes to a checkpoint.
    pub fn is_deferred(&self) -> bool {
        !matches!(self, SyncMode::PerTxn)
    }

    /// Canonical rendering, round-trips through [`SyncMode::parse`].
    pub fn render(&self) -> String {
        match self {
            SyncMode::PerTxn => "per_txn".into(),
            SyncMode::EveryN(n) => format!("every={n}"),
            SyncMode::CheckpointOnly => "checkpoint".into(),
        }
    }
}

impl std::fmt::Display for SyncMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for m in [
            SyncMode::PerTxn,
            SyncMode::EveryN(1),
            SyncMode::EveryN(1000),
            SyncMode::CheckpointOnly,
        ] {
            assert_eq!(SyncMode::parse(&m.render()).unwrap(), m);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "sometimes", "every=", "every=0", "every=-3", "every=x"] {
            assert!(SyncMode::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_trimmed() {
        assert_eq!(SyncMode::parse(" PER_TXN ").unwrap(), SyncMode::PerTxn);
        assert_eq!(SyncMode::parse("Checkpoint").unwrap(), SyncMode::CheckpointOnly);
        assert_eq!(SyncMode::parse("every= 5").unwrap(), SyncMode::EveryN(5));
    }
}
