//! Group commit: a leader/follower batched commit pipeline.
//!
//! Every committer stages its PMem writes into a [`pmem::TxBatch`] and
//! enqueues it here. One committer — whoever grabs the leadership token
//! first — drains the queue and applies the whole group through
//! [`pmem::Pool::tx_apply_batches`]: one coalesced flush pass per phase,
//! one fence per phase (four per *group* instead of four per transaction)
//! and a single log truncation that is the atomic commit point for every
//! transaction in the group. Followers block on a per-batch slot until the
//! leader posts their result.
//!
//! Latency is bounded: the leader only waits for stragglers (up to
//! `PMEMGRAPH_GROUP_WAIT_US`, default 3 µs, runtime-tunable via
//! [`CommitPipeline::set_max_wait`]) while the workload looks multi-writer
//! — a second thread enqueued a batch within the last few milliseconds —
//! so a single-writer workload runs leader-only with zero added waiting
//! and degenerates to an ungrouped (but still flush-coalesced) commit.
//! The wait yields the CPU, which doubles as the mechanism that lets
//! other committers reach their enqueue on single-core hosts.
//! `PMEMGRAPH_GROUP_COMMIT=0` (or [`CommitPipeline::set_enabled`])
//! bypasses the queue entirely.
//!
//! Crash handling mirrors the no-group path: a committer is only told
//! "committed" after the group's log truncation, so rolling the whole
//! group back on recovery never revokes an acknowledged commit. If an
//! injected crash ([`pmem::CrashPoint`]) fires while the leader holds the
//! log, the pipeline poisons itself so post-crash committers fail fast
//! instead of touching the dirty log, then re-raises the crash on the
//! leader's thread.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use pmem::{Pool, PmemError, TxBatch};

use crate::error::TxnError;
use crate::syncmode::SyncMode;

/// Completion slot a follower parks on.
#[derive(Default)]
struct DoneSlot {
    result: Mutex<Option<Result<(), TxnError>>>,
    cv: Condvar,
}

impl DoneSlot {
    fn post(&self, r: Result<(), TxnError>) {
        *self.result.lock() = Some(r);
        self.cv.notify_all();
    }
}

struct Waiter {
    batch: TxBatch,
    slot: Arc<DoneSlot>,
}

/// How long after two *different* threads enqueued batches the pipeline
/// still assumes a multi-writer phase (and lets the leader wait for
/// stragglers). Generous on purpose: the hint only unlocks a wait that is
/// itself bounded by `max_wait`.
const MULTI_WRITER_WINDOW: Duration = Duration::from_millis(10);

/// Commit queue plus the recent-committer bookkeeping behind the
/// multi-writer hint. One mutex guards both: the hint is only read/written
/// on enqueue and at leader entry, which already take the lock.
#[derive(Default)]
struct Queue {
    waiters: Vec<Waiter>,
    /// Thread that last enqueued a batch.
    last_thread: Option<std::thread::ThreadId>,
    /// When it did.
    last_at: Option<Instant>,
    /// Until when the pipeline counts as multi-writer.
    multi_until: Option<Instant>,
}

impl Queue {
    fn push(&mut self, w: Waiter) {
        let now = Instant::now();
        let me = std::thread::current().id();
        if let (Some(t), Some(at)) = (self.last_thread, self.last_at) {
            if t != me && now.duration_since(at) < MULTI_WRITER_WINDOW {
                self.multi_until = Some(now + MULTI_WRITER_WINDOW);
            }
        }
        self.last_thread = Some(me);
        self.last_at = Some(now);
        self.waiters.push(w);
    }

    fn multi_writer(&self) -> bool {
        self.multi_until.is_some_and(|u| Instant::now() < u)
    }
}

/// The group-commit pipeline. One per [`TxnManager`](crate::TxnManager).
pub struct CommitPipeline {
    pool: Arc<Pool>,
    enabled: AtomicBool,
    /// Leader straggler-wait bound, in microseconds (runtime-tunable).
    max_wait_us: AtomicU64,
    /// Batches enqueued and not yet claimed by a leader, plus the
    /// multi-writer hint.
    queue: Mutex<Queue>,
    /// Leadership token: held while one committer runs a group.
    leader: Mutex<()>,
    /// Committers that entered [`commit`](Self::commit) and whose batch has
    /// not yet been claimed by a leader. Gates the straggler wait.
    pending: AtomicU64,
    /// Set when an injected crash unwound through a group commit; the pool
    /// state is mid-crash, so further commits must not touch the log.
    dead: AtomicBool,
    /// Groups of more than one batch (diagnostics).
    groups_formed: AtomicU64,
    /// Which durability rung [`apply`](Self::apply) routes through.
    sync_mode: Mutex<SyncMode>,
    /// Transactions applied since the last checkpoint; drives the
    /// `EveryN` cadence. Approximate under concurrency (cadence heuristic,
    /// not a correctness invariant — durability comes from the undo log).
    since_sync: AtomicU64,
}

/// `PMEMGRAPH_GROUP_COMMIT`: on unless `0`/`false`/`off`/`no`.
pub(crate) fn group_commit_env() -> bool {
    gconfig::group_commit()
}

fn group_wait_env() -> u64 {
    gconfig::group_wait_us()
}

impl CommitPipeline {
    pub fn new(pool: Arc<Pool>) -> CommitPipeline {
        CommitPipeline {
            pool,
            enabled: AtomicBool::new(group_commit_env()),
            max_wait_us: AtomicU64::new(group_wait_env()),
            queue: Mutex::new(Queue::default()),
            leader: Mutex::new(()),
            pending: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            groups_formed: AtomicU64::new(0),
            sync_mode: Mutex::new(SyncMode::from_env()),
            since_sync: AtomicU64::new(0),
        }
    }

    /// The active durability rung.
    pub fn sync_mode(&self) -> SyncMode {
        *self.sync_mode.lock()
    }

    /// Switch durability rung at runtime. Tightening (to [`SyncMode::PerTxn`])
    /// checkpoints first so everything already acknowledged under the looser
    /// rung becomes durable before the stricter contract is advertised.
    pub fn set_sync_mode(&self, mode: SyncMode) -> Result<(), TxnError> {
        let mut cur = self.sync_mode.lock();
        if cur.is_deferred() && !mode.is_deferred() {
            self.pool.checkpoint()?;
            self.since_sync.store(0, Ordering::Relaxed);
        }
        *cur = mode;
        Ok(())
    }

    /// Explicit durability point: flush the deferred tail and truncate the
    /// accumulated undo log. No-op (and cheap) under [`SyncMode::PerTxn`].
    pub fn checkpoint(&self) -> Result<(), TxnError> {
        self.since_sync.store(0, Ordering::Relaxed);
        self.pool.checkpoint().map_err(TxnError::from)
    }

    /// Apply one group of batches through the rung the sync mode selects.
    /// Both the ungrouped path and the leader's group path funnel through
    /// here, so the ladder applies uniformly.
    fn apply(&self, refs: &[&TxBatch]) -> Result<(), PmemError> {
        let mode = self.sync_mode();
        match mode {
            SyncMode::PerTxn => self.pool.tx_apply_batches(refs),
            SyncMode::EveryN(_) | SyncMode::CheckpointOnly => {
                match self.pool.tx_apply_deferred(refs) {
                    Err(PmemError::LogFull) => {
                        // The accumulated log is full: force a durability
                        // point to empty it, then retry once. Still-LogFull
                        // now means the group alone exceeds the log, which
                        // the caller's fallback splits.
                        self.pool.checkpoint()?;
                        self.since_sync.store(0, Ordering::Relaxed);
                        self.pool.tx_apply_deferred(refs)?;
                    }
                    r => r?,
                }
                if let SyncMode::EveryN(n) = mode {
                    let c = self
                        .since_sync
                        .fetch_add(refs.len() as u64, Ordering::Relaxed)
                        + refs.len() as u64;
                    if c >= n {
                        self.since_sync.store(0, Ordering::Relaxed);
                        self.pool.checkpoint()?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Whether grouping is active (the flush-coalesced batch commit is used
    /// either way).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggle grouping at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Multi-transaction groups formed so far.
    pub fn groups_formed(&self) -> u64 {
        self.groups_formed.load(Ordering::Relaxed)
    }

    /// The leader's straggler-wait bound. Defaults to
    /// `PMEMGRAPH_GROUP_WAIT_US` (3 µs unset).
    pub fn max_wait(&self) -> Duration {
        Duration::from_micros(self.max_wait_us.load(Ordering::Relaxed))
    }

    /// Tune the straggler-wait bound at runtime (benchmarks raise it to
    /// trade bounded commit latency for larger groups).
    pub fn set_max_wait(&self, d: Duration) {
        self.max_wait_us
            .store(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// Commit one transaction's staged batch, possibly grouped with other
    /// concurrent committers' batches. Under [`SyncMode::PerTxn`] this
    /// returns only after the batch is durable (log truncated); under the
    /// deferred rungs it returns once the batch is *applied and covered by
    /// the undo log* — durable at the next checkpoint.
    pub fn commit(&self, batch: TxBatch) -> Result<(), TxnError> {
        if !self.enabled.load(Ordering::Relaxed) {
            // Ungrouped: still one coalesced batch commit on the active
            // durability rung.
            return self.apply(&[&batch]).map_err(TxnError::from);
        }
        if self.dead.load(Ordering::SeqCst) {
            return Err(poisoned());
        }
        let slot = Arc::new(DoneSlot::default());
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.queue.lock().push(Waiter {
            batch,
            slot: slot.clone(),
        });

        loop {
            if let Some(r) = slot.result.lock().take() {
                return r;
            }
            if self.dead.load(Ordering::SeqCst) {
                return Err(poisoned());
            }
            if let Some(_lead) = self.leader.try_lock() {
                // Straggler wait, bounded by max_wait. A lone writer never
                // waits: with no companion batch, no mid-enqueue committer
                // (pending > queued) and no recent second writer, the loop
                // exits on its first check. In a multi-writer phase the
                // leader yields the CPU until a companion batch arrives —
                // that donated slice is what lets other committers reach
                // their own enqueue, so groups form even when commits never
                // physically overlap (single-core hosts, short commits).
                let deadline = Instant::now() + self.max_wait();
                let mut waited_out = false;
                loop {
                    let (queued, multi) = {
                        let q = self.queue.lock();
                        (q.waiters.len(), q.multi_writer())
                    };
                    if queued > 1 {
                        break; // a group is already waiting
                    }
                    let pend = self.pending.load(Ordering::SeqCst) as usize;
                    if queued >= pend && !multi {
                        break; // nobody else is coming
                    }
                    if Instant::now() >= deadline {
                        waited_out = true;
                        break;
                    }
                    std::thread::yield_now();
                }
                let mut q = self.queue.lock();
                let group: Vec<Waiter> = std::mem::take(&mut q.waiters);
                if waited_out && group.len() <= 1 {
                    // The hint promised a companion and none came (e.g. the
                    // second writer finished its workload): drop it so a
                    // now-single writer stops paying the wait. The next
                    // cross-thread enqueue re-arms it.
                    q.multi_until = None;
                }
                drop(q);
                if group.is_empty() {
                    // A previous leader claimed our batch; loop to collect
                    // the posted result.
                    continue;
                }
                self.pending.fetch_sub(group.len() as u64, Ordering::SeqCst);
                self.run_group(group);
                continue;
            }
            // Follower: park until the leader posts, with a timeout so a
            // leader that died without posting never strands us.
            let mut r = slot.result.lock();
            if r.is_none() {
                self.slot_wait(&slot, &mut r);
            }
            if let Some(r) = r.take() {
                return r;
            }
        }
    }

    fn slot_wait(
        &self,
        slot: &DoneSlot,
        guard: &mut parking_lot::MutexGuard<'_, Option<Result<(), TxnError>>>,
    ) {
        slot.cv.wait_for(guard, Duration::from_micros(200));
    }

    /// Apply one drained group and post every member's result.
    fn run_group(&self, group: Vec<Waiter>) {
        let span = gobs::span_start();
        let refs: Vec<&TxBatch> = group.iter().map(|w| &w.batch).collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.apply(&refs)
        }));
        crate::obs::group_apply(span);
        match outcome {
            Ok(Ok(())) => {
                if group.len() > 1 {
                    self.groups_formed.fetch_add(1, Ordering::Relaxed);
                }
                for w in &group {
                    w.slot.post(Ok(()));
                }
            }
            Ok(Err(e)) if group.len() == 1 => {
                group[0].slot.post(Err(e.into()));
            }
            Ok(Err(_)) => {
                // The merged group failed as a whole (e.g. combined log
                // demand exceeded capacity). Nothing was applied — retry
                // each batch alone so every committer gets its own verdict.
                for w in &group {
                    let r = self.apply(&[&w.batch]).map_err(TxnError::from);
                    w.slot.post(r);
                }
            }
            Err(panic) => {
                // Injected crash (or genuine bug) mid-group: the log is in
                // an arbitrary pre-truncation state. Poison the pipeline so
                // later committers fail fast rather than running another
                // log transaction over it, then re-raise on this thread —
                // crash-sweep harnesses catch it at their catch_unwind.
                self.dead.store(true, Ordering::SeqCst);
                for w in &group {
                    w.slot.post(Err(poisoned()));
                }
                std::panic::resume_unwind(panic);
            }
        }
    }
}

fn poisoned() -> TxnError {
    TxnError::Pmem(PmemError::BadPool(
        "commit pipeline poisoned by a crash during group commit".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe() -> (Arc<Pool>, CommitPipeline) {
        let pool = Arc::new(Pool::volatile(8 << 20).unwrap());
        let pipe = CommitPipeline::new(pool.clone());
        pipe.set_enabled(true);
        // Pin the rung: tests must not inherit PMEMGRAPH_SYNC_MODE.
        pipe.set_sync_mode(SyncMode::PerTxn).unwrap();
        (pool, pipe)
    }

    #[test]
    fn single_commit_applies_and_reports() {
        let (pool, pipe) = pipe();
        let off = pool.alloc(64).unwrap();
        let mut b = TxBatch::new();
        b.write_u64(off, 42);
        pipe.commit(b).unwrap();
        assert_eq!(pool.read_u64(off), 42);
    }

    #[test]
    fn concurrent_commits_form_groups_and_all_apply() {
        let (pool, pipe) = pipe();
        let pipe = Arc::new(pipe);
        let n_threads = 8usize;
        let per = 50usize;
        let offs: Vec<u64> = (0..n_threads * per).map(|_| pool.alloc(64).unwrap()).collect();
        let before = pool.stats().snapshot();
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let pipe = pipe.clone();
                let offs = &offs;
                s.spawn(move || {
                    for i in 0..per {
                        let off = offs[t * per + i];
                        let mut b = TxBatch::new();
                        b.write_u64(off, (t * per + i) as u64 + 1);
                        pipe.commit(b).unwrap();
                    }
                });
            }
        });
        for (i, &off) in offs.iter().enumerate() {
            assert_eq!(pool.read_u64(off), i as u64 + 1);
        }
        let d = pool.stats().snapshot() - before;
        assert_eq!(d.tx_commits, (n_threads * per) as u64);
        assert!(
            d.commit_groups <= d.tx_commits,
            "groups never exceed commits"
        );
    }

    #[test]
    fn disabled_pipeline_still_commits() {
        let (pool, pipe) = pipe();
        pipe.set_enabled(false);
        let off = pool.alloc(64).unwrap();
        let mut b = TxBatch::new();
        b.write_u64(off, 7);
        pipe.commit(b).unwrap();
        assert_eq!(pool.read_u64(off), 7);
        assert_eq!(pipe.groups_formed(), 0);
    }

    #[test]
    fn oversized_group_falls_back_to_individual_commits() {
        let mut path = std::env::temp_dir();
        path.push(format!("gtxn-pipe-logfull-{}", std::process::id()));
        let pool = Arc::new(
            Pool::create_with_log(&path, 4 << 20, pmem::DeviceProfile::dram(), 512).unwrap(),
        );
        let pipe = Arc::new(CommitPipeline::new(pool.clone()));
        pipe.set_enabled(true);
        pipe.set_sync_mode(SyncMode::PerTxn).unwrap();
        // Each batch needs 16 + 200-padded = 216+ log bytes: two fit only
        // one at a time in a 512-byte log.
        let offs: Vec<u64> = (0..4).map(|_| pool.alloc(256).unwrap()).collect();
        std::thread::scope(|s| {
            for (i, &off) in offs.iter().enumerate() {
                let pipe = pipe.clone();
                s.spawn(move || {
                    let mut b = TxBatch::new();
                    b.write_bytes(off, &[i as u8 + 1; 200]);
                    pipe.commit(b).unwrap();
                });
            }
        });
        for (i, &off) in offs.iter().enumerate() {
            let mut buf = [0u8; 200];
            pool.read_slice(off, &mut buf);
            assert_eq!(buf, [i as u8 + 1; 200]);
        }
        drop(pipe);
        drop(pool);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_too_large_even_alone_errors() {
        let mut path = std::env::temp_dir();
        path.push(format!("gtxn-pipe-logfull2-{}", std::process::id()));
        let pool = Arc::new(
            Pool::create_with_log(&path, 4 << 20, pmem::DeviceProfile::dram(), 128).unwrap(),
        );
        let pipe = CommitPipeline::new(pool.clone());
        pipe.set_enabled(true);
        pipe.set_sync_mode(SyncMode::PerTxn).unwrap();
        let off = pool.alloc(256).unwrap();
        let mut b = TxBatch::new();
        b.write_bytes(off, &[1u8; 200]);
        let r = pipe.commit(b);
        assert!(matches!(r, Err(TxnError::Pmem(PmemError::LogFull))));
        drop(pool);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_n_mode_amortises_fences() {
        let (pool, pipe) = pipe();
        pipe.set_enabled(false); // deterministic ungrouped path
        pipe.set_sync_mode(SyncMode::EveryN(4)).unwrap();
        let offs: Vec<u64> = (0..8).map(|_| pool.alloc(64).unwrap()).collect();
        let before = pool.stats().snapshot();
        for (i, &off) in offs.iter().enumerate() {
            let mut b = TxBatch::new();
            b.write_u64(off, i as u64 + 1);
            pipe.commit(b).unwrap();
        }
        let d = pool.stats().snapshot() - before;
        // 8 deferred commits at 2 fences + 2 checkpoints at 2 fences,
        // against 8 * 4 = 32 for the strict rung.
        assert_eq!(d.fences, 20);
        assert_eq!(d.deferred_txns, 8);
        assert_eq!(d.checkpoints, 2);
        assert!(!pool.deferred_pending(), "cadence hit exactly");
        for (i, &off) in offs.iter().enumerate() {
            assert_eq!(pool.read_u64(off), i as u64 + 1);
        }
    }

    #[test]
    fn checkpoint_only_defers_until_explicit_checkpoint() {
        let (pool, pipe) = pipe();
        pipe.set_enabled(false);
        pipe.set_sync_mode(SyncMode::CheckpointOnly).unwrap();
        let off = pool.alloc(64).unwrap();
        for v in 1..=5u64 {
            let mut b = TxBatch::new();
            b.write_u64(off, v);
            pipe.commit(b).unwrap();
        }
        assert!(pool.deferred_pending());
        assert_eq!(pool.stats().snapshot().checkpoints, 0);
        pipe.checkpoint().unwrap();
        assert!(!pool.deferred_pending());
        assert_eq!(pool.stats().snapshot().checkpoints, 1);
        assert_eq!(pool.read_u64(off), 5);
    }

    #[test]
    fn tightening_sync_mode_drains_the_deferred_tail() {
        let (pool, pipe) = pipe();
        pipe.set_enabled(false);
        pipe.set_sync_mode(SyncMode::CheckpointOnly).unwrap();
        let off = pool.alloc(64).unwrap();
        let mut b = TxBatch::new();
        b.write_u64(off, 9);
        pipe.commit(b).unwrap();
        assert!(pool.deferred_pending());
        pipe.set_sync_mode(SyncMode::PerTxn).unwrap();
        assert!(
            !pool.deferred_pending(),
            "strict rung must not advertise durability over an unflushed tail"
        );
    }

    #[test]
    fn deferred_log_full_forces_checkpoint_and_retries() {
        let mut path = std::env::temp_dir();
        path.push(format!("gtxn-pipe-deferred-logfull-{}", std::process::id()));
        let pool = Arc::new(
            Pool::create_with_log(&path, 4 << 20, pmem::DeviceProfile::dram(), 512).unwrap(),
        );
        let pipe = CommitPipeline::new(pool.clone());
        pipe.set_enabled(false);
        pipe.set_sync_mode(SyncMode::CheckpointOnly).unwrap();
        let off = pool.alloc(256).unwrap();
        // Each commit logs 216 bytes; the 512-byte log holds two, so the
        // third forces an internal checkpoint + retry — invisibly to us.
        for v in 1..=6u8 {
            let mut b = TxBatch::new();
            b.write_bytes(off, &[v; 200]);
            pipe.commit(b).unwrap();
        }
        assert!(pool.stats().snapshot().checkpoints >= 2);
        let mut buf = [0u8; 200];
        pool.read_slice(off, &mut buf);
        assert_eq!(buf, [6u8; 200]);
        drop(pipe);
        drop(pool);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn grouped_commits_ride_the_deferred_rung_too() {
        let (pool, pipe) = pipe();
        pipe.set_sync_mode(SyncMode::CheckpointOnly).unwrap();
        let pipe = Arc::new(pipe);
        let n_threads = 4usize;
        let per = 25usize;
        let offs: Vec<u64> = (0..n_threads * per).map(|_| pool.alloc(64).unwrap()).collect();
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let pipe = pipe.clone();
                let offs = &offs;
                s.spawn(move || {
                    for i in 0..per {
                        let off = offs[t * per + i];
                        let mut b = TxBatch::new();
                        b.write_u64(off, (t * per + i) as u64 + 1);
                        pipe.commit(b).unwrap();
                    }
                });
            }
        });
        for (i, &off) in offs.iter().enumerate() {
            assert_eq!(pool.read_u64(off), i as u64 + 1);
        }
        let snap = pool.stats().snapshot();
        assert_eq!(snap.deferred_txns, (n_threads * per) as u64);
        assert_eq!(snap.checkpoints, 0, "checkpoint-only never auto-drains");
        pipe.checkpoint().unwrap();
        assert!(!pool.deferred_pending());
    }

    #[test]
    fn crash_during_group_poisons_pipeline() {
        let pool = Arc::new(Pool::volatile(8 << 20).unwrap().with_crash_tracking());
        let pipe = CommitPipeline::new(pool.clone());
        pipe.set_enabled(true);
        pipe.set_sync_mode(SyncMode::PerTxn).unwrap();
        let off = pool.alloc(64).unwrap();
        let mut b = TxBatch::new();
        b.write_u64(off, 1);
        pool.inject_crash_after_flushes(0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pipe.commit(b)));
        pool.clear_crash_injection();
        assert!(outcome.is_err(), "leader re-raises the crash");
        // Post-crash committers fail fast instead of touching the log.
        let mut b2 = TxBatch::new();
        b2.write_u64(off, 2);
        assert!(matches!(pipe.commit(b2), Err(TxnError::Pmem(_))));
    }
}
