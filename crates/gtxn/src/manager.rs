//! The MVTO transaction manager (paper §5.1).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmem::Pool;

use gstore::chunked::CHUNK_CAP;
use gstore::{ChunkedTable, NodeRecord, PropRecord, RecId, RelRecord, Versioned, TS_INF};

use pmem::TxBatch;

use crate::chain::{ChainMap, ObjKey, TableTag, VersionEntry};
use crate::chunkstate::ChunkState;
use crate::commitpipe::CommitPipeline;
use crate::error::TxnError;

/// Timestamps are persisted in batches of this size so restart recovery can
/// continue with guaranteed-fresh ids after reading a single u64.
const TS_BATCH: u64 = 1024;
/// A full chain sweep runs every this many commits.
const GC_SWEEP_EVERY: u64 = 256;
/// Shards of the active-transaction set: timestamp bookkeeping must not
/// funnel every begin/finish through one mutex when writers scale out.
const ACTIVE_SHARDS: usize = 16;

/// Counters describing transaction-manager activity.
#[derive(Debug, Default)]
pub struct TxnStats {
    pub begun: AtomicU64,
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
    pub conflicts: AtomicU64,
    pub gc_pruned: AtomicU64,
}

/// One write-set element.
#[derive(Debug, Clone, Copy)]
struct WriteRef {
    tag: TableTag,
    id: RecId,
    delete: bool,
}

/// An open transaction. Obtained from [`TxnManager::begin`]; must be passed
/// to [`TxnManager::commit`] or [`TxnManager::abort`] exactly once (dropping
/// a `Txn` without either leaks its locks — the engine facade enforces the
/// discipline with an RAII wrapper).
pub struct Txn {
    /// Transaction identifier = begin timestamp (§5.1).
    pub id: u64,
    writes: Vec<WriteRef>,
    inserts: Vec<(TableTag, RecId)>,
    /// Property records inserted by this transaction (freed on abort).
    prop_inserts: Vec<RecId>,
    /// Property chains superseded by this transaction's updates; become
    /// garbage at commit (freed once no snapshot can reach them).
    prop_obsolete: Vec<RecId>,
    finished: bool,
}

impl Txn {
    /// True if the transaction performed no writes.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty() && self.inserts.is_empty() && self.prop_inserts.is_empty()
    }

    /// Record a property batch inserted on behalf of this transaction.
    pub fn track_prop_insert(&mut self, id: RecId) {
        self.prop_inserts.push(id);
    }

    /// Record a property batch that this transaction's update supersedes.
    pub fn track_prop_obsolete(&mut self, id: RecId) {
        self.prop_obsolete.push(id);
    }
}

/// A write transaction carried past batch construction: produced by
/// [`TxnManager::prepare_commit`], consumed by
/// [`TxnManager::finish_commit`] once the batch has been made durable.
/// The staged versions are already in the batch and the write locks are
/// still held, so the bytes may be persisted by any mechanism — the
/// shard-local [`CommitPipeline`] or a cross-shard `pmem::commit_epoch`.
pub struct PendingCommit {
    txn: Txn,
    batch: TxBatch,
}

impl PendingCommit {
    /// The persist batch staged for this transaction. Borrow it to hand
    /// to [`pmem::Pool::tx_prepare_batches`] / `pmem::commit_epoch`.
    pub fn batch(&self) -> &TxBatch {
        &self.batch
    }

    /// Transaction id (= begin timestamp) of the pending transaction.
    pub fn txn_id(&self) -> u64 {
        self.txn.id
    }
}

/// Deferred frees of superseded property chains: reclaimed once the oldest
/// active transaction is newer than the committing transaction.
struct DeferredProps {
    ets: u64,
    ids: Vec<RecId>,
}

/// The MVTO transaction manager. One per graph database instance.
pub struct TxnManager {
    pool: Arc<Pool>,
    /// Pool offset of the persisted timestamp high-water mark.
    ts_slot: u64,
    next_ts: AtomicU64,
    ts_hwm: AtomicU64,
    /// Active-transaction ids, sharded by `id % ACTIVE_SHARDS` so begin and
    /// finish on different ids rarely contend; the GC horizon is the min of
    /// the per-shard minima.
    active: Vec<Mutex<BTreeSet<u64>>>,
    chains: ChainMap,
    deferred_props: Mutex<Vec<DeferredProps>>,
    /// Per-chunk write tracking for the single-version scan fast path.
    chunk_state: ChunkState,
    /// Group-commit pipeline every writer commit routes through.
    pipeline: CommitPipeline,
    /// Bumped on every write-transaction commit. Snapshot caches (the
    /// analytics CSR) compare epochs to decide whether a materialized
    /// snapshot still reflects the latest committed state.
    mutation_epoch: AtomicU64,
    stats: TxnStats,
}

/// The chunk a record id lives in (64-record chunks, [`CHUNK_CAP`]).
#[inline]
fn chunk_of(id: RecId) -> usize {
    id as usize / CHUNK_CAP
}

impl TxnManager {
    /// Create a manager with a freshly allocated timestamp slot. Persist
    /// [`ts_slot`](Self::ts_slot) alongside the table roots to reopen.
    pub fn create(pool: Arc<Pool>) -> Result<TxnManager, TxnError> {
        let ts_slot = pool.alloc_zeroed(8)?;
        pool.write_u64(ts_slot, 1 + TS_BATCH);
        pool.persist(ts_slot, 8);
        Ok(TxnManager::with_slot(pool, ts_slot, 1, 1 + TS_BATCH))
    }

    /// Reopen from a persisted timestamp slot. All new timestamps start
    /// above the persisted high-water mark, so ids never repeat across
    /// restarts (committed `bts` values stay in the past).
    pub fn open(pool: Arc<Pool>, ts_slot: u64) -> TxnManager {
        let hwm = pool.read_u64(ts_slot);
        let next = hwm;
        let new_hwm = hwm + TS_BATCH;
        pool.write_u64(ts_slot, new_hwm);
        pool.persist(ts_slot, 8);
        TxnManager::with_slot(pool, ts_slot, next, new_hwm)
    }

    fn with_slot(pool: Arc<Pool>, ts_slot: u64, next: u64, hwm: u64) -> TxnManager {
        let pipeline = CommitPipeline::new(pool.clone());
        TxnManager {
            pool,
            ts_slot,
            next_ts: AtomicU64::new(next),
            ts_hwm: AtomicU64::new(hwm),
            active: (0..ACTIVE_SHARDS).map(|_| Mutex::new(BTreeSet::new())).collect(),
            chains: ChainMap::new(),
            deferred_props: Mutex::new(Vec::new()),
            chunk_state: ChunkState::default(),
            pipeline,
            mutation_epoch: AtomicU64::new(0),
            stats: TxnStats::default(),
        }
    }

    #[inline]
    fn active_shard(&self, id: u64) -> &Mutex<BTreeSet<u64>> {
        &self.active[(id % ACTIVE_SHARDS as u64) as usize]
    }

    /// Enable or disable group commit (commits stay flush-coalesced either
    /// way). Default follows `PMEMGRAPH_GROUP_COMMIT` (on).
    pub fn set_group_commit(&self, on: bool) {
        self.pipeline.set_enabled(on);
    }

    /// True if concurrent commits are grouped.
    pub fn group_commit(&self) -> bool {
        self.pipeline.enabled()
    }

    /// The group-commit pipeline (diagnostics).
    pub fn commit_pipeline(&self) -> &CommitPipeline {
        &self.pipeline
    }

    /// The active durability rung. Default follows `PMEMGRAPH_SYNC_MODE`.
    pub fn sync_mode(&self) -> crate::SyncMode {
        self.pipeline.sync_mode()
    }

    /// Switch durability rung at runtime; tightening checkpoints first.
    pub fn set_sync_mode(&self, mode: crate::SyncMode) -> Result<(), TxnError> {
        self.pipeline.set_sync_mode(mode)
    }

    /// Explicit durability point for the deferred rungs: flush all deferred
    /// data and truncate the accumulated undo log.
    pub fn checkpoint(&self) -> Result<(), TxnError> {
        self.pipeline.checkpoint()
    }

    /// Count of write-transaction commits since this manager was created.
    /// A snapshot built at epoch E is still current iff
    /// `mutation_epoch() == E`.
    pub fn mutation_epoch(&self) -> u64 {
        self.mutation_epoch.load(Ordering::Acquire)
    }

    /// Per-chunk write-tracking state (scan fast path).
    pub fn chunk_state(&self) -> &ChunkState {
        &self.chunk_state
    }

    /// Enable or disable the single-version scan fast path. Tracking stays
    /// on either way; only fast-path claims are gated.
    pub fn set_fast_scans(&self, on: bool) {
        self.chunk_state.set_enabled(on);
    }

    /// True if the scan fast path is enabled.
    pub fn fast_scans(&self) -> bool {
        self.chunk_state.enabled()
    }

    /// Claim the single-version fast path for one chunk at the given
    /// snapshot (see [`ChunkState::try_fast_chunk`]).
    pub fn try_fast_chunk(&self, tag: TableTag, chunk: usize, reader_ts: u64) -> bool {
        self.chunk_state.try_fast_chunk(tag, chunk, reader_ts)
    }

    /// Pool offset of the persisted timestamp high-water mark.
    pub fn ts_slot(&self) -> u64 {
        self.ts_slot
    }

    /// Activity counters.
    pub fn stats(&self) -> &TxnStats {
        &self.stats
    }

    /// Number of live version-chain entries (diagnostics).
    pub fn version_count(&self) -> usize {
        self.chains.version_count()
    }

    /// Begin a new transaction.
    pub fn begin(&self) -> Txn {
        let span = gobs::span_start();
        let id = self.next_ts.fetch_add(1, Ordering::SeqCst);
        // Persist the high-water mark in batches.
        if id + 1 >= self.ts_hwm.load(Ordering::Relaxed) {
            let new_hwm = id + 1 + TS_BATCH;
            self.ts_hwm.store(new_hwm, Ordering::Relaxed);
            self.pool.write_u64(self.ts_slot, new_hwm);
            self.pool.persist(self.ts_slot, 8);
        }
        self.active_shard(id).lock().insert(id);
        self.stats.begun.fetch_add(1, Ordering::Relaxed);
        crate::obs::begin(span);
        Txn {
            id,
            writes: Vec::new(),
            inserts: Vec::new(),
            prop_inserts: Vec::new(),
            prop_obsolete: Vec::new(),
            finished: false,
        }
    }

    /// Number of currently active transactions.
    pub fn active_count(&self) -> usize {
        self.active.iter().map(|s| s.lock().len()).sum()
    }

    /// The oldest still-active transaction id, or the next id to be handed
    /// out if nothing is active. Anything with `ets` at or below this is
    /// invisible to every current and future transaction (GC horizon).
    pub fn oldest_active_ts(&self) -> u64 {
        self.oldest_active()
    }

    /// A lightweight reader handle sharing an existing transaction's
    /// snapshot (same id). Used by the morsel-driven parallel executor so
    /// every worker sees one consistent snapshot. Marked finished: it can
    /// never commit or abort — lifecycle belongs to the parent.
    pub fn reader_at(&self, id: u64) -> Txn {
        Txn {
            id,
            writes: Vec::new(),
            inserts: Vec::new(),
            prop_inserts: Vec::new(),
            prop_obsolete: Vec::new(),
            finished: true,
        }
    }

    fn oldest_active(&self) -> u64 {
        // Same begin-window race as a single mutex: a transaction between
        // its `next_ts` fetch and the shard insert may be missed, which
        // only makes the horizon conservative for *it* (its id is newer
        // than anything the horizon guards).
        self.active
            .iter()
            .filter_map(|s| s.lock().first().copied())
            .min()
            .unwrap_or_else(|| self.next_ts.load(Ordering::SeqCst))
    }

    // ------------------------------------------------------------------
    // Read path (§5.1 "Read transaction")
    // ------------------------------------------------------------------

    /// Read the version of record `id` visible to `txn`. `Ok(None)` means
    /// the object does not exist in this snapshot (never created yet,
    /// deleted, or created by a newer transaction).
    pub fn read<R: Versioned>(
        &self,
        txn: &Txn,
        tag: TableTag,
        table: &ChunkedTable<R>,
        id: RecId,
    ) -> Result<Option<R>, TxnError> {
        if !table.is_live(id) {
            return Ok(None);
        }
        self.read_enumerated(txn, tag, table, id)
    }

    /// The specialised read used by compiled scan loops (§6.2): the caller
    /// enumerated the chunk occupancy bitmap, so the generic liveness
    /// re-check is compiled away. This is exactly the kind of
    /// per-query-context specialisation an interpreter's one-size-fits-all
    /// AOT operators cannot perform.
    pub fn read_enumerated<R: Versioned>(
        &self,
        txn: &Txn,
        tag: TableTag,
        table: &ChunkedTable<R>,
        id: RecId,
    ) -> Result<Option<R>, TxnError> {
        let rec = table.get(id);
        let key = ObjKey { tag, id };
        let lock = rec.txn_id();

        if lock == txn.id {
            // Own write: newest uncommitted version, or the inserted record.
            let own = self
                .chains
                .peek(key, |c| c.uncommitted.map(|e| (e.decode::<R>(), e.ets)))
                .flatten();
            if let Some((own, ets)) = own {
                if ets <= txn.id {
                    return Ok(None); // deleted by ourselves
                }
                return Ok(Some(own));
            }
            return Ok(Some(rec));
        }

        if rec.bts() <= txn.id {
            if lock != 0 {
                // Pending overwrite by another transaction whose outcome
                // affects this snapshot — the paper aborts the reader.
                // Distinguish an uncommitted *insert* by a newer txn: its
                // bts equals the lock owner's id; invisible to us, skip.
                if rec.bts() == lock && rec.bts() > txn.id {
                    return Ok(None);
                }
                self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
                return Err(TxnError::Locked);
            }
            if rec.ets() <= txn.id {
                // Deleted before our snapshot; history is older still.
                return Ok(None);
            }
            // Latest committed version is ours: bump rts (unflushed CAS —
            // recoverable metadata; DESIGN.md §10 argues why a bump lost
            // to a crash is harmless, and `lost_rts_bump_after_crash_is_
            // harmless` exercises it).
            let off = table.record_off(id) + R::RTS_OFF as u64;
            let rts = self.pool.atomic_u64(off);
            let mut cur = rts.load(Ordering::Relaxed);
            while cur < txn.id {
                match rts.compare_exchange_weak(cur, txn.id, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
            return Ok(Some(rec));
        }

        // bts > txn.id: the latest committed version is too new; search the
        // DRAM history chain for the version valid at our snapshot.
        // An uncommitted insert (bts == lock) is simply invisible.
        if rec.bts() == lock {
            return Ok(None);
        }
        let found = self.chains.peek(key, |c| {
            c.history
                .iter()
                .find(|v| v.bts <= txn.id && txn.id < v.ets)
                .map(|v| v.decode::<R>())
        });
        Ok(found.flatten())
    }

    /// The scan fast path for a chunk claimed via [`try_fast_chunk`]
    /// (§C1: skip the chain probe and the per-record `rts` CAS): a record
    /// that is unlocked, began at or before our snapshot and is not
    /// deleted *is* the visible version — use its bytes directly. Anything
    /// else (in-flight lock, newer version, tombstone) falls back to the
    /// full MVTO read for that record. Repeatable reads are preserved by
    /// the chunk-grain `read_ts` published by the claim, which
    /// [`lock_for_write`](Self::lock_for_write) validates like `rts`.
    pub fn read_fast<R: Versioned>(
        &self,
        txn: &Txn,
        tag: TableTag,
        table: &ChunkedTable<R>,
        id: RecId,
    ) -> Result<Option<R>, TxnError> {
        let rec = table.get(id);
        if rec.txn_id() == 0 && rec.bts() <= txn.id && rec.ets() == TS_INF {
            return Ok(Some(rec));
        }
        self.read_enumerated(txn, tag, table, id)
    }

    /// Non-transactional read of the latest committed version (recovery and
    /// index rebuild paths). Returns `None` for uncommitted inserts.
    pub fn read_latest_committed<R: Versioned>(
        &self,
        table: &ChunkedTable<R>,
        id: RecId,
    ) -> Option<R> {
        if !table.is_live(id) {
            return None;
        }
        let rec = table.get(id);
        if rec.txn_id() != 0 && rec.bts() == rec.txn_id() {
            return None; // uncommitted insert
        }
        Some(rec)
    }

    // ------------------------------------------------------------------
    // Write path (§5.1 "Write transaction")
    // ------------------------------------------------------------------

    fn lock_for_write<R: Versioned>(
        &self,
        txn: &Txn,
        tag: TableTag,
        table: &ChunkedTable<R>,
        id: RecId,
    ) -> Result<R, TxnError> {
        let span = gobs::span_start();
        let r = self.lock_for_write_inner(txn, tag, table, id);
        crate::obs::validate(span);
        r
    }

    fn lock_for_write_inner<R: Versioned>(
        &self,
        txn: &Txn,
        tag: TableTag,
        table: &ChunkedTable<R>,
        id: RecId,
    ) -> Result<R, TxnError> {
        let off = table.record_off(id) + R::TXN_ID_OFF as u64;
        if self.pool.compare_exchange_u64(off, 0, txn.id).is_err() {
            self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
            return Err(TxnError::Locked);
        }
        // Re-read under the lock; validate MVTO write rules.
        let rec = table.get(id);
        if rec.bts() > txn.id || rec.ets() != TS_INF || rec.rts() > txn.id {
            // A newer version exists, the object is deleted, or a newer
            // transaction already read this version (id(T) < rts ⇒ abort).
            self.pool.atomic_store_u64(off, 0, Ordering::Release);
            self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
            return Err(TxnError::WriteConflict);
        }
        // Mark the chunk dirty, then validate the chunk-grain read_ts: a
        // newer snapshot may have fast-scanned this chunk without bumping
        // per-record `rts` values. The increment happens *before* the load
        // so that (SeqCst total order) either we observe the reader's
        // published snapshot here, or the reader's clean re-check observes
        // our increment and takes the slow path.
        let meta = self.chunk_state.add_dirty(tag, chunk_of(id));
        if meta.read_ts.load(Ordering::SeqCst) > txn.id {
            self.chunk_state.sub_dirty(tag, chunk_of(id));
            self.pool.atomic_store_u64(off, 0, Ordering::Release);
            self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
            return Err(TxnError::WriteConflict);
        }
        Ok(rec)
    }

    /// Insert a new record. It is written to PMem immediately (the paper:
    /// "If the transaction inserts a new object, this object is already
    /// stored in the persistent array, but still locked until the end of
    /// the transaction").
    pub fn insert<R: Versioned>(
        &self,
        txn: &mut Txn,
        tag: TableTag,
        table: &ChunkedTable<R>,
        mut rec: R,
    ) -> Result<RecId, TxnError> {
        if txn.finished {
            return Err(TxnError::Finished);
        }
        rec.set_txn_id(txn.id);
        rec.set_bts(txn.id);
        rec.set_ets(TS_INF);
        rec.set_rts(0);
        let id = table.insert(&rec)?;
        self.chunk_state.add_dirty(tag, chunk_of(id));
        txn.inserts.push((tag, id));
        Ok(id)
    }

    /// Update a record: lock it, then apply `f` to a copy that becomes the
    /// new uncommitted version in the DRAM dirty list (§5.2 — all writes of
    /// the transaction's lifetime happen at DRAM latency).
    pub fn update<R: Versioned>(
        &self,
        txn: &mut Txn,
        tag: TableTag,
        table: &ChunkedTable<R>,
        id: RecId,
        f: impl FnOnce(&mut R),
    ) -> Result<(), TxnError> {
        if txn.finished {
            return Err(TxnError::Finished);
        }
        let key = ObjKey { tag, id };
        let cur = table.get(id);
        if cur.txn_id() == txn.id {
            // Already locked by us: mutate the uncommitted version (or the
            // inserted record in place — it is invisible to others anyway).
            let mut f = Some(f);
            let had_chain = self.chains.with(key, |c| {
                if let Some(e) = &mut c.uncommitted {
                    let mut r: R = e.decode();
                    (f.take().expect("applied once"))(&mut r);
                    *e = VersionEntry::encode(&r, e.bts, e.ets, txn.id);
                    true
                } else {
                    false
                }
            });
            if !had_chain {
                let mut r = cur;
                (f.take().expect("applied once"))(&mut r);
                table.write(id, &r);
            }
            return Ok(());
        }
        let rec = self.lock_for_write(txn, tag, table, id)?;
        let mut new = rec;
        new.set_txn_id(txn.id);
        new.set_bts(txn.id);
        new.set_ets(TS_INF);
        new.set_rts(0);
        f(&mut new);
        self.chains.with(key, |c| {
            debug_assert!(c.uncommitted.is_none());
            c.uncommitted = Some(VersionEntry::encode(&new, txn.id, TS_INF, txn.id));
        });
        txn.writes.push(WriteRef {
            tag,
            id,
            delete: false,
        });
        Ok(())
    }

    /// Delete a record: lock it and stage a tombstone (commit sets the
    /// PMem version's `ets` to the transaction id, §5.1).
    pub fn delete<R: Versioned>(
        &self,
        txn: &mut Txn,
        tag: TableTag,
        table: &ChunkedTable<R>,
        id: RecId,
    ) -> Result<(), TxnError> {
        if txn.finished {
            return Err(TxnError::Finished);
        }
        let key = ObjKey { tag, id };
        let cur = table.get(id);
        if cur.txn_id() == txn.id {
            // Deleting our own insert or update: stage a tombstone entry.
            self.chains.with(key, |c| {
                let mut e = c
                    .uncommitted
                    .unwrap_or_else(|| VersionEntry::encode(&cur, cur.bts(), TS_INF, txn.id));
                e.ets = txn.id;
                c.uncommitted = Some(e);
            });
            if !txn.writes.iter().any(|w| w.tag == tag && w.id == id) {
                txn.writes.push(WriteRef {
                    tag,
                    id,
                    delete: true,
                });
            } else {
                for w in &mut txn.writes {
                    if w.tag == tag && w.id == id {
                        w.delete = true;
                    }
                }
            }
            return Ok(());
        }
        let rec = self.lock_for_write(txn, tag, table, id)?;
        self.chains.with(key, |c| {
            let mut e = VersionEntry::encode(&rec, rec.bts(), TS_INF, txn.id);
            e.ets = txn.id;
            c.uncommitted = Some(e);
        });
        txn.writes.push(WriteRef {
            tag,
            id,
            delete: true,
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Commit / abort (§5.1 "Commit")
    // ------------------------------------------------------------------

    /// Commit: persist every staged version atomically in one undo-log
    /// transaction, unlock inserts inside the same transaction, then prune
    /// version chains (transaction-level GC, §5.3).
    pub fn commit(
        &self,
        txn: Txn,
        nodes: &ChunkedTable<NodeRecord>,
        rels: &ChunkedTable<RelRecord>,
        props: &ChunkedTable<PropRecord>,
    ) -> Result<(), TxnError> {
        let span = gobs::span_start();
        let Some(pending) = self.prepare_commit(txn, nodes, rels, props)? else {
            return Ok(());
        };
        let PendingCommit { txn, batch } = pending;
        let persist_span = gobs::span_start();
        self.pipeline.commit(batch)?;
        crate::obs::persist(persist_span);
        self.finish_committed(txn, props);
        crate::obs::commit(span);
        Ok(())
    }

    /// First half of [`commit`](Self::commit): build the persist batch but
    /// do not persist it. Returns `None` for read-only transactions (they
    /// are finished immediately; there is nothing to persist). The caller
    /// must either persist the batch — through the [`CommitPipeline`] or a
    /// cross-shard [`pmem::commit_epoch`] — and then call
    /// [`finish_commit`](Self::finish_commit), or drop the `PendingCommit`
    /// and abort via recovery. This split lets a router commit several
    /// shards' batches under one atomic epoch while each shard's manager
    /// keeps ownership of its own version chains and GC.
    pub fn prepare_commit(
        &self,
        mut txn: Txn,
        nodes: &ChunkedTable<NodeRecord>,
        rels: &ChunkedTable<RelRecord>,
        props: &ChunkedTable<PropRecord>,
    ) -> Result<Option<PendingCommit>, TxnError> {
        if txn.finished {
            return Err(TxnError::Finished);
        }
        txn.finished = true;
        if txn.is_read_only() {
            self.finish(&txn, props);
            self.stats.commits.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }

        // Move the current committed versions into DRAM history *before*
        // overwriting PMem, so older snapshots stay readable (§5.2).
        for w in &txn.writes {
            let key = ObjKey { tag: w.tag, id: w.id };
            match w.tag {
                TableTag::Node => {
                    let cur = nodes.get(w.id);
                    let mut e = VersionEntry::encode(&cur, cur.bts(), txn.id, 0);
                    e.ets = txn.id;
                    self.chains.with(key, |c| c.history.insert(0, e));
                }
                TableTag::Rel => {
                    let cur = rels.get(w.id);
                    let mut e = VersionEntry::encode(&cur, cur.bts(), txn.id, 0);
                    e.ets = txn.id;
                    self.chains.with(key, |c| c.history.insert(0, e));
                }
            }
        }

        // Take the staged versions OUT of the chains before persisting:
        // the lock is released inside the atomic transaction below, so a
        // rival writer may acquire it and stage its own version into the
        // chain before this function returns — the chain slot must already
        // be free by then. (Readers still see the lock until the in-memory
        // unlock inside the transaction, so removing the entry early never
        // hides our writes from a visible snapshot.)
        let staged: Vec<Option<VersionEntry>> = txn
            .writes
            .iter()
            .map(|w| {
                let key = ObjKey { tag: w.tag, id: w.id };
                self.chains.with(key, |c| c.uncommitted.take())
            })
            .collect();

        // Atomic persist: stage every record overwrite and every
        // insert/update unlock into one TxBatch (DG4), then hand it to the
        // group-commit pipeline — concurrent committers' batches run as a
        // single undo-log transaction whose log truncation is the shared
        // commit point. Batches are disjoint (each touches only records
        // its transaction holds the write lock on), so merging them never
        // reorders conflicting stores.
        let txn_id = txn.id;
        let mut batch = TxBatch::new();
        for (w, entry) in txn.writes.iter().zip(&staged) {
            match w.tag {
                TableTag::Node => {
                    Self::stage_version::<NodeRecord>(&mut batch, entry, w.id, nodes, txn_id, w.delete);
                }
                TableTag::Rel => {
                    Self::stage_version::<RelRecord>(&mut batch, entry, w.id, rels, txn_id, w.delete);
                }
            }
        }
        for &(tag, id) in &txn.inserts {
            let off = match tag {
                TableTag::Node => nodes.record_off(id) + NodeRecord::TXN_ID_OFF as u64,
                TableTag::Rel => rels.record_off(id) + RelRecord::TXN_ID_OFF as u64,
            };
            batch.write_u64(off, 0);
        }
        Ok(Some(PendingCommit { txn, batch }))
    }

    /// Second half of [`commit`](Self::commit): run after the pending
    /// batch has been made durable by the caller. Releases write intents,
    /// finishes the transaction, and prunes version chains.
    pub fn finish_commit(&self, pending: PendingCommit, props: &ChunkedTable<PropRecord>) {
        self.finish_committed(pending.txn, props);
    }

    fn finish_committed(&self, mut txn: Txn, props: &ChunkedTable<PropRecord>) {
        self.retire_write_intents(&txn);

        // Superseded property chains become garbage at our commit time.
        if !txn.prop_obsolete.is_empty() {
            self.deferred_props.lock().push(DeferredProps {
                ets: txn.id,
                ids: std::mem::take(&mut txn.prop_obsolete),
            });
        }

        self.finish(&txn, props);
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        // Committed mutations invalidate materialized snapshots.
        self.mutation_epoch.fetch_add(1, Ordering::Release);

        // Transaction-level GC on the keys we touched.
        let oldest = self.oldest_active();
        let mut pruned = 0;
        for w in &txn.writes {
            pruned += self.chains.gc_key(ObjKey { tag: w.tag, id: w.id }, oldest);
        }
        if self.stats.commits.load(Ordering::Relaxed).is_multiple_of(GC_SWEEP_EVERY) {
            pruned += self.chains.gc_all(oldest);
        }
        self.stats.gc_pruned.fetch_add(pruned as u64, Ordering::Relaxed);
    }

    /// Retire the chunk write intents registered by this transaction's
    /// lock acquisitions and inserts — called once per transaction, after
    /// the records are unlocked (commit) or rolled back (abort). Exactly
    /// one increment happened per acquired lock and per insert; a
    /// `WriteRef` covering one of the transaction's own inserts (a
    /// deleted own insert) took no extra lock, so it is skipped.
    fn retire_write_intents(&self, txn: &Txn) {
        for w in &txn.writes {
            if txn.inserts.iter().any(|&(t, i)| t == w.tag && i == w.id) {
                continue;
            }
            self.chunk_state.sub_dirty(w.tag, chunk_of(w.id));
        }
        for &(tag, id) in &txn.inserts {
            self.chunk_state.sub_dirty(tag, chunk_of(id));
        }
    }

    fn stage_version<R: Versioned>(
        batch: &mut TxBatch,
        staged: &Option<VersionEntry>,
        id: RecId,
        table: &ChunkedTable<R>,
        txn_id: u64,
        delete: bool,
    ) {
        let off = table.record_off(id);
        if delete {
            // Tombstone: the current version's ets is set to id(T); the
            // record itself stays for older readers until GC frees the slot.
            batch.write_u64(off + R::ETS_OFF as u64, txn_id);
            batch.write_u64(off + R::TXN_ID_OFF as u64, 0);
        } else {
            let mut new: R = staged
                .as_ref()
                .map(|e| e.decode::<R>())
                .expect("staged version present at commit");
            // Write the body while the record still reads as locked, then
            // release the lock with a separate 8-byte store — concurrent
            // readers never observe a half-written record claiming to be
            // unlocked. Both stores live in the same batch (applied in
            // order inside one undo-log transaction), so crash atomicity
            // is unaffected.
            new.set_txn_id(txn_id);
            new.set_bts(txn_id);
            new.set_ets(TS_INF);
            new.set_rts(0);
            let bytes = unsafe {
                std::slice::from_raw_parts(&new as *const R as *const u8, std::mem::size_of::<R>())
            };
            batch.write_bytes(off, bytes);
            batch.write_u64(off + R::TXN_ID_OFF as u64, 0);
        }
    }

    /// Abort: discard staged versions, unlock, and recycle slots of
    /// records inserted by this transaction (bitmap clear — DG5).
    pub fn abort(
        &self,
        mut txn: Txn,
        nodes: &ChunkedTable<NodeRecord>,
        rels: &ChunkedTable<RelRecord>,
        props: &ChunkedTable<PropRecord>,
    ) {
        if txn.finished {
            return;
        }
        txn.finished = true;
        for w in &txn.writes {
            let key = ObjKey { tag: w.tag, id: w.id };
            self.chains.with(key, |c| c.uncommitted = None);
            let off = match w.tag {
                TableTag::Node => nodes.record_off(w.id) + NodeRecord::TXN_ID_OFF as u64,
                TableTag::Rel => rels.record_off(w.id) + RelRecord::TXN_ID_OFF as u64,
            };
            self.pool.atomic_store_u64(off, 0, Ordering::Release);
            self.pool.persist(off, 8);
        }
        for &(tag, id) in &txn.inserts {
            match tag {
                TableTag::Node => nodes.delete(id),
                TableTag::Rel => rels.delete(id),
            }
        }
        for &id in &txn.prop_inserts {
            props.delete(id);
        }
        self.retire_write_intents(&txn);
        self.active_shard(txn.id).lock().remove(&txn.id);
        self.stats.aborts.fetch_add(1, Ordering::Relaxed);
    }

    fn finish(&self, txn: &Txn, props: &ChunkedTable<PropRecord>) {
        self.active_shard(txn.id).lock().remove(&txn.id);
        // Reclaim superseded property chains that no snapshot can reach.
        let oldest = self.oldest_active();
        let mut deferred = self.deferred_props.lock();
        let mut i = 0;
        while i < deferred.len() {
            if deferred[i].ets <= oldest {
                for &id in &deferred[i].ids {
                    props.delete(id);
                }
                deferred.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Crash recovery (run by the engine after pool recovery): clear stale
    /// locks and recycle uncommitted inserts. A record whose `bts` equals
    /// its `txn_id` is an insert that never committed — its slot is freed;
    /// any other nonzero `txn_id` is a stale lock from a dead transaction.
    /// `rts` is reset to 0 (no live readers exist after a crash).
    pub fn recover_table<R: Versioned>(&self, table: &ChunkedTable<R>) -> usize {
        // No transaction survives a restart: all chunk write intents are
        // dead, every chunk is clean again.
        self.chunk_state.reset(TableTag::Node);
        self.chunk_state.reset(TableTag::Rel);
        let mut reclaimed = 0;
        let mut stale: Vec<(RecId, bool)> = Vec::new();
        table.for_each_live(|id, rec| {
            if rec.txn_id() != 0 {
                stale.push((id, rec.bts() == rec.txn_id()));
            }
        });
        for (id, uncommitted_insert) in stale {
            if uncommitted_insert {
                table.delete(id);
                reclaimed += 1;
            } else {
                let off = table.record_off(id) + R::TXN_ID_OFF as u64;
                self.pool.atomic_store_u64(off, 0, Ordering::Release);
                self.pool.persist(off, 8);
            }
        }
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        pool: Arc<Pool>,
        mgr: TxnManager,
        nodes: ChunkedTable<NodeRecord>,
        rels: ChunkedTable<RelRecord>,
        props: ChunkedTable<PropRecord>,
    }

    fn fixture() -> Fixture {
        let pool = Arc::new(Pool::volatile(64 << 20).unwrap());
        let mgr = TxnManager::create(pool.clone()).unwrap();
        let nodes = ChunkedTable::create(pool.clone()).unwrap();
        let rels = ChunkedTable::create(pool.clone()).unwrap();
        let props = ChunkedTable::create(pool.clone()).unwrap();
        Fixture {
            pool,
            mgr,
            nodes,
            rels,
            props,
        }
    }

    impl Fixture {
        fn commit(&self, txn: Txn) -> Result<(), TxnError> {
            self.mgr.commit(txn, &self.nodes, &self.rels, &self.props)
        }
        fn abort(&self, txn: Txn) {
            self.mgr.abort(txn, &self.nodes, &self.rels, &self.props)
        }
    }

    #[test]
    fn insert_visible_after_commit_only() {
        let f = fixture();
        let mut t1 = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t1, TableTag::Node, &f.nodes, NodeRecord::new(1))
            .unwrap();

        // A concurrent newer reader hits the uncommitted insert's lock: if
        // t1 commits, the record becomes visible at t2's snapshot, so the
        // outcome is speculative and MVTO aborts the reader (§5.1).
        let t2 = f.mgr.begin();
        let err = f.mgr.read(&t2, TableTag::Node, &f.nodes, id).unwrap_err();
        assert!(matches!(err, TxnError::Locked));
        f.abort(t2);

        f.commit(t1).unwrap();
        let t3 = f.mgr.begin();
        let n = f.mgr.read(&t3, TableTag::Node, &f.nodes, id).unwrap();
        assert_eq!(n.unwrap().label, 1);
        f.commit(t3).unwrap();
    }

    #[test]
    fn read_own_insert_and_update() {
        let f = fixture();
        let mut t = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t, TableTag::Node, &f.nodes, NodeRecord::new(1))
            .unwrap();
        let n = f.mgr.read(&t, TableTag::Node, &f.nodes, id).unwrap().unwrap();
        assert_eq!(n.label, 1);
        f.mgr
            .update(&mut t, TableTag::Node, &f.nodes, id, |n| n.label = 2)
            .unwrap();
        let n = f.mgr.read(&t, TableTag::Node, &f.nodes, id).unwrap().unwrap();
        assert_eq!(n.label, 2, "read-your-own-writes");
        f.commit(t).unwrap();
    }

    #[test]
    fn snapshot_isolation_old_reader_sees_old_version() {
        let f = fixture();
        // Commit v1.
        let mut t1 = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t1, TableTag::Node, &f.nodes, NodeRecord::new(10))
            .unwrap();
        f.commit(t1).unwrap();

        // Old reader begins before the update commits.
        let told = f.mgr.begin();

        // Updater commits v2.
        let mut t2 = f.mgr.begin();
        f.mgr
            .update(&mut t2, TableTag::Node, &f.nodes, id, |n| n.label = 20)
            .unwrap();
        f.commit(t2).unwrap();

        // The old reader must still see v1 from the DRAM history chain.
        let n = f.mgr.read(&told, TableTag::Node, &f.nodes, id).unwrap();
        assert_eq!(n.unwrap().label, 10, "snapshot must be stable");
        f.commit(told).unwrap();

        // A new reader sees v2.
        let tnew = f.mgr.begin();
        let n = f.mgr.read(&tnew, TableTag::Node, &f.nodes, id).unwrap();
        assert_eq!(n.unwrap().label, 20);
        f.commit(tnew).unwrap();
    }

    #[test]
    fn write_write_conflict_aborts_second_writer() {
        let f = fixture();
        let mut t0 = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t0, TableTag::Node, &f.nodes, NodeRecord::new(1))
            .unwrap();
        f.commit(t0).unwrap();

        let mut t1 = f.mgr.begin();
        let mut t2 = f.mgr.begin();
        f.mgr
            .update(&mut t1, TableTag::Node, &f.nodes, id, |n| n.label = 2)
            .unwrap();
        let err = f
            .mgr
            .update(&mut t2, TableTag::Node, &f.nodes, id, |n| n.label = 3)
            .unwrap_err();
        assert!(matches!(err, TxnError::Locked));
        f.abort(t2);
        f.commit(t1).unwrap();
    }

    #[test]
    fn write_after_newer_read_conflicts() {
        let f = fixture();
        let mut t0 = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t0, TableTag::Node, &f.nodes, NodeRecord::new(1))
            .unwrap();
        f.commit(t0).unwrap();

        let mut told = f.mgr.begin(); // older writer
        let tnew = f.mgr.begin(); // newer reader
        assert!(f
            .mgr
            .read(&tnew, TableTag::Node, &f.nodes, id)
            .unwrap()
            .is_some());
        // told writes a version that tnew should have seen ⇒ abort told.
        let err = f
            .mgr
            .update(&mut told, TableTag::Node, &f.nodes, id, |n| n.label = 9)
            .unwrap_err();
        assert!(matches!(err, TxnError::WriteConflict));
        f.abort(told);
        f.commit(tnew).unwrap();
    }

    #[test]
    fn aborted_insert_recycles_slot() {
        let f = fixture();
        let mut t = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t, TableTag::Node, &f.nodes, NodeRecord::new(1))
            .unwrap();
        f.abort(t);
        assert!(!f.nodes.is_live(id));
        // Slot reused by the next insert (DG5).
        let mut t2 = f.mgr.begin();
        let id2 = f
            .mgr
            .insert(&mut t2, TableTag::Node, &f.nodes, NodeRecord::new(2))
            .unwrap();
        assert_eq!(id2, id);
        f.commit(t2).unwrap();
    }

    #[test]
    fn aborted_update_leaves_committed_version() {
        let f = fixture();
        let mut t0 = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t0, TableTag::Node, &f.nodes, NodeRecord::new(7))
            .unwrap();
        f.commit(t0).unwrap();

        let mut t1 = f.mgr.begin();
        f.mgr
            .update(&mut t1, TableTag::Node, &f.nodes, id, |n| n.label = 8)
            .unwrap();
        f.abort(t1);

        let t2 = f.mgr.begin();
        let n = f.mgr.read(&t2, TableTag::Node, &f.nodes, id).unwrap();
        assert_eq!(n.unwrap().label, 7);
        f.commit(t2).unwrap();
        assert_eq!(f.mgr.stats().aborts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn delete_hides_record_from_newer_snapshots() {
        let f = fixture();
        let mut t0 = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t0, TableTag::Node, &f.nodes, NodeRecord::new(1))
            .unwrap();
        f.commit(t0).unwrap();

        let told = f.mgr.begin();

        let mut t1 = f.mgr.begin();
        f.mgr.delete(&mut t1, TableTag::Node, &f.nodes, id).unwrap();
        // Read-your-own-delete.
        assert!(f
            .mgr
            .read(&t1, TableTag::Node, &f.nodes, id)
            .unwrap()
            .is_none());
        f.commit(t1).unwrap();

        // Old snapshot still sees the record (PMem tombstone has
        // ets = t1.id > told.id).
        let n = f.mgr.read(&told, TableTag::Node, &f.nodes, id).unwrap();
        assert!(n.is_some());
        f.commit(told).unwrap();

        let tnew = f.mgr.begin();
        assert!(f
            .mgr
            .read(&tnew, TableTag::Node, &f.nodes, id)
            .unwrap()
            .is_none());
        f.commit(tnew).unwrap();
    }

    #[test]
    fn update_after_delete_conflicts() {
        let f = fixture();
        let mut t0 = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t0, TableTag::Node, &f.nodes, NodeRecord::new(1))
            .unwrap();
        f.commit(t0).unwrap();
        let mut t1 = f.mgr.begin();
        f.mgr.delete(&mut t1, TableTag::Node, &f.nodes, id).unwrap();
        f.commit(t1).unwrap();

        let mut t2 = f.mgr.begin();
        let err = f
            .mgr
            .update(&mut t2, TableTag::Node, &f.nodes, id, |n| n.label = 5)
            .unwrap_err();
        assert!(matches!(err, TxnError::WriteConflict));
        f.abort(t2);
    }

    #[test]
    fn gc_prunes_history_when_no_old_readers() {
        let f = fixture();
        let mut t0 = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t0, TableTag::Node, &f.nodes, NodeRecord::new(0))
            .unwrap();
        f.commit(t0).unwrap();
        for i in 1..10u32 {
            let mut t = f.mgr.begin();
            f.mgr
                .update(&mut t, TableTag::Node, &f.nodes, id, |n| n.label = i)
                .unwrap();
            f.commit(t).unwrap();
        }
        // No active transactions: every superseded version is prunable and
        // per-commit GC already ran.
        assert_eq!(f.mgr.version_count(), 0, "history must be GC'd");
        assert!(f.mgr.stats().gc_pruned.load(Ordering::Relaxed) >= 9);
    }

    #[test]
    fn multi_object_commit_is_atomic_under_crash() {
        let mut path = std::env::temp_dir();
        path.push(format!("gtxn-crash-{}", std::process::id()));
        for crash_at in (0..40).step_by(3) {
            let _ = std::fs::remove_file(&path);
            let pool = Arc::new(
                Pool::create(&path, 64 << 20, pmem::DeviceProfile::dram())
                    .unwrap()
                    .with_crash_tracking(),
            );
            let mgr = TxnManager::create(pool.clone()).unwrap();
            let nodes: ChunkedTable<NodeRecord> = ChunkedTable::create(pool.clone()).unwrap();
            let rels: ChunkedTable<RelRecord> = ChunkedTable::create(pool.clone()).unwrap();
            let props: ChunkedTable<PropRecord> = ChunkedTable::create(pool.clone()).unwrap();
            let nroot = nodes.root_off();

            let mut t0 = mgr.begin();
            let a = mgr.insert(&mut t0, TableTag::Node, &nodes, NodeRecord::new(1)).unwrap();
            let b = mgr.insert(&mut t0, TableTag::Node, &nodes, NodeRecord::new(2)).unwrap();
            mgr.commit(t0, &nodes, &rels, &props).unwrap();

            // A transaction that updates both records, with a crash injected
            // somewhere in its commit sequence.
            let mut t1 = mgr.begin();
            mgr.update(&mut t1, TableTag::Node, &nodes, a, |n| n.label = 11).unwrap();
            mgr.update(&mut t1, TableTag::Node, &nodes, b, |n| n.label = 22).unwrap();
            pool.inject_crash_after_flushes(crash_at);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                mgr.commit(t1, &nodes, &rels, &props)
            }));
            pool.clear_crash_injection();

            pool.simulate_crash(pmem::CrashPolicy::DropUnflushed).unwrap();
            pool.recover().unwrap();
            let nodes2: ChunkedTable<NodeRecord> = ChunkedTable::open(pool.clone(), nroot).unwrap();
            let mgr2 = TxnManager::open(pool.clone(), mgr.ts_slot());
            mgr2.recover_table(&nodes2);

            let ra = nodes2.get(a);
            let rb = nodes2.get(b);
            let old = ra.label == 1 && rb.label == 2;
            let new = ra.label == 11 && rb.label == 22;
            assert!(
                old || new,
                "crash_at={crash_at}: torn commit (a={}, b={}, outcome_ok={})",
                ra.label,
                rb.label,
                outcome.is_ok()
            );
            assert_eq!(ra.txn_id, 0, "locks must be clear after recovery");
            assert_eq!(rb.txn_id, 0);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_recovery_reclaims_uncommitted_inserts() {
        let pool = Arc::new(Pool::volatile(64 << 20).unwrap().with_crash_tracking());
        let mgr = TxnManager::create(pool.clone()).unwrap();
        let nodes: ChunkedTable<NodeRecord> = ChunkedTable::create(pool.clone()).unwrap();
        let nroot = nodes.root_off();

        let mut t = mgr.begin();
        mgr.insert(&mut t, TableTag::Node, &nodes, NodeRecord::new(1)).unwrap();
        // Simulate crash before commit; the insert bytes and bitmap were
        // persisted by the table, but the lock (txn_id = t.id) marks it
        // uncommitted.
        std::mem::forget(t);
        pool.simulate_crash(pmem::CrashPolicy::KeepAll).unwrap();
        pool.recover().unwrap();

        let nodes2: ChunkedTable<NodeRecord> = ChunkedTable::open(pool.clone(), nroot).unwrap();
        let mgr2 = TxnManager::open(pool.clone(), mgr.ts_slot());
        let reclaimed = mgr2.recover_table(&nodes2);
        assert_eq!(reclaimed, 1);
        assert_eq!(nodes2.live_count(), 0);
    }

    #[test]
    fn timestamps_monotonic_across_reopen() {
        let f = fixture();
        let t1 = f.mgr.begin();
        let id1 = t1.id;
        f.commit(t1).unwrap();
        let mgr2 = TxnManager::open(f.pool.clone(), f.mgr.ts_slot());
        let t2 = mgr2.begin();
        assert!(t2.id > id1, "ids must never repeat: {} <= {}", t2.id, id1);
        mgr2.commit(t2, &f.nodes, &f.rels, &f.props).unwrap();
    }

    #[test]
    fn concurrent_disjoint_commits_succeed() {
        let f = fixture();
        let mut ids = Vec::new();
        let mut t0 = f.mgr.begin();
        for i in 0..64 {
            ids.push(
                f.mgr
                    .insert(&mut t0, TableTag::Node, &f.nodes, NodeRecord::new(i))
                    .unwrap(),
            );
        }
        f.commit(t0).unwrap();

        let mgr = Arc::new(f.mgr);
        let nodes = Arc::new(f.nodes);
        let rels = Arc::new(f.rels);
        let props = Arc::new(f.props);
        let handles: Vec<_> = (0..4u64)
            .map(|tid| {
                let (mgr, nodes, rels, props) =
                    (mgr.clone(), nodes.clone(), rels.clone(), props.clone());
                let ids = ids.clone();
                std::thread::spawn(move || {
                    let mut committed = 0;
                    for round in 0..20 {
                        let mut t = mgr.begin();
                        let id = ids[((tid * 16) + round % 16) as usize];
                        match mgr.update(&mut t, TableTag::Node, &nodes, id, |n| {
                            n.label = (tid * 1000 + round) as u32
                        }) {
                            Ok(()) => {
                                mgr.commit(t, &nodes, &rels, &props).unwrap();
                                committed += 1;
                            }
                            Err(_) => mgr.abort(t, &nodes, &rels, &props),
                        }
                    }
                    committed
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 80, "disjoint updates must all commit");
        // All locks released.
        nodes.for_each_live(|_, n| assert_eq!(n.txn_id, 0));
    }

    #[test]
    fn hot_record_transfer_invariant_under_contention() {
        // Regression test for the commit/stage race: the commit used to
        // release the record lock inside the atomic persist but remove its
        // staged chain entry only afterwards, letting a rival writer stage
        // a version that the first committer then destroyed. Hammer a tiny
        // hot set with transfers and check conservation.
        let f = fixture();
        let hot = 8usize;
        let mut t0 = f.mgr.begin();
        let ids: Vec<u64> = (0..hot)
            .map(|_| {
                f.mgr
                    .insert(&mut t0, TableTag::Node, &f.nodes, NodeRecord::new(100))
                    .unwrap()
            })
            .collect();
        f.commit(t0).unwrap();

        let mgr = Arc::new(f.mgr);
        let nodes = Arc::new(f.nodes);
        let rels = Arc::new(f.rels);
        let props = Arc::new(f.props);
        std::thread::scope(|scope| {
            for tid in 0..4u64 {
                let (mgr, nodes, rels, props) =
                    (mgr.clone(), nodes.clone(), rels.clone(), props.clone());
                let ids = ids.clone();
                scope.spawn(move || {
                    let mut x = tid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    let mut rng = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    for _ in 0..3000 {
                        let a = ids[(rng() as usize) % ids.len()];
                        let b = ids[(rng() as usize) % ids.len()];
                        if a == b {
                            continue;
                        }
                        let mut t = mgr.begin();
                        let move_one = |t: &mut Txn| -> Result<(), TxnError> {
                            let va = mgr
                                .read(t, TableTag::Node, &nodes, a)?
                                .expect("hot node")
                                .label;
                            let vb = mgr
                                .read(t, TableTag::Node, &nodes, b)?
                                .expect("hot node")
                                .label;
                            mgr.update(t, TableTag::Node, &nodes, a, |n| {
                                n.label = va.wrapping_sub(1)
                            })?;
                            mgr.update(t, TableTag::Node, &nodes, b, |n| {
                                n.label = vb.wrapping_add(1)
                            })?;
                            Ok(())
                        };
                        match move_one(&mut t) {
                            Ok(()) => mgr.commit(t, &nodes, &rels, &props).unwrap(),
                            Err(_) => mgr.abort(t, &nodes, &rels, &props),
                        }
                    }
                });
            }
        });
        let total: u32 = ids
            .iter()
            .map(|&id| nodes.get(id).label)
            .fold(0u32, |acc, v| acc.wrapping_add(v));
        assert_eq!(total, (100 * hot) as u32, "conservation violated");
        nodes.for_each_live(|_, n| assert_eq!(n.txn_id, 0, "dangling lock"));
    }

    #[test]
    fn chunk_dirty_counters_balance_across_commit_and_abort() {
        let f = fixture();
        f.mgr.set_fast_scans(true);
        let cs = f.mgr.chunk_state();

        // Insert, update-own-insert, delete-own-insert: one intent total
        // (the self-locked paths take no extra lock).
        let mut t = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t, TableTag::Node, &f.nodes, NodeRecord::new(1))
            .unwrap();
        assert_eq!(cs.dirty_count(TableTag::Node, 0), 1);
        f.mgr
            .update(&mut t, TableTag::Node, &f.nodes, id, |n| n.label = 2)
            .unwrap();
        assert_eq!(cs.dirty_count(TableTag::Node, 0), 1);
        f.mgr.delete(&mut t, TableTag::Node, &f.nodes, id).unwrap();
        assert_eq!(cs.dirty_count(TableTag::Node, 0), 1);
        f.commit(t).unwrap();
        assert_eq!(cs.dirty_count(TableTag::Node, 0), 0);

        // Update of a committed record, then abort.
        let mut t0 = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t0, TableTag::Node, &f.nodes, NodeRecord::new(1))
            .unwrap();
        f.commit(t0).unwrap();
        let mut t1 = f.mgr.begin();
        f.mgr
            .update(&mut t1, TableTag::Node, &f.nodes, id, |n| n.label = 5)
            .unwrap();
        assert_eq!(cs.dirty_count(TableTag::Node, 0), 1);
        assert!(
            !f.mgr.try_fast_chunk(TableTag::Node, 0, t1.id + 1),
            "a dirty chunk must never grant the fast path"
        );
        f.abort(t1);
        assert_eq!(cs.dirty_count(TableTag::Node, 0), 0);

        // Update then delete of the same record: one lock, one intent.
        let mut t2 = f.mgr.begin();
        f.mgr
            .update(&mut t2, TableTag::Node, &f.nodes, id, |n| n.label = 6)
            .unwrap();
        f.mgr.delete(&mut t2, TableTag::Node, &f.nodes, id).unwrap();
        assert_eq!(cs.dirty_count(TableTag::Node, 0), 1);
        f.commit(t2).unwrap();
        assert_eq!(cs.dirty_count(TableTag::Node, 0), 0);
        assert!(f.mgr.try_fast_chunk(TableTag::Node, 0, f.mgr.oldest_active_ts()));
    }

    #[test]
    fn fast_scan_claim_conflicts_older_writer() {
        let f = fixture();
        f.mgr.set_fast_scans(true);
        let mut t0 = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t0, TableTag::Node, &f.nodes, NodeRecord::new(1))
            .unwrap();
        f.commit(t0).unwrap();

        let mut writer = f.mgr.begin(); // older
        let reader = f.mgr.begin(); // newer
        assert!(f.mgr.try_fast_chunk(TableTag::Node, 0, reader.id));
        let rec = f
            .mgr
            .read_fast(&reader, TableTag::Node, &f.nodes, id)
            .unwrap();
        assert_eq!(rec.unwrap().label, 1);
        // The fast scan skipped the per-record rts bump; the chunk-grain
        // read_ts must make the older writer conflict all the same.
        let err = f
            .mgr
            .update(&mut writer, TableTag::Node, &f.nodes, id, |n| n.label = 9)
            .unwrap_err();
        assert!(matches!(err, TxnError::WriteConflict));
        f.abort(writer);
        f.commit(reader).unwrap();

        // A newer writer is unaffected by the published read_ts.
        let mut w2 = f.mgr.begin();
        f.mgr
            .update(&mut w2, TableTag::Node, &f.nodes, id, |n| n.label = 2)
            .unwrap();
        f.commit(w2).unwrap();
    }

    #[test]
    fn fast_scans_default_off_and_read_fast_matches_mvto() {
        let f = fixture();
        assert!(!f.mgr.fast_scans());
        assert!(!f.mgr.try_fast_chunk(TableTag::Node, 0, 100));

        f.mgr.set_fast_scans(true);
        // An uncommitted insert in the chunk: read_fast must fall back to
        // the MVTO read and reproduce its exact semantics (invisible to an
        // older snapshot, Locked for a newer one).
        let older = f.mgr.begin();
        let mut w = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut w, TableTag::Node, &f.nodes, NodeRecord::new(3))
            .unwrap();
        let newer = f.mgr.begin();
        assert!(f
            .mgr
            .read_fast(&older, TableTag::Node, &f.nodes, id)
            .unwrap()
            .is_none());
        assert!(matches!(
            f.mgr
                .read_fast(&newer, TableTag::Node, &f.nodes, id)
                .unwrap_err(),
            TxnError::Locked
        ));
        f.commit(w).unwrap();
        f.commit(older).unwrap();
        f.abort(newer);
    }

    #[test]
    fn lost_rts_bump_after_crash_is_harmless() {
        // Satellite regression: the rts bump in `read_enumerated` is an
        // unflushed CAS. Exercise both crash outcomes — bump survives (the
        // caches happened to reach the media) and bump lost — and verify
        // neither can make a post-restart writer conflict or miss a
        // conflict: restart ids always exceed the persisted high-water
        // mark, which exceeds every pre-crash reader id (DESIGN.md §10).
        for lost in [false, true] {
            let path = std::env::temp_dir()
                .join(format!("gtxn-rts-crash-{}-{}", lost, std::process::id()));
            let _ = std::fs::remove_file(&path);
            let pool = Arc::new(
                Pool::create(&path, 64 << 20, pmem::DeviceProfile::dram())
                    .unwrap()
                    .with_crash_tracking(),
            );
            let mgr = TxnManager::create(pool.clone()).unwrap();
            let nodes: ChunkedTable<NodeRecord> = ChunkedTable::create(pool.clone()).unwrap();
            let rels: ChunkedTable<RelRecord> = ChunkedTable::create(pool.clone()).unwrap();
            let props: ChunkedTable<PropRecord> = ChunkedTable::create(pool.clone()).unwrap();
            let nroot = nodes.root_off();

            let mut t0 = mgr.begin();
            let id = mgr
                .insert(&mut t0, TableTag::Node, &nodes, NodeRecord::new(1))
                .unwrap();
            mgr.commit(t0, &nodes, &rels, &props).unwrap();

            // A reader bumps rts and then the machine dies before any flush
            // of that line.
            let t1 = mgr.begin();
            mgr.read(&t1, TableTag::Node, &nodes, id).unwrap();
            let rts_off = nodes.record_off(id) + NodeRecord::RTS_OFF as u64;
            assert_eq!(pool.read_u64(rts_off), t1.id, "bump visible pre-crash");

            pool.simulate_crash(pmem::CrashPolicy::DropUnflushed).unwrap();
            if lost {
                // The rts CAS goes through an untracked atomic on purpose
                // (it needs no pre-image); model the adversarial outcome —
                // the line never left the caches — by hand.
                pool.atomic_store_u64(rts_off, 0, Ordering::SeqCst);
                pool.persist(rts_off, 8);
            }
            pool.recover().unwrap();

            let nodes2: ChunkedTable<NodeRecord> =
                ChunkedTable::open(pool.clone(), nroot).unwrap();
            let mgr2 = TxnManager::open(pool.clone(), mgr.ts_slot());
            mgr2.recover_table(&nodes2);

            // A post-restart writer must never be aborted by (or because
            // of) the dead reader's rts, whatever happened to the bump.
            let mut w = mgr2.begin();
            assert!(w.id > t1.id, "restart ids start above the persisted hwm");
            mgr2.update(&mut w, TableTag::Node, &nodes2, id, |n| n.label = 2)
                .unwrap();
            mgr2.commit(w, &nodes2, &rels, &props).unwrap();
            let r = mgr2.begin();
            assert_eq!(
                mgr2.read(&r, TableTag::Node, &nodes2, id).unwrap().unwrap().label,
                2
            );
            drop(nodes2);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn grouped_concurrent_commits_are_correct_and_cheaper() {
        // Disjoint multi-writer commits through the manager with grouping
        // on: all must land, locks must clear, and the group accounting
        // must stay consistent (groups <= commit passes <= write commits).
        let f = fixture();
        f.mgr.set_group_commit(true);
        assert!(f.mgr.group_commit());
        let mut t0 = f.mgr.begin();
        let ids: Vec<u64> = (0..64)
            .map(|i| {
                f.mgr
                    .insert(&mut t0, TableTag::Node, &f.nodes, NodeRecord::new(i))
                    .unwrap()
            })
            .collect();
        f.commit(t0).unwrap();

        let before = f.pool.stats().snapshot();
        let mgr = Arc::new(f.mgr);
        let nodes = Arc::new(f.nodes);
        let rels = Arc::new(f.rels);
        let props = Arc::new(f.props);
        std::thread::scope(|scope| {
            for tid in 0..8u64 {
                let (mgr, nodes, rels, props) =
                    (mgr.clone(), nodes.clone(), rels.clone(), props.clone());
                let ids = ids.clone();
                scope.spawn(move || {
                    for round in 0..40u64 {
                        let mut t = mgr.begin();
                        let id = ids[(tid * 8 + round % 8) as usize];
                        mgr.update(&mut t, TableTag::Node, &nodes, id, |n| {
                            n.label = (tid * 100 + round) as u32
                        })
                        .unwrap();
                        mgr.commit(t, &nodes, &rels, &props).unwrap();
                    }
                });
            }
        });
        let d = f.pool.stats().snapshot() - before;
        assert_eq!(d.tx_commits, 320, "every writer commit persisted");
        assert!(
            d.commit_groups <= d.tx_commits,
            "grouping can only reduce commit passes"
        );
        nodes.for_each_live(|_, n| assert_eq!(n.txn_id, 0, "dangling lock"));
        assert_eq!(mgr.active_count(), 0, "sharded active set drained");
    }

    #[test]
    fn group_commit_toggle_off_still_commits() {
        let f = fixture();
        f.mgr.set_group_commit(false);
        assert!(!f.mgr.group_commit());
        let mut t = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t, TableTag::Node, &f.nodes, NodeRecord::new(5))
            .unwrap();
        f.commit(t).unwrap();
        let mut t2 = f.mgr.begin();
        f.mgr
            .update(&mut t2, TableTag::Node, &f.nodes, id, |n| n.label = 6)
            .unwrap();
        f.commit(t2).unwrap();
        let r = f.mgr.begin();
        assert_eq!(
            f.mgr.read(&r, TableTag::Node, &f.nodes, id).unwrap().unwrap().label,
            6
        );
        f.commit(r).unwrap();
    }

    #[test]
    fn rts_is_updated_by_latest_reader() {
        let f = fixture();
        let mut t0 = f.mgr.begin();
        let id = f
            .mgr
            .insert(&mut t0, TableTag::Node, &f.nodes, NodeRecord::new(1))
            .unwrap();
        f.commit(t0).unwrap();
        let t1 = f.mgr.begin();
        f.mgr.read(&t1, TableTag::Node, &f.nodes, id).unwrap();
        assert_eq!(f.nodes.get(id).rts, t1.id);
        f.commit(t1).unwrap();
    }
}
