//! The metrics registry: named counters, gauges, histograms, and
//! fn-metrics over externally-owned atomics.
//!
//! # Atomic ordering discipline
//!
//! All metric counters in this crate — and the subsystem counters it
//! snapshots through fn-metrics (`pmem::stats`, `gtxn` txn stats, `gjit`
//! cache stats, server stats) — are **monotonic counters updated with
//! `Ordering::Relaxed`**. Relaxed is correct because no metric value ever
//! guards another memory access: nothing is published or acquired through
//! a counter, so the only property needed is per-location atomicity and
//! monotonicity, which relaxed atomics guarantee. Snapshot reads are also
//! relaxed and therefore **racy but monotone**: a snapshot taken during
//! concurrent recording reads each counter at some instant within the
//! read window, counters only move forward, and no torn or decreasing
//! value can be observed. Cross-counter invariants (e.g. "admitted ≤
//! requests") may be transiently off by in-flight increments; consumers
//! must treat snapshots as approximately-simultaneous, never as a
//! consistent cut. Any atomic that *does* publish data (e.g. the MVTO
//! chunk-state protocol) is out of scope here and keeps its stronger
//! ordering.
//!
//! Registration takes a short mutex (cold path, startup-dominated);
//! recording through the returned handles is entirely lock-free.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::{HistSnapshot, Histogram};

/// A monotonic counter handle. Clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle (set to the current level; may go down).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.cell.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

type FnU64 = Arc<dyn Fn() -> u64 + Send + Sync>;
type FnI64 = Arc<dyn Fn() -> i64 + Send + Sync>;

enum Metric {
    Counter(Counter),
    /// A counter whose authoritative cell lives elsewhere (an existing
    /// subsystem atomic); the closure reads it at snapshot time, so there
    /// is exactly one source of truth.
    FnCounter(FnU64),
    Gauge(Gauge),
    FnGauge(FnI64),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    /// Pre-rendered label body (`key="value",...`); empty = unlabeled.
    labels: String,
    help: String,
    metric: Metric,
}

/// A named-metric registry. See the module docs for the ordering
/// discipline; see [`crate::global`] for the process-wide instance used
/// by span instrumentation.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// `true` if `name` is a valid Prometheus metric name.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` if `body` is a valid label body: empty, or comma-separated
/// `name="value"` pairs (the exact shape the exposition grammar accepts
/// between `{` and `}`).
pub fn valid_label_body(body: &str) -> bool {
    if body.is_empty() {
        return true;
    }
    body.split(',').all(|pair| {
        pair.split_once('=').is_some_and(|(k, v)| {
            valid_metric_name(k) && v.starts_with('"') && v.ends_with('"') && v.len() >= 2
        })
    })
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> (T, Metric),
        reuse: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let mut entries = self.entries.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name && e.labels.is_empty()) {
            return reuse(&e.metric)
                .unwrap_or_else(|| panic!("metric {name:?} already registered with another kind"));
        }
        let (handle, metric) = make();
        entries.push(Entry {
            name: name.to_string(),
            labels: String::new(),
            help: help.to_string(),
            metric,
        });
        handle
    }

    /// Register (or fetch) a counter. Idempotent: the same name returns a
    /// handle to the same cell.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.register(
            name,
            help,
            || {
                let c = Counter::default();
                (c.clone(), Metric::Counter(c))
            },
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.register(
            name,
            help,
            || {
                let g = Gauge::default();
                (g.clone(), Metric::Gauge(g))
            },
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Register (or fetch) a latency histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.register(
            name,
            help,
            || {
                let h = Histogram::unregistered();
                (h.clone(), Metric::Histogram(h))
            },
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Register a counter read through a closure from an authoritative
    /// external atomic (monotonic, relaxed — see module docs). A repeated
    /// registration under the same name replaces the closure, so a
    /// restarted consumer re-binds cleanly.
    pub fn fn_counter(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.register_fn(name, "", help, Metric::FnCounter(Arc::new(f)));
    }

    /// Register a gauge read through a closure (current level; may fall).
    pub fn fn_gauge(&self, name: &str, help: &str, f: impl Fn() -> i64 + Send + Sync + 'static) {
        self.register_fn(name, "", help, Metric::FnGauge(Arc::new(f)));
    }

    /// Register a **labeled** series of an fn-counter: `labels` is the
    /// pre-rendered label body (e.g. `shard="2"`). Series with the same
    /// name but different labels coexist; the same `(name, labels)` pair
    /// re-binds its closure. Per-shard metrics use this so the fleet of
    /// pools shows up as one metric family.
    pub fn fn_counter_labeled(
        &self,
        name: &str,
        labels: &str,
        help: &str,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register_fn(name, labels, help, Metric::FnCounter(Arc::new(f)));
    }

    /// Register a labeled fn-gauge series (see [`Registry::fn_counter_labeled`]).
    pub fn fn_gauge_labeled(
        &self,
        name: &str,
        labels: &str,
        help: &str,
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        self.register_fn(name, labels, help, Metric::FnGauge(Arc::new(f)));
    }

    fn register_fn(&self, name: &str, labels: &str, help: &str, metric: Metric) {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        assert!(valid_label_body(labels), "invalid label body {labels:?}");
        let mut entries = self.entries.lock();
        if let Some(e) = entries.iter_mut().find(|e| e.name == name && e.labels == labels) {
            e.metric = metric;
            e.help = help.to_string();
            return;
        }
        entries.push(Entry {
            name: name.to_string(),
            labels: labels.to_string(),
            help: help.to_string(),
            metric,
        });
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    fn snapshot_into(&self, out: &mut Vec<SnapEntry>) {
        let entries = self.entries.lock();
        for e in entries.iter() {
            if out.iter().any(|s| s.name == e.name && s.labels == e.labels) {
                debug_assert!(false, "duplicate metric {:?} across registries", e.name);
                continue;
            }
            let value = match &e.metric {
                Metric::Counter(c) => SnapValue::Counter(c.get()),
                Metric::FnCounter(f) => SnapValue::Counter(f()),
                Metric::Gauge(g) => SnapValue::Gauge(g.get()),
                Metric::FnGauge(f) => SnapValue::Gauge(f()),
                Metric::Histogram(h) => SnapValue::Histogram(Box::new(h.snapshot())),
            };
            out.push(SnapEntry {
                name: e.name.clone(),
                labels: e.labels.clone(),
                help: e.help.clone(),
                value,
            });
        }
    }
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone)]
pub enum SnapValue {
    Counter(u64),
    Gauge(i64),
    /// Boxed: a histogram snapshot is ~240 bytes of buckets, far larger
    /// than the scalar variants.
    Histogram(Box<HistSnapshot>),
}

/// One snapshotted metric (one series: a labeled family contributes one
/// entry per label set).
#[derive(Debug, Clone)]
pub struct SnapEntry {
    pub name: String,
    /// Pre-rendered label body; empty for plain metrics.
    pub labels: String,
    pub help: String,
    pub value: SnapValue,
}

/// A point-in-time view over one or more registries (racy-but-monotone,
/// see module docs). The Prometheus renderer and the server's `STATS`
/// view both read from this — one source of truth for both surfaces.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub entries: Vec<SnapEntry>,
}

impl Snapshot {
    /// Snapshot several registries into one merged view. On a (bug-only)
    /// duplicate name, the first registry wins.
    pub fn collect(registries: &[&Registry]) -> Snapshot {
        let mut entries = Vec::new();
        for r in registries {
            r.snapshot_into(&mut entries);
        }
        Snapshot { entries }
    }

    fn find(&self, name: &str) -> Option<&SnapEntry> {
        self.entries.iter().find(|e| e.name == name && e.labels.is_empty())
    }

    /// Counter or gauge value by name, as an i64 (counters saturate).
    pub fn value(&self, name: &str) -> Option<i64> {
        match &self.find(name)?.value {
            SnapValue::Counter(v) => Some((*v).min(i64::MAX as u64) as i64),
            SnapValue::Gauge(v) => Some(*v),
            SnapValue::Histogram(_) => None,
        }
    }

    /// One labeled series' value: exact `(name, labels)` match.
    pub fn value_labeled(&self, name: &str, labels: &str) -> Option<i64> {
        let e = self.entries.iter().find(|e| e.name == name && e.labels == labels)?;
        match &e.value {
            SnapValue::Counter(v) => Some((*v).min(i64::MAX as u64) as i64),
            SnapValue::Gauge(v) => Some(*v),
            SnapValue::Histogram(_) => None,
        }
    }

    /// Sum a metric family across every label set (labeled and plain
    /// series alike) — the aggregate view of a per-shard family.
    pub fn sum(&self, name: &str) -> Option<i64> {
        let mut total: i64 = 0;
        let mut any = false;
        for e in self.entries.iter().filter(|e| e.name == name) {
            match &e.value {
                SnapValue::Counter(v) => total += (*v).min(i64::MAX as u64) as i64,
                SnapValue::Gauge(v) => total += *v,
                SnapValue::Histogram(_) => continue,
            }
            any = true;
        }
        any.then_some(total)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        match &self.find(name)?.value {
            SnapValue::Histogram(h) => Some(h.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("test_requests_total", "requests");
        let b = r.counter("test_requests_total", "requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("test_metric", "");
        let _ = r.gauge("test_metric", "");
    }

    #[test]
    fn fn_metrics_read_the_external_cell() {
        let r = Registry::new();
        let cell = Arc::new(AtomicU64::new(7));
        let c = cell.clone();
        r.fn_counter("test_external_total", "external", move || {
            c.load(Ordering::Relaxed)
        });
        let snap = Snapshot::collect(&[&r]);
        assert_eq!(snap.value("test_external_total"), Some(7));
        cell.store(9, Ordering::Relaxed);
        let snap = Snapshot::collect(&[&r]);
        assert_eq!(snap.value("test_external_total"), Some(9));
    }

    #[test]
    fn merged_snapshot_covers_all_registries() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("test_a_total", "").inc();
        b.gauge("test_b", "").set(-4);
        let h = b.histogram("test_lat_us", "");
        h.observe_us(10);
        let snap = Snapshot::collect(&[&a, &b]);
        assert_eq!(snap.value("test_a_total"), Some(1));
        assert_eq!(snap.value("test_b"), Some(-4));
        assert_eq!(snap.histogram("test_lat_us").unwrap().count(), 1);
        assert!(snap.value("test_lat_us").is_none());
    }

    #[test]
    fn metric_name_validation() {
        assert!(valid_metric_name("pmemgraph_txn_commit_us"));
        assert!(valid_metric_name("_x:y"));
        assert!(!valid_metric_name("1abc"));
        assert!(!valid_metric_name("a-b"));
        assert!(!valid_metric_name(""));
    }
}
