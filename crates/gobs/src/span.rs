//! Near-zero-overhead span timing.
//!
//! Instrumentation sites in the library crates (transaction begin/commit,
//! JIT compilation, morsel-loop segments) call [`span_start`] before the
//! work and `Histogram::observe_span` after. When spans are disabled —
//! the default for embedded/benchmark use, where nobody will scrape the
//! histograms — a site costs exactly one relaxed atomic load and no
//! clock reads. Attaching a consumer (the query server, the standalone
//! exporter, a load driver that prints percentiles) flips the global
//! flag once via [`set_spans_enabled`].
//!
//! All span durations are computed with [`saturating_elapsed`], so a
//! stepped clock or a zero-length segment can never underflow into a
//! bogus huge duration.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

static SPANS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Enable or disable span recording process-wide.
pub fn set_spans_enabled(on: bool) {
    SPANS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
#[inline]
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// Start a span: `Some(now)` when spans are enabled, `None` (no clock
/// read) otherwise. Pair with `Histogram::observe_span`.
#[inline]
pub fn span_start() -> Option<Instant> {
    if spans_enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Monotonic, saturating elapsed time since `since` — never panics and
/// never underflows, even if the instant is somehow in the future.
#[inline]
pub fn saturating_elapsed(since: Instant) -> Duration {
    Instant::now().saturating_duration_since(since)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn spans_record_only_when_enabled() {
        let h = Histogram::unregistered();
        set_spans_enabled(false);
        h.observe_span(span_start());
        assert_eq!(h.snapshot().count(), 0);
        set_spans_enabled(true);
        h.observe_span(span_start());
        assert_eq!(h.snapshot().count(), 1);
        set_spans_enabled(false);
    }

    #[test]
    fn saturating_elapsed_never_underflows() {
        let future = Instant::now() + Duration::from_secs(3600);
        assert_eq!(saturating_elapsed(future), Duration::ZERO);
    }
}
