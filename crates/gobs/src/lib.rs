//! gobs — the unified observability subsystem.
//!
//! Every earlier layer grew its own telemetry: `pmem::stats` atomic
//! counters, per-query `ExecProfile`s in `gquery`, commit-pipeline and
//! arena counters, JIT cache counters, and a hand-rolled `STATS` JSON
//! blob in the server. None of it had histograms, none of it was
//! scrapeable, and each consumer re-invented snapshotting. This crate is
//! the one place the rest of the engine reports to:
//!
//! * [`Registry`] — named counters, gauges and log-bucketed latency
//!   [`Histogram`]s. Recording is a relaxed atomic add (lock-free, no
//!   allocation); registration handles are cheap clones. Existing
//!   subsystem counters join the registry through *fn-metrics* (closures
//!   read the authoritative atomic at snapshot time), so no counter is
//!   ever double-maintained.
//! * [`expo`] — Prometheus text exposition (format 0.0.4) rendered from a
//!   [`Snapshot`], plus a grammar validator used by tests and CI.
//! * [`SlowLog`] — a bounded ring of slow-query records (query text, plan
//!   summary, execution profile) for queries over a latency threshold.
//! * [`span`] — near-zero-overhead span timing: every instrumentation
//!   site pays one relaxed load when spans are disabled (the default;
//!   attaching a server/exporter enables them) and two `Instant::now()`
//!   calls when enabled.
//! * [`exporter`] — a minimal standalone HTTP/TCP exporter so Prometheus
//!   can scrape without consuming a query session.
//!
//! Layering: `gobs` depends on nothing in the engine, so `pmem`, `gtxn`,
//! `gquery`, `gjit`, `gserver` and `bench` can all depend on it. Span
//! instrumentation in library crates records into the process-wide
//! [`global()`] registry; the server combines that with its own registry
//! (per-server counters) at scrape time via [`Snapshot::collect`].

pub mod exporter;
pub mod expo;
pub mod hist;
pub mod registry;
pub mod slowlog;
pub mod span;

use std::sync::OnceLock;

pub use exporter::Exporter;
pub use expo::{render, validate_exposition};
pub use hist::{HistSnapshot, Histogram, BUCKET_COUNT};
pub use registry::{Counter, Gauge, Registry, SnapEntry, SnapValue, Snapshot};
pub use slowlog::{SlowEntry, SlowLog};
pub use span::{saturating_elapsed, set_spans_enabled, span_start, spans_enabled};

/// The process-wide registry. Library-crate span instrumentation (txn
/// begin/commit, JIT compile, morsel-loop segments) registers its
/// histograms here exactly once; consumers merge it with their own
/// registries via [`Snapshot::collect`]. Process-wide aggregation is the
/// Prometheus model — two databases in one test process share these
/// series, which is fine for latency distributions and documented here so
/// nobody mistakes them for per-pool counters.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
