//! Standalone metrics exporter: a tiny HTTP/1.0 responder on its own TCP
//! port, so Prometheus can scrape without consuming a query session (and
//! without speaking the newline-JSON query protocol).
//!
//! It answers *every* request on the port with the rendered exposition —
//! no routing, no keep-alive — which is exactly what a scrape loop needs
//! and nothing more. The render closure is supplied by the embedding
//! server so it can merge its own registry with the process-global one at
//! scrape time.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Render callback: produce the exposition body for one scrape.
pub type RenderFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Handle to a running exporter; dropping it stops the listener thread.
pub struct Exporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Exporter {
    /// Bind `addr` (port 0 picks an ephemeral port) and serve `render` to
    /// every connection.
    pub fn serve(addr: &str, render: RenderFn) -> std::io::Result<Exporter> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("gobs-exporter".into())
                .spawn(move || accept_loop(listener, render, stop))?
        };
        Ok(Exporter {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener and join its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, render: RenderFn, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => serve_one(stream, &render),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Answer one scrape: drain the request head (best effort, bounded), then
/// write a complete HTTP/1.0 response and close.
fn serve_one(mut stream: TcpStream, render: &RenderFn) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    let mut head = [0u8; 4096];
    let mut used = 0;
    // Read until the blank line ending the request head, EOF, timeout, or
    // a head larger than the buffer (treated as complete enough).
    while used < head.len() {
        match stream.read(&mut head[used..]) {
            Ok(0) => break,
            Ok(n) => {
                used += n;
                if head[..used].windows(4).any(|w| w == b"\r\n\r\n")
                    || head[..used].windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = render();
    let _ = write!(
        stream,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead as _;

    #[test]
    fn exporter_answers_http_scrapes() {
        let reg = crate::Registry::new();
        reg.counter("exporter_test_total", "t").add(42);
        let render: RenderFn = Arc::new(move || {
            crate::render(&crate::Snapshot::collect(&[&reg]))
        });
        let exp = Exporter::serve("127.0.0.1:0", render).expect("bind exporter");
        let addr = exp.local_addr();

        for _ in 0..2 {
            let mut conn = TcpStream::connect(addr).expect("connect");
            conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
                .expect("request");
            let mut reader = std::io::BufReader::new(conn);
            let mut status = String::new();
            reader.read_line(&mut status).expect("status line");
            assert!(status.starts_with("HTTP/1.0 200"), "got {status:?}");
            let mut body = String::new();
            loop {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break;
                }
                if !body.is_empty() || line.starts_with('#') {
                    body.push_str(&line);
                }
            }
            assert!(body.contains("exporter_test_total 42"), "body: {body}");
            crate::validate_exposition(&body).expect("valid exposition over HTTP");
        }
        exp.stop();
    }
}
