//! Bounded slow-query ring log.
//!
//! Queries whose wall-clock latency meets the configured threshold are
//! recorded — query text, plan summary, execution mode, pushdown/prune
//! stats and per-segment timings — into a fixed-capacity ring. The ring
//! keeps the most recent entries (oldest evicted first) and counts what
//! it dropped, so a burst of slow queries can never grow memory without
//! bound. Draining is non-destructive ([`SlowLog::entries`]) so repeated
//! `SLOWLOG` requests see the same window; [`SlowLog::clear`] resets it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// One captured slow query. Field types are plain strings/integers so the
/// log has no dependency on the query-engine crates; the server maps its
/// `ExecProfile` in.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Capture time, unix epoch milliseconds.
    pub at_unix_ms: u64,
    /// Query text or catalog name as the client sent it.
    pub query: String,
    /// Compact plan summary (operator chain per pipeline step).
    pub plan: String,
    /// Driving execution mode, if one was recorded.
    pub mode: Option<String>,
    /// End-to-end request latency in µs (saturating).
    pub elapsed_us: u64,
    pub rows: u64,
    pub morsels: u64,
    pub interpreted_morsels: u64,
    pub compiled_morsels: u64,
    pub chunks_pruned: u64,
    pub fast_path_morsels: u64,
    /// Residual-filter rows evaluated by the AST interpreter.
    pub residual_rows_interp: u64,
    /// Residual-filter rows evaluated by a compiled expression
    /// (the gjit expression tier).
    pub residual_rows_compiled: u64,
    /// Fallback reason, if the profile recorded one.
    pub fallback: Option<String>,
    /// Per-segment timings `(name, µs)` in execution order.
    pub segments: Vec<(String, u64)>,
}

/// The bounded ring. Recording takes a short mutex — acceptable because
/// only queries already past the slow threshold ever reach it.
pub struct SlowLog {
    capacity: usize,
    threshold_us: AtomicU64,
    ring: Mutex<VecDeque<SlowEntry>>,
    dropped: AtomicU64,
}

impl SlowLog {
    /// A log keeping the `capacity` most recent entries at or over
    /// `threshold_us` (use `u64::MAX` to disable capture).
    pub fn new(capacity: usize, threshold_us: u64) -> SlowLog {
        SlowLog {
            capacity: capacity.max(1),
            threshold_us: AtomicU64::new(threshold_us),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// The active capture threshold in µs.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Retune the threshold at runtime.
    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// Record `entry` if it meets the threshold; `make` runs only for
    /// slow queries, so the fast path never builds an entry. Returns
    /// whether an entry was captured.
    pub fn maybe_record(&self, elapsed_us: u64, make: impl FnOnce() -> SlowEntry) -> bool {
        if elapsed_us < self.threshold_us() {
            return false;
        }
        let entry = make();
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(entry);
        true
    }

    /// Snapshot the ring, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Entries evicted by the ring bound since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Forget all captured entries (eviction counter keeps counting up).
    pub fn clear(&self) {
        self.ring.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(q: &str, us: u64) -> SlowEntry {
        SlowEntry {
            at_unix_ms: 0,
            query: q.to_string(),
            plan: "NodeScan->Count".to_string(),
            mode: Some("adaptive".to_string()),
            elapsed_us: us,
            rows: 1,
            morsels: 1,
            interpreted_morsels: 1,
            compiled_morsels: 0,
            chunks_pruned: 0,
            fast_path_morsels: 0,
            residual_rows_interp: 0,
            residual_rows_compiled: 0,
            fallback: None,
            segments: vec![("interp".to_string(), us)],
        }
    }

    #[test]
    fn threshold_gates_capture() {
        let log = SlowLog::new(8, 100);
        assert!(!log.maybe_record(99, || unreachable!("fast path must not build")));
        assert!(log.maybe_record(100, || entry("q", 100)));
        assert_eq!(log.len(), 1);
        log.set_threshold_us(u64::MAX);
        assert!(!log.maybe_record(u64::MAX - 1, || unreachable!()));
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let log = SlowLog::new(3, 0);
        for i in 0..5u64 {
            log.maybe_record(i, || entry(&format!("q{i}"), i));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(entries[0].query, "q2");
        assert_eq!(entries[2].query, "q4");
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 2);
    }
}
