//! Log-bucketed latency histograms.
//!
//! Buckets are powers of two in microseconds: bucket `i` counts
//! observations `v <= 2^i µs` for `i in 0..27`, and the last bucket is
//! `+Inf`. That spans 1 µs … ~67 s with 28 counters — fine-grained where
//! query latencies live, one cache line of hot state, and cheap to render
//! as cumulative Prometheus `_bucket{le=...}` series. p50/p95/p99/max are
//! derivable from a snapshot ([`HistSnapshot::quantile_us`]).
//!
//! Concurrency: recording is a relaxed `fetch_add` per observation (one
//! bucket, the sum, and a `fetch_max` for the max) — no locks, safe from
//! any thread. A snapshot reads the buckets individually, so it is *racy
//! but monotone*: each bucket count is exact at some instant during the
//! read, totals never decrease, and the derived `count` always equals the
//! sum of the snapshotted buckets (the bucket-sum invariant tests pin).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of buckets, including the final `+Inf` bucket.
pub const BUCKET_COUNT: usize = 28;

/// Upper bound (inclusive, in µs) of bucket `i`; the last bucket is
/// unbounded.
pub fn bucket_upper_us(i: usize) -> u64 {
    if i + 1 < BUCKET_COUNT {
        1u64 << i
    } else {
        u64::MAX
    }
}

/// The bucket an observation of `us` microseconds lands in: the smallest
/// `i` with `us <= 2^i`, clamped into the `+Inf` bucket.
pub fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        return 0;
    }
    let i = 64 - ((us - 1).leading_zeros() as usize);
    i.min(BUCKET_COUNT - 1)
}

#[derive(Debug)]
pub(crate) struct HistCore {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl HistCore {
    fn new() -> HistCore {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

/// A concurrent latency histogram handle. Clones share the same counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistCore>,
}

impl Histogram {
    /// A histogram not attached to any registry (client-side tooling like
    /// the bench load drivers). Registry-attached histograms come from
    /// [`crate::Registry::histogram`].
    pub fn unregistered() -> Histogram {
        Histogram {
            core: Arc::new(HistCore::new()),
        }
    }

    /// Record one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        self.core.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.core.sum_us.fetch_add(us, Ordering::Relaxed);
        self.core.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Record a duration (saturating at `u64::MAX` µs).
    pub fn observe_duration(&self, d: Duration) {
        self.observe_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record the span started by [`crate::span_start`], if spans were
    /// enabled when it started. Uses a saturating elapsed time, so a
    /// stepped clock can never underflow into a bogus huge value.
    pub fn observe_span(&self, started: Option<std::time::Instant>) {
        if let Some(t0) = started {
            self.observe_duration(crate::span::saturating_elapsed(t0));
        }
    }

    /// Racy-but-monotone snapshot (see module docs).
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: [u64; BUCKET_COUNT] =
            std::array::from_fn(|i| self.core.buckets[i].load(Ordering::Relaxed));
        HistSnapshot {
            buckets,
            sum_us: self.core.sum_us.load(Ordering::Relaxed),
            max_us: self.core.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Plain copy of a histogram at one point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: [u64; BUCKET_COUNT],
    /// Sum of all observed values, in µs.
    pub sum_us: u64,
    /// Largest observed value, in µs.
    pub max_us: u64,
}

impl HistSnapshot {
    /// Total observations — by construction exactly the sum of the
    /// snapshotted buckets.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (0.0..=1.0) estimated from bucket upper bounds,
    /// clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper_us(i).min(self.max_us);
            }
        }
        self.max_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        // v = 0 and v = 1 land in bucket 0 (le="1").
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        // Exact powers land in their own bucket; one past lands in the next.
        for i in 1..(BUCKET_COUNT - 1) {
            let ub = 1u64 << i;
            assert_eq!(bucket_index(ub), i, "2^{i} must be in bucket {i}");
            assert_eq!(bucket_index(ub - 1), if ub - 1 > 1u64 << (i - 1) { i } else { i - 1 });
            assert_eq!(bucket_index(ub + 1), (i + 1).min(BUCKET_COUNT - 1));
        }
        // Anything beyond the last finite bound goes to +Inf.
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_upper_us(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn observe_and_quantiles() {
        let h = Histogram::unregistered();
        for us in [1u64, 2, 3, 100, 1000, 100_000] {
            h.observe_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum_us, 1 + 2 + 3 + 100 + 1000 + 100_000);
        assert_eq!(s.max_us, 100_000);
        // p100 clamps to the observed max, not the bucket bound.
        assert_eq!(s.quantile_us(1.0), 100_000);
        // p50 of 6 obs = rank 3 -> value 3 lives in bucket le="4".
        assert_eq!(s.quantile_us(0.5), 4);
        assert_eq!(s.quantile_us(0.0), 1);
        assert_eq!(HistSnapshot { buckets: [0; BUCKET_COUNT], sum_us: 0, max_us: 0 }.quantile_us(0.99), 0);
    }

    #[test]
    fn concurrent_recording_keeps_bucket_sum_invariant() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Histogram::unregistered();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Spread across buckets deterministically.
                        h.observe_us((i % 17) * (t as u64 + 1));
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count(), THREADS as u64 * PER_THREAD);
        let expected_sum: u64 = (0..THREADS as u64)
            .map(|t| (0..PER_THREAD).map(|i| (i % 17) * (t + 1)).sum::<u64>())
            .sum();
        assert_eq!(s.sum_us, expected_sum);
        assert!(s.max_us <= 16 * THREADS as u64);
        // The bucket-sum invariant: count is *derived* from the buckets,
        // so it can never disagree with them.
        assert_eq!(s.count(), s.buckets.iter().sum::<u64>());
    }
}
