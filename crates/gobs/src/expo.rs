//! Prometheus text exposition (format 0.0.4) rendered from a
//! [`Snapshot`], plus a grammar validator for tests and CI.
//!
//! Histograms render as cumulative `_bucket{le="..."}` series with
//! integer-microsecond bounds, a `+Inf` bucket, `_sum` and `_count` —
//! exactly what `histogram_quantile()` expects on the scrape side.

use crate::hist::{bucket_upper_us, BUCKET_COUNT};
use crate::registry::{valid_metric_name, SnapValue, Snapshot};

fn escape_help(help: &str, out: &mut String) {
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Render a snapshot as Prometheus text exposition. A labeled family
/// (several entries sharing one name) gets one `# HELP`/`# TYPE` header —
/// emitted at its first entry — and one sample line per label set.
pub fn render(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for e in &snap.entries {
        let first = !seen.contains(&e.name.as_str());
        if first {
            seen.push(&e.name);
            out.push_str("# HELP ");
            out.push_str(&e.name);
            out.push(' ');
            escape_help(&e.help, &mut out);
            out.push('\n');
        }
        let series: String = if e.labels.is_empty() {
            e.name.clone()
        } else {
            format!("{}{{{}}}", e.name, e.labels)
        };
        match &e.value {
            SnapValue::Counter(v) => {
                if first {
                    let _ = writeln!(out, "# TYPE {} counter", e.name);
                }
                let _ = writeln!(out, "{series} {v}");
            }
            SnapValue::Gauge(v) => {
                if first {
                    let _ = writeln!(out, "# TYPE {} gauge", e.name);
                }
                let _ = writeln!(out, "{series} {v}");
            }
            SnapValue::Histogram(h) => {
                if first {
                    let _ = writeln!(out, "# TYPE {} histogram", e.name);
                }
                let mut cum = 0u64;
                for (i, &c) in h.buckets.iter().enumerate() {
                    cum += c;
                    if i + 1 < BUCKET_COUNT {
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {cum}",
                            e.name,
                            bucket_upper_us(i)
                        );
                    } else {
                        let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {cum}", e.name);
                    }
                }
                let _ = writeln!(out, "{}_sum {}", e.name, h.sum_us);
                let _ = writeln!(out, "{}_count {}", e.name, h.count());
            }
        }
    }
    out
}

/// Validate `text` against the exposition-format grammar: every line must
/// be a `# HELP`/`# TYPE` comment, blank, or a well-formed sample
/// (`name{labels} value`). Returns the number of sample lines, or the
/// first offending line. Used by the gobs/gserver tests and the CI
/// metrics smoke.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kw = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match kw {
                "HELP" => {
                    if !valid_metric_name(name) {
                        return Err(format!("bad HELP line: {line:?}"));
                    }
                }
                "TYPE" => {
                    let ty = parts.next().unwrap_or("");
                    if !valid_metric_name(name)
                        || !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped")
                    {
                        return Err(format!("bad TYPE line: {line:?}"));
                    }
                }
                _ => return Err(format!("unknown comment: {line:?}")),
            }
            continue;
        }
        samples += validate_sample(line).map_err(|e| format!("{e}: {line:?}"))?;
    }
    Ok(samples)
}

fn validate_sample(line: &str) -> Result<usize, &'static str> {
    // name ['{' labels '}'] ' ' value
    let name_end = line
        .find(['{', ' '])
        .ok_or("sample missing value")?;
    if !valid_metric_name(&line[..name_end]) {
        return Err("bad metric name");
    }
    let rest = &line[name_end..];
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let close = body.find('}').ok_or("unterminated label set")?;
        validate_labels(&body[..close])?;
        body[close + 1..].trim_start_matches(' ')
    } else {
        rest.trim_start_matches(' ')
    };
    let value = rest.split(' ').next().ok_or("sample missing value")?;
    let ok_float = value.parse::<f64>().is_ok()
        || matches!(value, "+Inf" | "-Inf" | "NaN");
    if !ok_float {
        return Err("bad sample value");
    }
    Ok(1)
}

fn validate_labels(body: &str) -> Result<(), &'static str> {
    if body.is_empty() {
        return Ok(());
    }
    for pair in body.split(',') {
        let (k, v) = pair.split_once('=').ok_or("label without '='")?;
        if !valid_metric_name(k) {
            return Err("bad label name");
        }
        if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
            return Err("unquoted label value");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::Snapshot;

    #[test]
    fn every_rendered_line_parses() {
        let r = Registry::new();
        r.counter("expo_requests_total", "total requests\nwith newline")
            .add(3);
        r.gauge("expo_sessions", "live sessions").set(-2);
        let h = r.histogram("expo_latency_us", "request latency");
        for us in [1u64, 5, 50, 5_000, 50_000_000_000] {
            h.observe_us(us);
        }
        let text = render(&Snapshot::collect(&[&r]));
        let samples = validate_exposition(&text).expect("valid exposition");
        // 1 counter + 1 gauge + (28 buckets + sum + count).
        assert_eq!(samples, 2 + crate::BUCKET_COUNT + 2);
        assert!(text.contains("# TYPE expo_latency_us histogram"));
        assert!(text.contains("expo_latency_us_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("expo_latency_us_count 5"));
        assert!(text.contains("expo_requests_total 3"));
        assert!(text.contains("expo_sessions -2"));
        assert!(text.contains("total requests\\nwith newline"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let r = Registry::new();
        let h = r.histogram("expo_cum_us", "");
        for us in [1u64, 2, 4, 1024, 1_000_000] {
            h.observe_us(us);
        }
        let text = render(&Snapshot::collect(&[&r]));
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.starts_with("expo_cum_us_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "buckets must be cumulative: {line}");
            last = v;
            bucket_lines += 1;
        }
        assert_eq!(bucket_lines, crate::BUCKET_COUNT);
        assert_eq!(last, 5, "+Inf bucket must equal the total count");
    }

    #[test]
    fn labeled_family_renders_one_header_many_samples() {
        let r = Registry::new();
        for shard in 0..3u64 {
            r.fn_counter_labeled(
                "expo_shard_commits_total",
                &format!("shard=\"{shard}\""),
                "commits per shard",
                move || shard * 10,
            );
        }
        let text = render(&Snapshot::collect(&[&r]));
        validate_exposition(&text).expect("valid exposition with labels");
        assert_eq!(
            text.matches("# TYPE expo_shard_commits_total counter").count(),
            1,
            "one TYPE header per family"
        );
        assert!(text.contains("expo_shard_commits_total{shard=\"0\"} 0"));
        assert!(text.contains("expo_shard_commits_total{shard=\"2\"} 20"));
        let snap = Snapshot::collect(&[&r]);
        assert_eq!(snap.value_labeled("expo_shard_commits_total", "shard=\"1\""), Some(10));
        assert_eq!(snap.sum("expo_shard_commits_total"), Some(30));
        assert_eq!(snap.value("expo_shard_commits_total"), None, "no unlabeled series");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_exposition("1bad_name 3").is_err());
        assert!(validate_exposition("name{le=1} 3").is_err());
        assert!(validate_exposition("name not_a_number").is_err());
        assert!(validate_exposition("# BOGUS name counter").is_err());
        assert!(validate_exposition("# TYPE name nonsense").is_err());
        assert!(validate_exposition("ok_name{le=\"+Inf\"} 3\n").unwrap() == 1);
    }
}
