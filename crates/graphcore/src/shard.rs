//! N-way sharding: per-shard PMem pools behind a router (DESIGN.md §13).
//!
//! A [`ShardedDb`] owns N independent [`GraphDb`]s — each with its own
//! `pmem::Pool`, undo log, allocator arenas, `TxnManager` and
//! `CommitPipeline` — and a [`ShardRouter`] that hash-partitions node ids
//! across them. N = 1 (the default, `PMEMGRAPH_SHARDS`) degenerates to a
//! plain `GraphDb`: global ids equal shard-local ids and the on-media
//! format is bit-identical to the unsharded engine.
//!
//! **Id scheme.** A global id encodes its shard in the low bits:
//! `gid = lid * N + shard`, so `shard = gid % N` and `lid = gid / N` —
//! round-robin placement then yields dense local id spaces in every shard.
//!
//! **Commit protocol.** A transaction whose writes touch one shard
//! commits through that shard's group-commit pipeline, exactly as before
//! (the fast path). A transaction touching k ≥ 2 shards commits by a
//! two-phase epoch built on the undo-log machinery: each touched shard
//! prepares its batch (undo entries + a trailing epoch marker, applied in
//! place — 3 fences, see `pmem::Pool::tx_prepare_batches`), then one
//! epoch record on the decider shard (shard 0) commits the whole
//! transaction with a single 8-byte persist, then each shard truncates
//! its log. Recovery reads the decider's `committed_epoch` first and
//! replays every shard in parallel: a shard whose log ends in an epoch
//! marker ≤ the decided epoch settles forward, any other non-empty log
//! rolls back — so a cross-shard transaction is visible on all shards or
//! none.
//!
//! **Cross-shard relationships.** An edge whose endpoints live in
//! different shards is stored as two halves: the out-half in the source
//! shard (its `dst` is the destination's *global* id tagged with the
//! [`REMOTE`] bit) linked into the source node's out-list, and a mirror
//! in-half in the destination shard (its `src` is tagged) linked into the
//! destination node's in-list. Both halves ride the same epoch commit, so
//! neither list can surface a dangling half after a crash. Scans that
//! stitch shards (the analytics CSR) count each edge once by skipping
//! mirror halves.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmem::{DeviceProfile, Pool, TxBatch};

use gstore::{NodeRecord, PVal, RelRecord};

use crate::db::{DbOptions, GraphDb};
use crate::error::GraphError;
use crate::txn::{Dir, GraphTxn, PropOwner};
use crate::value::Value;
use crate::{NodeId, RelId, Result};

/// Tag bit marking a relationship endpoint as a *global* id in another
/// shard (record ids stay far below 2^63, so the bit is never ambiguous).
pub const REMOTE: u64 = 1 << 63;

/// True if a stored endpoint references a node in another shard.
#[inline]
pub fn is_remote(endpoint: u64) -> bool {
    endpoint & REMOTE != 0
}

/// Strip the [`REMOTE`] tag, yielding the referenced global id.
#[inline]
pub fn strip_remote(endpoint: u64) -> u64 {
    endpoint & !REMOTE
}

/// The id-partitioning function plus round-robin placement state.
pub struct ShardRouter {
    n: u64,
    next: AtomicU64,
}

impl ShardRouter {
    pub fn new(shards: usize) -> ShardRouter {
        assert!(shards >= 1, "at least one shard");
        ShardRouter {
            n: shards as u64,
            next: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.n as usize
    }

    /// The shard owning a global id.
    #[inline]
    pub fn shard_of(&self, gid: u64) -> usize {
        (gid % self.n) as usize
    }

    /// The shard-local record id of a global id.
    #[inline]
    pub fn local_of(&self, gid: u64) -> u64 {
        gid / self.n
    }

    /// The global id of `(shard, local id)`.
    #[inline]
    pub fn global_of(&self, shard: usize, lid: u64) -> u64 {
        lid * self.n + shard as u64
    }

    /// Pick the shard for the next insert (round-robin).
    pub fn place(&self) -> usize {
        (self.next.fetch_add(1, Ordering::Relaxed) % self.n) as usize
    }
}

/// Configuration for creating a sharded database.
pub struct ShardOptions {
    path: Option<PathBuf>,
    shards: usize,
    /// Per-shard pool size in bytes.
    size: usize,
    profile: DeviceProfile,
    log_cap: u64,
    crash_tracking: bool,
}

impl ShardOptions {
    /// A volatile sharded database (shard count from `PMEMGRAPH_SHARDS`).
    pub fn dram(size: usize) -> ShardOptions {
        ShardOptions {
            path: None,
            shards: gconfig::shards() as usize,
            size,
            profile: DeviceProfile::dram(),
            log_cap: 1 << 20,
            crash_tracking: false,
        }
    }

    /// A persistent sharded database. `base` names shard 0's pool when the
    /// count is 1 (bit-identical to an unsharded [`GraphDb`]); with N > 1,
    /// shard i lives at `<base>.s<i>`.
    pub fn pmem(base: impl AsRef<Path>, size: usize) -> ShardOptions {
        ShardOptions {
            path: Some(base.as_ref().to_path_buf()),
            shards: gconfig::shards() as usize,
            size,
            profile: DeviceProfile::pmem(),
            log_cap: 1 << 20,
            crash_tracking: false,
        }
    }

    /// Override the shard count (otherwise `PMEMGRAPH_SHARDS`).
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one shard");
        self.shards = n;
        self
    }

    /// Override the injected-latency profile.
    pub fn profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Enable cache-line crash tracking on every shard pool.
    pub fn crash_tracking(mut self, on: bool) -> Self {
        self.crash_tracking = on;
        self
    }

    /// Per-shard undo-log capacity in bytes.
    pub fn log_cap(mut self, cap: u64) -> Self {
        self.log_cap = cap;
        self
    }
}

/// The path of shard `i` under `base` for a total of `n` shards.
pub fn shard_path(base: &Path, i: usize, n: usize) -> PathBuf {
    if n == 1 {
        base.to_path_buf()
    } else {
        let mut s = base.as_os_str().to_os_string();
        s.push(format!(".s{i}"));
        PathBuf::from(s)
    }
}

/// N independent transaction/commit/recovery domains behind one router.
pub struct ShardedDb {
    shards: Vec<Arc<GraphDb>>,
    router: ShardRouter,
    /// Serialises dictionary interning across shards so every shard
    /// assigns identical codes (the router's coded fast paths rely on it).
    intern_lock: Mutex<()>,
    /// Serialises cross-shard epoch commits: participants prepare in
    /// ascending shard order under this lock, so two cross-shard commits
    /// can never deadlock on each other's pool transaction locks.
    cross_lock: Mutex<()>,
    /// Next cross-shard epoch (1-based; 0 means "none decided").
    next_epoch: AtomicU64,
    cross_commits: AtomicU64,
}

impl ShardedDb {
    /// Create a fresh sharded database.
    pub fn create(opts: ShardOptions) -> Result<ShardedDb> {
        let n = opts.shards;
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let per = match &opts.path {
                Some(base) => DbOptions::pmem(shard_path(base, i, n), opts.size),
                None => DbOptions::dram(opts.size),
            };
            let per = per
                .profile(opts.profile)
                .log_cap(opts.log_cap)
                .crash_tracking(opts.crash_tracking);
            shards.push(Arc::new(GraphDb::create(per)?));
        }
        Ok(ShardedDb::assemble(shards))
    }

    /// Open an existing sharded database, replaying recovery on every
    /// shard **in parallel**. The decider shard's `committed_epoch` is
    /// read from the file header *before* any pool recovery runs, so each
    /// shard can settle or roll back a trailing cross-shard epoch marker
    /// independently of the others.
    pub fn open(base: impl AsRef<Path>, shards: usize, profile: DeviceProfile) -> Result<ShardedDb> {
        let base = base.as_ref();
        let committed = Pool::peek_committed_epoch(shard_path(base, 0, shards))?;
        let decider = move |e: u64| e <= committed;
        let mut slots: Vec<Option<Result<GraphDb>>> = (0..shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                let path = shard_path(base, i, shards);
                let decider = &decider;
                scope.spawn(move || {
                    *slot = Some(GraphDb::open_with_decider(path, profile, decider));
                });
            }
        });
        let opened = slots
            .into_iter()
            .map(|s| s.expect("shard recovery thread completed").map(Arc::new))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedDb::assemble(opened))
    }

    fn assemble(shards: Vec<Arc<GraphDb>>) -> ShardedDb {
        let n = shards.len();
        let decided = shards[0].pool().committed_epoch();
        ShardedDb {
            shards,
            router: ShardRouter::new(n),
            intern_lock: Mutex::new(()),
            cross_lock: Mutex::new(()),
            next_epoch: AtomicU64::new(decided + 1),
            cross_commits: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.router.shard_count()
    }

    /// The id-partitioning router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// One shard's database.
    pub fn shard(&self, i: usize) -> &GraphDb {
        &self.shards[i]
    }

    /// All shards (e.g. for per-shard metric registration).
    pub fn shards(&self) -> &[Arc<GraphDb>] {
        &self.shards
    }

    /// Completed cross-shard epoch commits.
    pub fn cross_commits(&self) -> u64 {
        self.cross_commits.load(Ordering::Relaxed)
    }

    /// Sum of the shards' mutation epochs: any committed write anywhere
    /// bumps it, so snapshot caches can validate against one number.
    pub fn mutation_epoch(&self) -> u64 {
        self.shards.iter().map(|s| s.mutation_epoch()).sum()
    }

    /// Live nodes across all shards.
    pub fn node_count(&self) -> usize {
        self.shards.iter().map(|s| s.node_count()).sum()
    }

    /// Live relationship *records* across all shards. A cross-shard edge
    /// contributes two records (out-half + mirror).
    pub fn rel_record_count(&self) -> usize {
        self.shards.iter().map(|s| s.rel_count()).sum()
    }

    /// Checkpoint every shard (flush deferred tails, truncate logs).
    pub fn checkpoint(&self) -> Result<()> {
        for s in &self.shards {
            s.checkpoint()?;
        }
        Ok(())
    }

    /// Intern a string into **every** shard's dictionary under one lock,
    /// asserting the assigned codes agree. As long as all interning flows
    /// through the router (the [`ShardedTxn`] ops guarantee it), the
    /// per-shard dictionaries stay mirrored and a code is valid anywhere.
    pub fn intern(&self, s: &str) -> Result<u32> {
        // Fast path, no lock: the mirror loop below writes shard 0 first
        // and the last shard last, so a string present in the *last*
        // shard's dictionary is already mirrored everywhere and its code
        // is final. Repeat interning (every label/key after the first
        // use) never serializes cross-shard writers here.
        if let Some(code) = self.shards[self.shards.len() - 1].dict().code_of(s) {
            return Ok(code);
        }
        let _g = self.intern_lock.lock();
        let mut code = None;
        for sh in &self.shards {
            let c = sh.intern(s)?;
            if let Some(prev) = code {
                debug_assert_eq!(prev, c, "shard dictionaries diverged for {s:?}");
            }
            code = Some(c);
        }
        Ok(code.expect("at least one shard"))
    }

    /// Encode an API value for storage, mirror-interning strings.
    pub fn encode_value(&self, v: &Value) -> Result<PVal> {
        Ok(match v {
            Value::Int(x) => PVal::Int(*x),
            Value::Double(x) => PVal::Double(*x),
            Value::Bool(x) => PVal::Bool(*x),
            Value::Str(s) => PVal::Str(self.intern(s)?),
            Value::Date(x) => PVal::Date(*x),
            Value::Null => PVal::Null,
        })
    }

    fn encode_props(&self, props: &[(&str, Value)]) -> Result<Vec<(u32, PVal)>> {
        props
            .iter()
            .map(|(k, v)| Ok((self.intern(k)?, self.encode_value(v)?)))
            .collect()
    }

    /// Begin a transaction spanning any subset of shards. Per-shard MVTO
    /// transactions start lazily on first touch.
    pub fn begin(&self) -> ShardedTxn<'_> {
        ShardedTxn {
            db: self,
            inner: (0..self.shard_count()).map(|_| None).collect(),
        }
    }

    /// Resolve a stored relationship endpoint (as read in shard `shard`)
    /// to a global node id.
    #[inline]
    pub fn endpoint_global(&self, shard: usize, raw: u64) -> u64 {
        if is_remote(raw) {
            strip_remote(raw)
        } else {
            self.router.global_of(shard, raw)
        }
    }
}

impl std::fmt::Debug for ShardedDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDb")
            .field("shards", &self.shard_count())
            .field("nodes", &self.node_count())
            .field("cross_commits", &self.cross_commits())
            .finish()
    }
}

/// A transaction over a [`ShardedDb`]: one lazy [`GraphTxn`] per touched
/// shard. All ids in this API are **global**. Aborts on drop unless
/// committed.
pub struct ShardedTxn<'d> {
    db: &'d ShardedDb,
    inner: Vec<Option<GraphTxn<'d>>>,
}

impl<'d> ShardedTxn<'d> {
    fn shard_txn(&mut self, shard: usize) -> &mut GraphTxn<'d> {
        let db = self.db;
        self.inner[shard].get_or_insert_with(|| db.shard(shard).begin())
    }

    /// Number of shards this transaction has touched so far.
    pub fn touched_shards(&self) -> usize {
        self.inner.iter().filter(|t| t.is_some()).count()
    }

    // ------------------------------------------------------------------
    // Nodes
    // ------------------------------------------------------------------

    /// Create a node (round-robin shard placement). Returns its global id.
    pub fn create_node(&mut self, label: &str, props: &[(&str, Value)]) -> Result<NodeId> {
        let shard = self.db.router.place();
        self.create_node_on(shard, label, props)
    }

    /// Create a node on a caller-chosen shard — a placement hint for
    /// partition-affine loads (a writer pinned to one shard commits
    /// through that shard's pipeline alone and never pays the cross-shard
    /// epoch). The id is globally addressable like any other.
    pub fn create_node_on(
        &mut self,
        shard: usize,
        label: &str,
        props: &[(&str, Value)],
    ) -> Result<NodeId> {
        let label_code = self.db.intern(label)?;
        let coded = self.db.encode_props(props)?;
        let lid = self.shard_txn(shard).create_node_coded(label_code, &coded)?;
        Ok(self.db.router.global_of(shard, lid))
    }

    /// The node record visible to this transaction, if any. Adjacency
    /// heads inside the record are shard-local (use the traversal methods
    /// for global views).
    pub fn node(&mut self, gid: NodeId) -> Result<Option<NodeRecord>> {
        let shard = self.db.router.shard_of(gid);
        let lid = self.db.router.local_of(gid);
        self.shard_txn(shard).node(lid)
    }

    // ------------------------------------------------------------------
    // Relationships
    // ------------------------------------------------------------------

    /// Create `src -[label]-> dst`. Same-shard endpoints take the single
    /// record fast path; cross-shard endpoints store two halves (out-half
    /// in `src`'s shard — whose global id names the edge — and a mirror
    /// in `dst`'s shard), both committed atomically by the epoch commit.
    pub fn create_rel(
        &mut self,
        src: NodeId,
        label: &str,
        dst: NodeId,
        props: &[(&str, Value)],
    ) -> Result<RelId> {
        let label_code = self.db.intern(label)?;
        let coded = self.db.encode_props(props)?;
        let r = &self.db.router;
        let (ss, ds) = (r.shard_of(src), r.shard_of(dst));
        let (sl, dl) = (r.local_of(src), r.local_of(dst));
        if ss == ds {
            let lid = self.shard_txn(ss).create_rel_coded(sl, label_code, dl, &coded)?;
            return Ok(self.db.router.global_of(ss, lid));
        }
        let out = self
            .shard_txn(ss)
            .create_rel_out_half(sl, label_code, REMOTE | dst, &coded)?;
        self.shard_txn(ds)
            .create_rel_in_half(REMOTE | src, label_code, dl)?;
        Ok(self.db.router.global_of(ss, out))
    }

    /// Visit `node`'s relationships in `dir` with global endpoint ids:
    /// `f(rel_gid, src_gid, dst_gid, &record)`.
    pub fn for_each_rel(
        &mut self,
        node: NodeId,
        dir: Dir,
        label: Option<u32>,
        mut f: impl FnMut(RelId, NodeId, NodeId, &RelRecord),
    ) -> Result<()> {
        let shard = self.db.router.shard_of(node);
        let lid = self.db.router.local_of(node);
        let db = self.db;
        self.shard_txn(shard).for_each_rel(lid, dir, label, |rid, rec| {
            let src = db.endpoint_global(shard, rec.src);
            let dst = db.endpoint_global(shard, rec.dst);
            f(db.router.global_of(shard, rid), src, dst, rec);
        })
    }

    /// Global neighbour ids of `node` in `dir`.
    pub fn neighbors(&mut self, node: NodeId, dir: Dir, label: Option<u32>) -> Result<Vec<NodeId>> {
        let mut out = Vec::new();
        self.for_each_rel(node, dir, label, |_, s, d, _| {
            out.push(match dir {
                Dir::Out => d,
                Dir::In => s,
            })
        })?;
        Ok(out)
    }

    /// Number of relationships in a direction (local halves and
    /// cross-shard halves both live in the owning node's list).
    pub fn degree(&mut self, node: NodeId, dir: Dir) -> Result<usize> {
        let mut n = 0;
        self.for_each_rel(node, dir, None, |_, _, _, _| n += 1)?;
        Ok(n)
    }

    /// Delete a same-shard relationship. Cross-shard relationships are
    /// not yet deletable through the router; the error names both
    /// participating shards so the caller can tell *which* epoch domain
    /// pair the half-edges live in (DESIGN.md §13).
    pub fn delete_rel(&mut self, rel: RelId) -> Result<()> {
        let shard = self.db.router.shard_of(rel);
        let lid = self.db.router.local_of(rel);
        {
            let txn = self.shard_txn(shard);
            if let Some(rec) = txn.rel(lid)? {
                let remote_end = [rec.src, rec.dst].into_iter().find(|&e| is_remote(e));
                if let Some(raw) = remote_end {
                    let other = self.db.router.shard_of(strip_remote(raw));
                    return Err(GraphError::CrossShard(format!(
                        "relationship {rel} spans shards {shard} and {other}: \
                         cross-shard deletes are not supported yet (both halves \
                         would need one epoch commit)"
                    )));
                }
            }
        }
        self.shard_txn(shard).delete_rel(lid)
    }

    // ------------------------------------------------------------------
    // Properties
    // ------------------------------------------------------------------

    /// Read one property of a node or relationship (global ids).
    pub fn prop(&mut self, owner: PropOwner, key: &str) -> Result<Option<Value>> {
        let (shard, local) = self.route_owner(owner);
        self.shard_txn(shard).prop(local, key)
    }

    /// Set one property (global ids); strings are mirror-interned.
    pub fn set_prop(&mut self, owner: PropOwner, key: &str, value: Value) -> Result<()> {
        let key_code = self.db.intern(key)?;
        let pv = self.db.encode_value(&value)?;
        let (shard, local) = self.route_owner(owner);
        self.shard_txn(shard).set_prop_coded(local, key_code, pv)
    }

    fn route_owner(&self, owner: PropOwner) -> (usize, PropOwner) {
        let r = &self.db.router;
        match owner {
            PropOwner::Node(gid) => (r.shard_of(gid), PropOwner::Node(r.local_of(gid))),
            PropOwner::Rel(gid) => (r.shard_of(gid), PropOwner::Rel(r.local_of(gid))),
        }
    }

    // ------------------------------------------------------------------
    // Commit / abort
    // ------------------------------------------------------------------

    /// Commit. A transaction that wrote ≤ 1 shard commits each per-shard
    /// transaction through its own group-commit pipeline (today's fast
    /// path — read-only shards cost nothing). A transaction that wrote
    /// k ≥ 2 shards runs the two-phase epoch commit: every writer shard
    /// prepares (3 fences), one epoch record on shard 0 decides (1
    /// fence), every writer truncates its log (1 fence each).
    pub fn commit(mut self) -> Result<()> {
        let writers = self
            .inner
            .iter()
            .filter(|t| t.as_ref().is_some_and(|t| !t.raw().is_read_only()))
            .count();
        if writers <= 1 {
            for txn in self.inner.iter_mut().filter_map(Option::take) {
                txn.commit()?;
            }
            return Ok(());
        }

        // Cross-shard path. Serialised so concurrent epoch commits take
        // the per-pool transaction locks in the same (ascending) order.
        let _g = self.db.cross_lock.lock();
        let epoch = self.db.next_epoch.fetch_add(1, Ordering::Relaxed);
        let mut pending: Vec<(usize, GraphTxn<'d>, gtxn::PendingCommit)> = Vec::new();
        for shard in 0..self.inner.len() {
            let Some(mut txn) = self.inner[shard].take() else {
                continue;
            };
            if txn.raw().is_read_only() {
                txn.commit()?;
                continue;
            }
            if let Some(p) = txn.prepare_commit()? {
                pending.push((shard, txn, p));
            }
        }
        {
            let batches: Vec<[&TxBatch; 1]> =
                pending.iter().map(|(_, _, p)| [p.batch()]).collect();
            let participants: Vec<(&Pool, &[&TxBatch])> = pending
                .iter()
                .zip(&batches)
                .map(|((shard, _, _), b)| (self.db.shard(*shard).pool().as_ref(), &b[..]))
                .collect();
            pmem::commit_epoch(&participants, self.db.shard(0).pool(), epoch)
                .map_err(GraphError::Pmem)?;
        }
        for (_, mut txn, p) in pending {
            txn.finish_commit(p);
        }
        self.db.cross_commits.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Abort every per-shard transaction explicitly (drop does the same).
    pub fn abort(mut self) {
        for txn in self.inner.iter_mut().filter_map(Option::take) {
            txn.abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram(n: usize) -> ShardedDb {
        ShardedDb::create(ShardOptions::dram(48 << 20).shards(n)).unwrap()
    }

    #[test]
    fn single_shard_ids_are_identity() {
        let db = dram(1);
        let mut tx = db.begin();
        let a = tx.create_node("N", &[("k", Value::Int(1))]).unwrap();
        let b = tx.create_node("N", &[]).unwrap();
        let r = tx.create_rel(a, "E", b, &[]).unwrap();
        tx.commit().unwrap();
        // gid == lid when N = 1: the unsharded engine sees the same ids.
        let inner = db.shard(0).begin();
        assert!(inner.node(a).unwrap().is_some());
        assert!(inner.node(b).unwrap().is_some());
        assert!(inner.rel(r).unwrap().is_some());
        assert_eq!(db.cross_commits(), 0);
    }

    #[test]
    fn router_id_scheme_round_trips() {
        let r = ShardRouter::new(4);
        for gid in [0u64, 1, 2, 3, 4, 17, 1000, 12345] {
            let s = r.shard_of(gid);
            let l = r.local_of(gid);
            assert_eq!(r.global_of(s, l), gid);
        }
        assert!(is_remote(REMOTE | 42));
        assert_eq!(strip_remote(REMOTE | 42), 42);
    }

    #[test]
    fn cross_shard_rel_traverses_both_directions() {
        let db = dram(4);
        let mut tx = db.begin();
        // Round-robin: four creates land on four different shards.
        let ids: Vec<NodeId> = (0..4)
            .map(|i| tx.create_node("N", &[("i", Value::Int(i))]).unwrap())
            .collect();
        let r01 = tx.create_rel(ids[0], "E", ids[1], &[("w", Value::Int(7))]).unwrap();
        tx.create_rel(ids[1], "E", ids[2], &[]).unwrap();
        assert!(tx.touched_shards() >= 2);
        tx.commit().unwrap();
        assert_eq!(db.cross_commits(), 1);

        let mut tx = db.begin();
        assert_eq!(tx.neighbors(ids[0], Dir::Out, None).unwrap(), vec![ids[1]]);
        assert_eq!(tx.neighbors(ids[1], Dir::In, None).unwrap(), vec![ids[0]]);
        assert_eq!(tx.neighbors(ids[1], Dir::Out, None).unwrap(), vec![ids[2]]);
        assert_eq!(tx.degree(ids[1], Dir::Out).unwrap(), 1);
        assert_eq!(tx.degree(ids[1], Dir::In).unwrap(), 1);
        assert_eq!(
            tx.prop(PropOwner::Rel(r01), "w").unwrap(),
            Some(Value::Int(7))
        );
        assert_eq!(
            tx.prop(PropOwner::Node(ids[3]), "i").unwrap(),
            Some(Value::Int(3))
        );
    }

    #[test]
    fn dictionaries_stay_mirrored() {
        let db = dram(3);
        let a = db.intern("alpha").unwrap();
        let b = db.intern("beta").unwrap();
        assert_ne!(a, b);
        for s in 0..3 {
            assert_eq!(db.shard(s).dict().code_of("alpha"), Some(a));
            assert_eq!(db.shard(s).dict().code_of("beta"), Some(b));
        }
        // Re-interning is stable.
        assert_eq!(db.intern("alpha").unwrap(), a);
    }

    #[test]
    fn abort_discards_cross_shard_writes() {
        let db = dram(2);
        let mut tx = db.begin();
        let a = tx.create_node("N", &[]).unwrap();
        let b = tx.create_node("N", &[]).unwrap();
        tx.commit().unwrap();

        let mut tx = db.begin();
        tx.create_rel(a, "E", b, &[]).unwrap();
        tx.abort();

        let mut tx = db.begin();
        assert_eq!(tx.degree(a, Dir::Out).unwrap(), 0);
        assert_eq!(tx.degree(b, Dir::In).unwrap(), 0);
    }

    #[test]
    fn cross_shard_delete_error_names_both_shards() {
        let db = dram(4);
        let mut tx = db.begin();
        let ids: Vec<NodeId> = (0..4).map(|_| tx.create_node("N", &[]).unwrap()).collect();
        // Round-robin placement: ids[0] is on shard 0, ids[2] on shard 2.
        let r = tx.create_rel(ids[0], "E", ids[2], &[]).unwrap();
        tx.commit().unwrap();

        let mut tx = db.begin();
        let err = tx.delete_rel(r).unwrap_err();
        match err {
            GraphError::CrossShard(msg) => {
                let s = db.router().shard_of(ids[0]);
                let o = db.router().shard_of(ids[2]);
                assert!(
                    msg.contains(&format!("shards {s} and {o}")),
                    "error must name both shards: {msg}"
                );
            }
            other => panic!("expected CrossShard, got {other:?}"),
        }
    }

    #[test]
    fn set_prop_routes_across_shards() {
        let db = dram(4);
        let mut tx = db.begin();
        let ids: Vec<NodeId> = (0..8).map(|_| tx.create_node("N", &[]).unwrap()).collect();
        tx.commit().unwrap();
        let mut tx = db.begin();
        for (i, &id) in ids.iter().enumerate() {
            tx.set_prop(PropOwner::Node(id), "rank", Value::Int(i as i64)).unwrap();
        }
        tx.commit().unwrap();
        let mut tx = db.begin();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(
                tx.prop(PropOwner::Node(id), "rank").unwrap(),
                Some(Value::Int(i as i64))
            );
        }
    }
}
