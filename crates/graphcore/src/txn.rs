//! [`GraphTxn`]: the RAII transaction handle with all graph operations.

use gstore::{NodeRecord, PVal, PropRecord, PropSlot, RecId, RelRecord, NIL};
use gstore::records::PROP_SLOTS;
use gtxn::{TableTag, Txn};

use crate::db::GraphDb;
use crate::error::GraphError;
use crate::value::Value;
use crate::{NodeId, RelId, Result};

/// Direction of a relationship traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Follow outgoing relationships (`first_out` / `next_src`).
    Out,
    /// Follow incoming relationships (`first_in` / `next_dst`).
    In,
}

/// Owner of a property chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropOwner {
    Node(NodeId),
    Rel(RelId),
}

/// An open transaction on a [`GraphDb`]. Aborts on drop unless committed.
pub struct GraphTxn<'db> {
    db: &'db GraphDb,
    inner: Option<Txn>,
    index_adds: Vec<(u32, u32, u64, NodeId)>,
    index_removes: Vec<(u32, u32, u64, NodeId)>,
    /// Deleted records whose slots become reclaimable at commit (ets = id).
    deleted: Vec<(TableTag, RecId)>,
}

impl<'db> GraphTxn<'db> {
    pub(crate) fn new(db: &'db GraphDb, inner: Txn) -> Self {
        GraphTxn {
            db,
            inner: Some(inner),
            index_adds: Vec::new(),
            index_removes: Vec::new(),
            deleted: Vec::new(),
        }
    }

    /// The MVTO transaction id (= begin timestamp).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map(|t| t.id).unwrap_or(0)
    }

    /// The database this transaction runs against.
    pub fn db(&self) -> &'db GraphDb {
        self.db
    }

    /// Raw access for the query layers.
    pub fn raw(&self) -> &Txn {
        self.inner.as_ref().expect("transaction active")
    }

    fn txn(&self) -> Result<&Txn> {
        self.inner.as_ref().ok_or(GraphError::TxnFinished)
    }

    fn txn_mut(&mut self) -> Result<&mut Txn> {
        self.inner.as_mut().ok_or(GraphError::TxnFinished)
    }

    /// Split-borrow helper: the database reference (independent of `self`'s
    /// borrow) together with the mutable transaction.
    fn parts(&mut self) -> Result<(&'db GraphDb, &mut Txn)> {
        let db = self.db;
        let txn = self.inner.as_mut().ok_or(GraphError::TxnFinished)?;
        Ok((db, txn))
    }

    // ------------------------------------------------------------------
    // Node operations
    // ------------------------------------------------------------------

    /// Create a node with a label and properties. Returns its id.
    pub fn create_node(&mut self, label: &str, props: &[(&str, Value)]) -> Result<NodeId> {
        let label_code = self.db.intern(label)?;
        let encoded = self.encode_props(props)?;
        let (db, txn) = self.parts()?;
        let id = db
            .mgr()
            .insert(txn, TableTag::Node, db.nodes(), NodeRecord::new(label_code))?;
        db.accel().note_node_label(id, label_code);
        if !encoded.is_empty() {
            let head = self.build_prop_chain(PropOwner::Node(id), &encoded)?;
            let (db, txn) = self.parts()?;
            db.mgr()
                .update(txn, TableTag::Node, db.nodes(), id, |n| n.props = head)?;
        }
        // Stage index insertions for matching (label, key) indexes and
        // eagerly widen zone maps (widen-only: safe even if we abort).
        for &(key_code, pv) in &encoded {
            self.db.accel().note_node_prop(key_code, id, pv.index_key());
            self.index_adds.push((label_code, key_code, pv.index_key(), id));
        }
        Ok(id)
    }

    /// The node record visible to this transaction, if any.
    pub fn node(&self, id: NodeId) -> Result<Option<NodeRecord>> {
        Ok(self
            .db
            .mgr()
            .read(self.txn()?, TableTag::Node, self.db.nodes(), id)?)
    }

    /// The relationship record visible to this transaction, if any.
    pub fn rel(&self, id: RelId) -> Result<Option<RelRecord>> {
        Ok(self
            .db
            .mgr()
            .read(self.txn()?, TableTag::Rel, self.db.rels(), id)?)
    }

    /// Claim the single-version fast path for one chunk at this
    /// transaction's snapshot. When this returns true, subsequent
    /// [`node_fast`](Self::node_fast)/[`rel_fast`](Self::rel_fast) reads
    /// over the chunk's records skip version-chain probes and `rts` bumps;
    /// the chunk-grain `read_ts` published by the claim makes conflicting
    /// writers abort instead (see `gtxn::ChunkState`).
    pub fn try_fast_chunk(&self, tag: TableTag, chunk: usize) -> bool {
        self.db.mgr().try_fast_chunk(tag, chunk, self.id())
    }

    /// Read a node through the single-version fast path: an inline
    /// visibility check on the record bytes, falling back to the full MVTO
    /// read for anything versioned. Only sound after a successful
    /// [`try_fast_chunk`](Self::try_fast_chunk) claim on the chunk.
    pub fn node_fast(&self, id: NodeId) -> Result<Option<NodeRecord>> {
        Ok(self
            .db
            .mgr()
            .read_fast(self.txn()?, TableTag::Node, self.db.nodes(), id)?)
    }

    /// Read a relationship through the single-version fast path (see
    /// [`node_fast`](Self::node_fast)).
    pub fn rel_fast(&self, id: RelId) -> Result<Option<RelRecord>> {
        Ok(self
            .db
            .mgr()
            .read_fast(self.txn()?, TableTag::Rel, self.db.rels(), id)?)
    }

    /// Resolve a node's label to its string.
    pub fn node_label(&self, id: NodeId) -> Result<Option<String>> {
        Ok(self
            .node(id)?
            .and_then(|n| self.db.dict().string_of(n.label)))
    }

    // ------------------------------------------------------------------
    // Relationship operations
    // ------------------------------------------------------------------

    /// Create a relationship `src -[label]-> dst` with properties. Links
    /// the record into both adjacency lists (head insertion), which
    /// versions both endpoint nodes under MVTO.
    pub fn create_rel(
        &mut self,
        src: NodeId,
        label: &str,
        dst: NodeId,
        props: &[(&str, Value)],
    ) -> Result<RelId> {
        let label_code = self.db.intern(label)?;
        let encoded = self.encode_props(props)?;
        let snode = self.node(src)?.ok_or(GraphError::NodeNotFound(src))?;
        let dnode = self.node(dst)?.ok_or(GraphError::NodeNotFound(dst))?;

        let mut rec = RelRecord::new(label_code, src, dst);
        rec.next_src = snode.first_out;
        rec.next_dst = dnode.first_in;
        let (db, txn) = self.parts()?;
        let id = db.mgr().insert(txn, TableTag::Rel, db.rels(), rec)?;
        db.accel().note_rel_label(id, label_code);
        if !encoded.is_empty() {
            let head = self.build_prop_chain(PropOwner::Rel(id), &encoded)?;
            let (db, txn) = self.parts()?;
            db.mgr()
                .update(txn, TableTag::Rel, db.rels(), id, |r| r.props = head)?;
        }
        let (db, txn) = self.parts()?;
        db.mgr().update(txn, TableTag::Node, db.nodes(), src, |n| {
            n.first_out = id
        })?;
        let (db, txn) = self.parts()?;
        db.mgr()
            .update(txn, TableTag::Node, db.nodes(), dst, |n| n.first_in = id)?;
        Ok(id)
    }

    /// Visit relationships of `node` in direction `dir`, optionally
    /// filtered by relationship label code. This is the storage-level
    /// traversal the `ForeachRelationship` operator compiles to: it chases
    /// 8-byte offsets, never persistent pointers (DD4/DG6).
    pub fn for_each_rel(
        &self,
        node: NodeId,
        dir: Dir,
        label: Option<u32>,
        mut f: impl FnMut(RelId, &RelRecord),
    ) -> Result<()> {
        let n = self.node(node)?.ok_or(GraphError::NodeNotFound(node))?;
        let mut cur = match dir {
            Dir::Out => n.first_out,
            Dir::In => n.first_in,
        };
        while cur != NIL {
            match self
                .db
                .mgr()
                .read(self.txn()?, TableTag::Rel, self.db.rels(), cur)?
            {
                Some(r) => {
                    if label.is_none_or(|l| r.label == l) {
                        f(cur, &r);
                    }
                    cur = match dir {
                        Dir::Out => r.next_src,
                        Dir::In => r.next_dst,
                    };
                }
                None => {
                    // Version invisible to our snapshot (newer insert or
                    // uncommitted); follow the raw link to older entries.
                    let raw = self.db.rels().get(cur);
                    cur = match dir {
                        Dir::Out => raw.next_src,
                        Dir::In => raw.next_dst,
                    };
                }
            }
        }
        Ok(())
    }

    /// Like [`for_each_rel`](Self::for_each_rel) but stops as soon as `f`
    /// returns true; returns whether any relationship matched. This is the
    /// streaming primitive behind `Connected` predicates — probing one
    /// edge must not materialize the whole adjacency list.
    pub fn any_rel(
        &self,
        node: NodeId,
        dir: Dir,
        label: Option<u32>,
        mut f: impl FnMut(RelId, &RelRecord) -> bool,
    ) -> Result<bool> {
        let n = self.node(node)?.ok_or(GraphError::NodeNotFound(node))?;
        let mut cur = match dir {
            Dir::Out => n.first_out,
            Dir::In => n.first_in,
        };
        while cur != NIL {
            match self
                .db
                .mgr()
                .read(self.txn()?, TableTag::Rel, self.db.rels(), cur)?
            {
                Some(r) => {
                    if label.is_none_or(|l| r.label == l) && f(cur, &r) {
                        return Ok(true);
                    }
                    cur = match dir {
                        Dir::Out => r.next_src,
                        Dir::In => r.next_dst,
                    };
                }
                None => {
                    let raw = self.db.rels().get(cur);
                    cur = match dir {
                        Dir::Out => raw.next_src,
                        Dir::In => raw.next_dst,
                    };
                }
            }
        }
        Ok(false)
    }

    /// Collect `(rel_id, record)` pairs of a node's relationships.
    pub fn rels_of(&self, node: NodeId, dir: Dir, label: Option<u32>) -> Result<Vec<(RelId, RelRecord)>> {
        let mut out = Vec::new();
        self.for_each_rel(node, dir, label, |id, r| out.push((id, *r)))?;
        Ok(out)
    }

    /// Number of relationships in a direction.
    pub fn degree(&self, node: NodeId, dir: Dir) -> Result<usize> {
        let mut n = 0;
        self.for_each_rel(node, dir, None, |_, _| n += 1)?;
        Ok(n)
    }

    /// Delete a relationship: unlink it from both adjacency lists, then
    /// tombstone the record.
    pub fn delete_rel(&mut self, id: RelId) -> Result<()> {
        let r = self.rel(id)?.ok_or(GraphError::RelNotFound(id))?;
        self.unlink(r.src, Dir::Out, id, r.next_src)?;
        self.unlink(r.dst, Dir::In, id, r.next_dst)?;
        let (db, txn) = self.parts()?;
        db.mgr().delete(txn, TableTag::Rel, db.rels(), id)?;
        self.deleted.push((TableTag::Rel, id));
        if r.props != NIL {
            self.mark_chain_obsolete(r.props)?;
        }
        Ok(())
    }

    fn unlink(&mut self, node: NodeId, dir: Dir, rel_id: RelId, successor: u64) -> Result<()> {
        let n = self.node(node)?.ok_or(GraphError::NodeNotFound(node))?;
        let head = match dir {
            Dir::Out => n.first_out,
            Dir::In => n.first_in,
        };
        if head == rel_id {
            let (db, txn) = self.parts()?;
            db.mgr()
                .update(txn, TableTag::Node, db.nodes(), node, |n| match dir {
                    Dir::Out => n.first_out = successor,
                    Dir::In => n.first_in = successor,
                })?;
            return Ok(());
        }
        // Walk the chain to find the predecessor.
        let mut cur = head;
        while cur != NIL {
            let r = self
                .rel(cur)?
                .map(|r| match dir {
                    Dir::Out => r.next_src,
                    Dir::In => r.next_dst,
                })
                .unwrap_or_else(|| {
                    let raw = self.db.rels().get(cur);
                    match dir {
                        Dir::Out => raw.next_src,
                        Dir::In => raw.next_dst,
                    }
                });
            if r == rel_id {
                let (db, txn) = self.parts()?;
                db.mgr()
                    .update(txn, TableTag::Rel, db.rels(), cur, |p| match dir {
                        Dir::Out => p.next_src = successor,
                        Dir::In => p.next_dst = successor,
                    })?;
                return Ok(());
            }
            cur = r;
        }
        Err(GraphError::RelNotFound(rel_id))
    }

    /// Delete a node that has no visible relationships.
    pub fn delete_node(&mut self, id: NodeId) -> Result<()> {
        let n = self.node(id)?.ok_or(GraphError::NodeNotFound(id))?;
        if self.degree(id, Dir::Out)? > 0 || self.degree(id, Dir::In)? > 0 {
            return Err(GraphError::NodeHasRelationships(id));
        }
        // Stage index removals for every indexed property.
        let props = self.props(PropOwner::Node(id))?;
        for (key, val) in &props {
            if let Some(code) = self.db.dict().code_of(key) {
                if let Some(pv) = val.to_pval_lookup(self.db.dict()) {
                    self.index_removes.push((n.label, code, pv.index_key(), id));
                }
            }
        }
        let (db, txn) = self.parts()?;
        db.mgr().delete(txn, TableTag::Node, db.nodes(), id)?;
        self.deleted.push((TableTag::Node, id));
        if n.props != NIL {
            self.mark_chain_obsolete(n.props)?;
        }
        Ok(())
    }

    /// Delete a node along with all of its relationships.
    pub fn detach_delete_node(&mut self, id: NodeId) -> Result<()> {
        loop {
            let out = self.rels_of(id, Dir::Out, None)?;
            let inc = self.rels_of(id, Dir::In, None)?;
            let Some((rid, _)) = out.into_iter().chain(inc).next() else {
                break;
            };
            self.delete_rel(rid)?;
        }
        self.delete_node(id)
    }

    // ------------------------------------------------------------------
    // Properties
    // ------------------------------------------------------------------

    fn encode_props(&self, props: &[(&str, Value)]) -> Result<Vec<(u32, PVal)>> {
        props
            .iter()
            .map(|(k, v)| {
                Ok((
                    self.db.intern(k)?,
                    v.to_pval(self.db.dict()).map_err(GraphError::Pmem)?,
                ))
            })
            .collect()
    }

    /// Build a property chain of cache-line-sized batches (DD3); the chain
    /// is written straight to PMem (it becomes reachable only through the
    /// still-locked owner version). Returns the head record id.
    fn build_prop_chain(&mut self, owner: PropOwner, props: &[(u32, PVal)]) -> Result<u64> {
        let owner_id = match owner {
            PropOwner::Node(id) => id,
            PropOwner::Rel(id) => id,
        };
        let mut head = NIL;
        // Build back-to-front so each record's `next` is final at insert.
        for batch in props.rchunks(PROP_SLOTS) {
            let mut rec = PropRecord::new(owner_id);
            rec.next = head;
            for (i, &(key, pv)) in batch.iter().enumerate() {
                let (tag, val) = pv.encode();
                rec.slots[i] = PropSlot {
                    key,
                    tag,
                    _pad: [0; 3],
                    val,
                };
            }
            let (db, txn) = self.parts()?;
            head = db.props().insert(&rec)?;
            txn.track_prop_insert(head);
        }
        Ok(head)
    }

    fn mark_chain_obsolete(&mut self, mut head: u64) -> Result<()> {
        let mut ids = Vec::new();
        while head != NIL {
            ids.push(head);
            head = self.db.props().get(head).next;
        }
        let txn = self.txn_mut()?;
        for id in ids {
            txn.track_prop_obsolete(id);
        }
        Ok(())
    }

    fn props_head(&self, owner: PropOwner) -> Result<u64> {
        Ok(match owner {
            PropOwner::Node(id) => {
                self.node(id)?.ok_or(GraphError::NodeNotFound(id))?.props
            }
            PropOwner::Rel(id) => self.rel(id)?.ok_or(GraphError::RelNotFound(id))?.props,
        })
    }

    /// Read one property.
    pub fn prop(&self, owner: PropOwner, key: &str) -> Result<Option<Value>> {
        let Some(key_code) = self.db.dict().code_of(key) else {
            return Ok(None);
        };
        let mut head = self.props_head(owner)?;
        while head != NIL {
            let rec = self.db.props().get(head);
            for slot in rec.slots {
                if slot.key == key_code {
                    return Ok(PVal::decode(slot.tag, slot.val)
                        .map(|p| Value::from_pval(p, self.db.dict())));
                }
            }
            head = rec.next;
        }
        Ok(None)
    }

    /// Read all properties of a node or relationship.
    pub fn props(&self, owner: PropOwner) -> Result<Vec<(String, Value)>> {
        let mut out = Vec::new();
        let mut head = self.props_head(owner)?;
        while head != NIL {
            let rec = self.db.props().get(head);
            for slot in rec.slots {
                if slot.key != 0 {
                    if let Some(p) = PVal::decode(slot.tag, slot.val) {
                        let key = self.db.dict().string_of(slot.key).unwrap_or_default();
                        out.push((key, Value::from_pval(p, self.db.dict())));
                    }
                }
            }
            head = rec.next;
        }
        Ok(out)
    }

    /// Set (insert or replace) one property. Copies the property chain —
    /// chains are immutable once committed so older snapshots keep reading
    /// the previous version's chain — and versions the owner record.
    pub fn set_prop(&mut self, owner: PropOwner, key: &str, value: Value) -> Result<()> {
        let key_code = self.db.intern(key)?;
        let pv = value.to_pval(self.db.dict()).map_err(GraphError::Pmem)?;
        // Current properties (as codes) with the key replaced/appended.
        let mut current: Vec<(u32, PVal)> = Vec::new();
        let old_head = self.props_head(owner)?;
        let mut head = old_head;
        while head != NIL {
            let rec = self.db.props().get(head);
            for slot in rec.slots {
                if slot.key != 0 && slot.key != key_code {
                    if let Some(p) = PVal::decode(slot.tag, slot.val) {
                        current.push((slot.key, p));
                    }
                }
            }
            head = rec.next;
        }
        // Index maintenance for nodes.
        if let PropOwner::Node(id) = owner {
            let n = self.node(id)?.ok_or(GraphError::NodeNotFound(id))?;
            if let Some(old) = self.db.committed_prop(old_head, key_code) {
                self.index_removes.push((n.label, key_code, old.index_key(), id));
            }
            self.db.accel().note_node_prop(key_code, id, pv.index_key());
            self.index_adds.push((n.label, key_code, pv.index_key(), id));
        }
        current.push((key_code, pv));
        let new_head = self.build_prop_chain(owner, &current)?;
        if old_head != NIL {
            self.mark_chain_obsolete(old_head)?;
        }
        let (db, txn) = self.parts()?;
        match owner {
            PropOwner::Node(id) => {
                db.mgr().update(txn, TableTag::Node, db.nodes(), id, |n| {
                    n.props = new_head
                })?;
            }
            PropOwner::Rel(id) => {
                db.mgr().update(txn, TableTag::Rel, db.rels(), id, |r| {
                    r.props = new_head
                })?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Dictionary-coded operations (used by the query layers, which work on
    // codes rather than strings)
    // ------------------------------------------------------------------

    /// Read one property as its storage-level [`PVal`] (no string
    /// resolution) by dictionary-coded key.
    pub fn prop_pval(&self, owner: PropOwner, key_code: u32) -> Result<Option<PVal>> {
        let mut head = self.props_head(owner)?;
        while head != NIL {
            let rec = self.db.props().get(head);
            for slot in rec.slots {
                if slot.key == key_code {
                    return Ok(PVal::decode(slot.tag, slot.val));
                }
            }
            head = rec.next;
        }
        Ok(None)
    }

    /// Create a node from dictionary codes (plan-level path).
    pub fn create_node_coded(&mut self, label: u32, props: &[(u32, PVal)]) -> Result<NodeId> {
        let (db, txn) = self.parts()?;
        let id = db
            .mgr()
            .insert(txn, TableTag::Node, db.nodes(), NodeRecord::new(label))?;
        db.accel().note_node_label(id, label);
        if !props.is_empty() {
            let head = self.build_prop_chain(PropOwner::Node(id), props)?;
            let (db, txn) = self.parts()?;
            db.mgr()
                .update(txn, TableTag::Node, db.nodes(), id, |n| n.props = head)?;
        }
        for &(key_code, pv) in props {
            self.db.accel().note_node_prop(key_code, id, pv.index_key());
            self.index_adds.push((label, key_code, pv.index_key(), id));
        }
        Ok(id)
    }

    /// Create a relationship from dictionary codes (plan-level path).
    pub fn create_rel_coded(
        &mut self,
        src: NodeId,
        label: u32,
        dst: NodeId,
        props: &[(u32, PVal)],
    ) -> Result<RelId> {
        let snode = self.node(src)?.ok_or(GraphError::NodeNotFound(src))?;
        let dnode = self.node(dst)?.ok_or(GraphError::NodeNotFound(dst))?;
        let mut rec = RelRecord::new(label, src, dst);
        rec.next_src = snode.first_out;
        rec.next_dst = dnode.first_in;
        let (db, txn) = self.parts()?;
        let id = db.mgr().insert(txn, TableTag::Rel, db.rels(), rec)?;
        db.accel().note_rel_label(id, label);
        if !props.is_empty() {
            let head = self.build_prop_chain(PropOwner::Rel(id), props)?;
            let (db, txn) = self.parts()?;
            db.mgr()
                .update(txn, TableTag::Rel, db.rels(), id, |r| r.props = head)?;
        }
        let (db, txn) = self.parts()?;
        db.mgr().update(txn, TableTag::Node, db.nodes(), src, |n| {
            n.first_out = id
        })?;
        let (db, txn) = self.parts()?;
        db.mgr()
            .update(txn, TableTag::Node, db.nodes(), dst, |n| n.first_in = id)?;
        Ok(id)
    }

    /// Create the source half of a cross-shard relationship: the record
    /// lives in this shard, linked into `src`'s out-list only; `dst` is a
    /// router-level remote reference (global id with the REMOTE tag bit),
    /// never a local record id. The in-half lives in the destination
    /// shard (see [`crate::shard::ShardedTxn`]).
    pub(crate) fn create_rel_out_half(
        &mut self,
        src: NodeId,
        label: u32,
        remote_dst: u64,
        props: &[(u32, PVal)],
    ) -> Result<RelId> {
        let snode = self.node(src)?.ok_or(GraphError::NodeNotFound(src))?;
        let mut rec = RelRecord::new(label, src, remote_dst);
        rec.next_src = snode.first_out;
        let (db, txn) = self.parts()?;
        let id = db.mgr().insert(txn, TableTag::Rel, db.rels(), rec)?;
        db.accel().note_rel_label(id, label);
        if !props.is_empty() {
            let head = self.build_prop_chain(PropOwner::Rel(id), props)?;
            let (db, txn) = self.parts()?;
            db.mgr()
                .update(txn, TableTag::Rel, db.rels(), id, |r| r.props = head)?;
        }
        let (db, txn) = self.parts()?;
        db.mgr().update(txn, TableTag::Node, db.nodes(), src, |n| {
            n.first_out = id
        })?;
        Ok(id)
    }

    /// Create the destination half (mirror) of a cross-shard relationship:
    /// linked into `dst`'s in-list only; `src` carries the REMOTE tag bit.
    pub(crate) fn create_rel_in_half(
        &mut self,
        remote_src: u64,
        label: u32,
        dst: NodeId,
    ) -> Result<RelId> {
        let dnode = self.node(dst)?.ok_or(GraphError::NodeNotFound(dst))?;
        let mut rec = RelRecord::new(label, remote_src, dst);
        rec.next_dst = dnode.first_in;
        let (db, txn) = self.parts()?;
        let id = db.mgr().insert(txn, TableTag::Rel, db.rels(), rec)?;
        db.accel().note_rel_label(id, label);
        let (db, txn) = self.parts()?;
        db.mgr()
            .update(txn, TableTag::Node, db.nodes(), dst, |n| n.first_in = id)?;
        Ok(id)
    }

    /// Set one property by code (plan-level path).
    pub fn set_prop_coded(&mut self, owner: PropOwner, key_code: u32, pv: PVal) -> Result<()> {
        let mut current: Vec<(u32, PVal)> = Vec::new();
        let old_head = self.props_head(owner)?;
        let mut head = old_head;
        while head != NIL {
            let rec = self.db.props().get(head);
            for slot in rec.slots {
                if slot.key != 0 && slot.key != key_code {
                    if let Some(p) = PVal::decode(slot.tag, slot.val) {
                        current.push((slot.key, p));
                    }
                }
            }
            head = rec.next;
        }
        if let PropOwner::Node(id) = owner {
            let n = self.node(id)?.ok_or(GraphError::NodeNotFound(id))?;
            if let Some(old) = self.db.committed_prop(old_head, key_code) {
                self.index_removes.push((n.label, key_code, old.index_key(), id));
            }
            self.db.accel().note_node_prop(key_code, id, pv.index_key());
            self.index_adds.push((n.label, key_code, pv.index_key(), id));
        }
        current.push((key_code, pv));
        let new_head = self.build_prop_chain(owner, &current)?;
        if old_head != NIL {
            self.mark_chain_obsolete(old_head)?;
        }
        let (db, txn) = self.parts()?;
        match owner {
            PropOwner::Node(id) => {
                db.mgr().update(txn, TableTag::Node, db.nodes(), id, |n| {
                    n.props = new_head
                })?;
            }
            PropOwner::Rel(id) => {
                db.mgr().update(txn, TableTag::Rel, db.rels(), id, |r| {
                    r.props = new_head
                })?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Index lookups
    // ------------------------------------------------------------------

    /// Look up nodes via a secondary index; falls back to a full label scan
    /// when no index exists. Results are verified against the snapshot
    /// (indexes are secondary and may briefly run ahead/behind).
    pub fn lookup_nodes(&self, label: &str, key: &str, value: &Value) -> Result<Vec<NodeId>> {
        let Some(label_code) = self.db.dict().code_of(label) else {
            return Ok(Vec::new());
        };
        let Some(key_code) = self.db.dict().code_of(key) else {
            return Ok(Vec::new());
        };
        let Some(pv) = value.to_pval_lookup(self.db.dict()) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        if let Some(tree) = self.db.index_for(label_code, key_code) {
            for id in tree.lookup(pv.index_key()) {
                if let Some(n) = self.node(id)? {
                    if n.label == label_code
                        && self.db.committed_prop(n.props, key_code) == Some(pv)
                    {
                        out.push(id);
                    }
                }
            }
        } else {
            // Scan fallback (what the paper's non-indexed PMem-s/p numbers do).
            let mut hits = Vec::new();
            self.db.nodes().for_each_live(|id, _| hits.push(id));
            for id in hits {
                if let Some(n) = self.node(id)? {
                    if n.label == label_code
                        && self.db.committed_prop(n.props, key_code) == Some(pv)
                    {
                        out.push(id);
                    }
                }
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Commit / abort
    // ------------------------------------------------------------------

    /// Commit the transaction. On success the staged index updates are
    /// applied and reclaimable slots are registered.
    pub fn commit(mut self) -> Result<()> {
        let txn = self.inner.take().ok_or(GraphError::TxnFinished)?;
        let commit_ts = txn.id;
        self.db
            .mgr()
            .commit(txn, self.db.nodes(), self.db.rels(), self.db.props())?;
        self.post_commit(commit_ts);
        Ok(())
    }

    /// First half of [`commit`](Self::commit) for the cross-shard
    /// two-phase epoch commit: runs the MVTO prepare (history moves,
    /// staged-version extraction, persist-batch build) but does not
    /// persist anything. Returns `None` for a read-only transaction,
    /// which is finished immediately. On `Some`, the caller must make the
    /// pending batch durable (via `pmem::commit_epoch` together with the
    /// other shards' batches) and then call
    /// [`finish_commit`](Self::finish_commit) on this same handle.
    pub(crate) fn prepare_commit(&mut self) -> Result<Option<gtxn::PendingCommit>> {
        let txn = self.inner.take().ok_or(GraphError::TxnFinished)?;
        Ok(self
            .db
            .mgr()
            .prepare_commit(txn, self.db.nodes(), self.db.rels(), self.db.props())?)
    }

    /// Second half of [`commit`](Self::commit): run after the pending
    /// batch has been persisted by the cross-shard epoch commit.
    pub(crate) fn finish_commit(&mut self, pending: gtxn::PendingCommit) {
        let commit_ts = pending.txn_id();
        self.db.mgr().finish_commit(pending, self.db.props());
        self.post_commit(commit_ts);
    }

    /// Post-persist bookkeeping shared by the single-shard and cross-shard
    /// commit paths.
    fn post_commit(&mut self, commit_ts: u64) {
        // Replay staged property writes into the zone maps: the eager notes
        // at write time no-op for keys that were not yet registered, so
        // this covers keys indexed while the transaction was in flight.
        for &(_, key, ikey, id) in &self.index_adds {
            self.db.accel().note_node_prop(key, id, ikey);
        }
        self.db
            .apply_index_updates(&self.index_adds, &self.index_removes);
        for &(tag, id) in &self.deleted {
            self.db.defer_slot_free(commit_ts, tag, id);
        }
        self.db.reclaim_deleted();
    }

    /// Abort the transaction explicitly (drop does the same).
    pub fn abort(mut self) {
        if let Some(txn) = self.inner.take() {
            self.db
                .mgr()
                .abort(txn, self.db.nodes(), self.db.rels(), self.db.props());
        }
    }
}

impl Drop for GraphTxn<'_> {
    fn drop(&mut self) {
        if let Some(txn) = self.inner.take() {
            if txn.is_read_only() {
                // A dropped read-only transaction simply finishes: there is
                // nothing to roll back and counting it as an abort would
                // pollute the conflict statistics.
                let _ = self
                    .db
                    .mgr()
                    .commit(txn, self.db.nodes(), self.db.rels(), self.db.props());
            } else {
                self.db
                    .mgr()
                    .abort(txn, self.db.nodes(), self.db.rels(), self.db.props());
            }
        }
    }
}
