//! API-level property values.
//!
//! [`Value`] is what applications read and write; the storage layer keeps
//! the tagged 8-byte encoding of [`gstore::PVal`], with strings replaced by
//! dictionary codes (DD3). Conversion happens at the engine boundary.

use gstore::{Dictionary, PVal};

/// A property value as seen by the application.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Double(f64),
    Bool(bool),
    Str(String),
    /// Milliseconds since the Unix epoch (LDBC `creationDate` etc.).
    Date(i64),
    Null,
}

impl Value {
    /// Encode for storage, interning strings through the dictionary.
    pub(crate) fn to_pval(&self, dict: &Dictionary) -> pmem::Result<PVal> {
        Ok(match self {
            Value::Int(v) => PVal::Int(*v),
            Value::Double(v) => PVal::Double(*v),
            Value::Bool(v) => PVal::Bool(*v),
            Value::Str(s) => PVal::Str(dict.get_or_insert(s)?),
            Value::Date(v) => PVal::Date(*v),
            Value::Null => PVal::Null,
        })
    }

    /// Encode for *lookup only*: an unknown string yields `None` (the value
    /// cannot match anything) instead of polluting the dictionary.
    pub(crate) fn to_pval_lookup(&self, dict: &Dictionary) -> Option<PVal> {
        Some(match self {
            Value::Int(v) => PVal::Int(*v),
            Value::Double(v) => PVal::Double(*v),
            Value::Bool(v) => PVal::Bool(*v),
            Value::Str(s) => PVal::Str(dict.code_of(s)?),
            Value::Date(v) => PVal::Date(*v),
            Value::Null => PVal::Null,
        })
    }

    /// Decode from storage, resolving dictionary codes back to strings.
    pub(crate) fn from_pval(p: PVal, dict: &Dictionary) -> Value {
        match p {
            PVal::Int(v) => Value::Int(v),
            PVal::Double(v) => Value::Double(v),
            PVal::Bool(v) => Value::Bool(v),
            PVal::Str(code) => Value::Str(dict.string_of(code).unwrap_or_default()),
            PVal::Date(v) => Value::Date(v),
            PVal::Null => Value::Null,
        }
    }

    /// Convenience accessor for integer values.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor for string values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience accessor for date values.
    pub fn as_date(&self) -> Option<i64> {
        match self {
            Value::Date(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn roundtrip_through_dictionary() {
        let pool = Arc::new(pmem::Pool::volatile(16 << 20).unwrap());
        let dict = Dictionary::create(pool).unwrap();
        for v in [
            Value::Int(5),
            Value::Double(2.5),
            Value::Bool(true),
            Value::Str("hello".into()),
            Value::Date(123456),
            Value::Null,
        ] {
            let p = v.to_pval(&dict).unwrap();
            assert_eq!(Value::from_pval(p, &dict), v);
        }
    }

    #[test]
    fn lookup_encoding_does_not_intern() {
        let pool = Arc::new(pmem::Pool::volatile(16 << 20).unwrap());
        let dict = Dictionary::create(pool).unwrap();
        assert!(Value::Str("ghost".into()).to_pval_lookup(&dict).is_none());
        assert!(dict.is_empty());
        dict.get_or_insert("real").unwrap();
        assert!(Value::Str("real".into()).to_pval_lookup(&dict).is_some());
    }
}
