//! DRAM read-acceleration metadata: per-chunk zone maps over the
//! persistent tables.
//!
//! The paper keeps every translation structure volatile because PMem reads
//! cost ~3× DRAM (C1); this module extends that principle to scans. For
//! each 64-record chunk it tracks, purely in DRAM:
//!
//! * a **label bitset** (bit `label & 63`) of every label ever stored in
//!   the chunk, for nodes and relationships;
//! * per registered property key, the **min/max index key** ever stored
//!   for a node in the chunk (a zone map).
//!
//! Scans with sargable leading conjuncts consult these maps to skip whole
//! chunks without touching PMem. All metadata is *widen-only*: creates and
//! property writes widen zones eagerly (before commit), commits replay the
//! staged index updates (covering keys registered while the transaction
//! was in flight), and aborts leave zones stale-wide — which can only cost
//! a false "may match", never a wrong prune. Chunks with no entry have
//! never stored a matching record since the last rebuild and are prunable.
//!
//! Rebuilds run at [`GraphDb::open`](crate::GraphDb::open) and at index
//! creation from the latest committed versions (the same source
//! `fill_index` trusts), so the maps cover everything committed before the
//! process started tracking.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use gstore::chunked::CHUNK_CAP;

/// The chunk a record id lives in.
#[inline]
fn chunk_of(id: u64) -> usize {
    id as usize / CHUNK_CAP
}

#[inline]
fn label_bit(label: u32) -> u64 {
    1u64 << (label & 63)
}

/// Per-chunk label bitsets for one table (grow-on-demand).
#[derive(Default)]
struct LabelZones {
    chunks: RwLock<Vec<Arc<AtomicU64>>>,
}

impl LabelZones {
    fn note(&self, chunk: usize, label: u32) {
        {
            let g = self.chunks.read();
            if let Some(c) = g.get(chunk) {
                c.fetch_or(label_bit(label), Ordering::Relaxed);
                return;
            }
        }
        let mut g = self.chunks.write();
        while g.len() <= chunk {
            g.push(Arc::new(AtomicU64::new(0)));
        }
        g[chunk].fetch_or(label_bit(label), Ordering::Relaxed);
    }

    /// False only when no record with this label can live in the chunk.
    fn may_match(&self, chunk: usize, label: u32) -> bool {
        self.chunks
            .read()
            .get(chunk)
            .is_some_and(|c| c.load(Ordering::Relaxed) & label_bit(label) != 0)
    }

    fn clear(&self) {
        self.chunks.write().clear();
    }
}

/// Per-chunk min/max index keys for one property key. The empty sentinel
/// is `min = u64::MAX, max = 0` (never stored ⇒ prunable for any range).
#[derive(Default)]
struct Zone {
    min: AtomicU64,
    max: AtomicU64,
}

impl Zone {
    fn new_empty() -> Zone {
        Zone {
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

#[derive(Default)]
struct PropZones {
    chunks: RwLock<Vec<Arc<Zone>>>,
}

impl PropZones {
    fn widen(&self, chunk: usize, ikey: u64) {
        let zone = {
            let g = self.chunks.read();
            g.get(chunk).cloned()
        };
        let zone = match zone {
            Some(z) => z,
            None => {
                let mut g = self.chunks.write();
                while g.len() <= chunk {
                    g.push(Arc::new(Zone::new_empty()));
                }
                g[chunk].clone()
            }
        };
        zone.min.fetch_min(ikey, Ordering::Relaxed);
        zone.max.fetch_max(ikey, Ordering::Relaxed);
    }

    /// False only when no node in the chunk can carry the key inside
    /// `[lo, hi]` (zone disjoint, or key never stored in the chunk).
    fn may_overlap(&self, chunk: usize, lo: u64, hi: u64) -> bool {
        self.chunks.read().get(chunk).is_some_and(|z| {
            let min = z.min.load(Ordering::Relaxed);
            let max = z.max.load(Ordering::Relaxed);
            min <= max && min <= hi && max >= lo
        })
    }
}

/// The read-acceleration layer of a [`GraphDb`](crate::GraphDb): label
/// bitsets for both tables plus node-property zone maps for every
/// registered (≈ indexed) key. Maintenance is always on; `enabled` only
/// gates whether scans *use* the maps, so the toggle is safe at runtime.
#[derive(Default)]
pub struct ReadAccel {
    enabled: AtomicBool,
    node_labels: LabelZones,
    rel_labels: LabelZones,
    node_props: RwLock<HashMap<u32, Arc<PropZones>>>,
}

impl ReadAccel {
    /// Gate chunk pruning on or off (fast-path claiming is gated
    /// separately by the transaction manager's flag; `GraphDb` flips both
    /// together).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// True if scans may consult the zone maps.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Start zone-tracking a property key, installing zones prefilled
    /// from `entries` (`(node_id, index_key)` pairs from the latest
    /// committed data). Prefill happens under the registry's write lock,
    /// so a concurrent scan can never observe the key registered with
    /// incomplete zones. Returns false if the key was already registered.
    pub fn register_key(&self, key: u32, entries: &[(u64, u64)]) -> bool {
        let mut g = self.node_props.write();
        if g.contains_key(&key) {
            return false;
        }
        let z = Arc::new(PropZones::default());
        for &(id, ikey) in entries {
            z.widen(chunk_of(id), ikey);
        }
        g.insert(key, z);
        true
    }

    /// True if the key has zone maps.
    pub fn key_registered(&self, key: u32) -> bool {
        self.node_props.read().contains_key(&key)
    }

    /// Record that a node with `label` lives (or lived) in `id`'s chunk.
    pub fn note_node_label(&self, id: u64, label: u32) {
        self.node_labels.note(chunk_of(id), label);
    }

    /// Record that a relationship with `label` lives in `id`'s chunk.
    pub fn note_rel_label(&self, id: u64, label: u32) {
        self.rel_labels.note(chunk_of(id), label);
    }

    /// Widen the zone of `key` in node `id`'s chunk to cover `ikey`.
    /// No-op for unregistered keys.
    pub fn note_node_prop(&self, key: u32, id: u64, ikey: u64) {
        let zones = self.node_props.read().get(&key).cloned();
        if let Some(z) = zones {
            z.widen(chunk_of(id), ikey);
        }
    }

    /// May node chunk `chunk` contain a node with `label`?
    pub fn node_chunk_may_match_label(&self, chunk: usize, label: u32) -> bool {
        self.node_labels.may_match(chunk, label)
    }

    /// May relationship chunk `chunk` contain a rel with `label`?
    pub fn rel_chunk_may_match_label(&self, chunk: usize, label: u32) -> bool {
        self.rel_labels.may_match(chunk, label)
    }

    /// May node chunk `chunk` contain `key` within `[lo, hi]`? Returns
    /// true (cannot prune) for unregistered keys.
    pub fn node_chunk_may_overlap(&self, key: u32, chunk: usize, lo: u64, hi: u64) -> bool {
        match self.node_props.read().get(&key) {
            Some(z) => z.may_overlap(chunk, lo, hi),
            None => true,
        }
    }

    /// Drop label bitsets (rebuild follows; registered keys keep their
    /// zones, which are rebuilt per key).
    pub(crate) fn clear_labels(&self) {
        self.node_labels.clear();
        self.rel_labels.clear();
    }
}
