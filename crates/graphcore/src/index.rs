//! Secondary-index definitions.

use std::sync::Arc;

use gstore::BPlusTree;

/// A registered secondary index over `(:label {key})` node properties.
/// The property values (order-preservingly encoded to u64) are the tree
/// keys; node ids are the values (§4.2).
pub struct IndexDef {
    /// Dictionary code of the node label.
    pub label: u32,
    /// Dictionary code of the property key.
    pub key: u32,
    /// The tree itself (volatile / persistent / hybrid).
    pub tree: Arc<BPlusTree>,
}
