//! Snapshot graph analytics (the paper's future work, §8: "we plan to
//! investigate the behavior of complex graph analytics").
//!
//! Analytics run over an MVCC snapshot: a [`GraphView`] materialises the
//! adjacency visible to one transaction into a compact CSR in DRAM — the
//! same "read-optimised copy, transactional base" split the paper cites
//! from Sage (its reference 9) — and the algorithms (BFS, PageRank, connected
//! components, triangle counting) run over that view at DRAM speed while
//! OLTP continues against the PMem tables.

use std::collections::HashMap;

use crate::txn::{Dir, GraphTxn};
use crate::{NodeId, Result};

/// A compressed-sparse-row snapshot of the graph (or of one relationship
/// type) as visible to the transaction that built it.
pub struct GraphView {
    /// Dense index → node id.
    pub nodes: Vec<NodeId>,
    /// Node id → dense index.
    pub index: HashMap<NodeId, u32>,
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    in_offsets: Vec<u32>,
    in_targets: Vec<u32>,
}

impl GraphView {
    /// Materialise the snapshot visible to `txn`, optionally restricted to
    /// one node label and/or one relationship label.
    pub fn build(
        txn: &GraphTxn<'_>,
        node_label: Option<u32>,
        rel_label: Option<u32>,
    ) -> Result<GraphView> {
        let db = txn.db();
        // Collect visible nodes.
        let mut nodes = Vec::new();
        let chunks = db.nodes().chunk_count();
        for ci in 0..chunks {
            let mut ids = Vec::new();
            db.nodes().for_each_live_id(ci, &mut |id| ids.push(id));
            for id in ids {
                if let Some(rec) = txn.node(id)? {
                    if node_label.is_none_or(|l| rec.label == l) {
                        nodes.push(id);
                    }
                }
            }
        }
        let index: HashMap<NodeId, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();

        // Degree pass, then fill (classic two-pass CSR build).
        let n = nodes.len();
        let mut out_deg = vec![0u32; n];
        let mut in_deg = vec![0u32; n];
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (i, &id) in nodes.iter().enumerate() {
            txn.for_each_rel(id, Dir::Out, rel_label, |_, rel| {
                if let Some(&j) = index.get(&rel.dst) {
                    edges.push((i as u32, j));
                    out_deg[i] += 1;
                    in_deg[j as usize] += 1;
                }
            })?;
        }
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for i in 0..n {
            out_offsets[i + 1] = out_offsets[i] + out_deg[i];
            in_offsets[i + 1] = in_offsets[i] + in_deg[i];
        }
        let mut out_targets = vec![0u32; edges.len()];
        let mut in_targets = vec![0u32; edges.len()];
        let mut out_cur = out_offsets.clone();
        let mut in_cur = in_offsets.clone();
        for &(s, d) in &edges {
            out_targets[out_cur[s as usize] as usize] = d;
            out_cur[s as usize] += 1;
            in_targets[in_cur[d as usize] as usize] = s;
            in_cur[d as usize] += 1;
        }
        Ok(GraphView {
            nodes,
            index,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        })
    }

    /// Number of nodes in the view.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (directed) edges in the view.
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Outgoing neighbours (dense indexes) of dense index `i`.
    pub fn out(&self, i: u32) -> &[u32] {
        let (a, b) = (
            self.out_offsets[i as usize] as usize,
            self.out_offsets[i as usize + 1] as usize,
        );
        &self.out_targets[a..b]
    }

    /// Incoming neighbours (dense indexes) of dense index `i`.
    pub fn inc(&self, i: u32) -> &[u32] {
        let (a, b) = (
            self.in_offsets[i as usize] as usize,
            self.in_offsets[i as usize + 1] as usize,
        );
        &self.in_targets[a..b]
    }

    // ------------------------------------------------------------------
    // Algorithms
    // ------------------------------------------------------------------

    /// Breadth-first search from `start` (node id) along outgoing edges.
    /// Returns depth per reached node id.
    pub fn bfs(&self, start: NodeId) -> HashMap<NodeId, u32> {
        let mut depth = HashMap::new();
        let Some(&s) = self.index.get(&start) else {
            return depth;
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut frontier = vec![s];
        seen[s as usize] = true;
        depth.insert(start, 0);
        let mut d = 0u32;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.out(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        depth.insert(self.nodes[v as usize], d);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        depth
    }

    /// PageRank with uniform teleport; `iters` synchronous iterations.
    /// Returns scores aligned with [`GraphView::nodes`].
    pub fn pagerank(&self, iters: usize, damping: f64) -> Vec<f64> {
        let n = self.nodes.len();
        if n == 0 {
            return Vec::new();
        }
        let mut rank = vec![1.0 / n as f64; n];
        let mut next = vec![0.0f64; n];
        for _ in 0..iters {
            let mut dangling = 0.0;
            next.iter_mut().for_each(|x| *x = 0.0);
            for (u, r) in rank.iter().enumerate() {
                let outs = self.out(u as u32);
                if outs.is_empty() {
                    dangling += r;
                } else {
                    let share = r / outs.len() as f64;
                    for &v in outs {
                        next[v as usize] += share;
                    }
                }
            }
            let teleport = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
            for x in next.iter_mut() {
                *x = teleport + damping * *x;
            }
            std::mem::swap(&mut rank, &mut next);
        }
        rank
    }

    /// Pull-based PageRank: each node gathers `rank[u]/outdeg[u]` over its
    /// in-neighbours in ascending dense-index order, with **no dangling
    /// redistribution** — `rank_next[v] = (1-d)/n + d·Σ`. The fixed
    /// per-node gather order makes the float result exactly reproducible,
    /// which is what lets the `ganalytics` CSR kernels be checked for
    /// bit-identical output against this interpreted reference. (The
    /// push-based [`GraphView::pagerank`] stays as the classic formulation
    /// with dangling mass; the two intentionally differ.)
    pub fn pagerank_pull(&self, iters: usize, damping: f64) -> Vec<f64> {
        let n = self.nodes.len();
        if n == 0 {
            return Vec::new();
        }
        let mut rank = vec![1.0 / n as f64; n];
        let mut next = vec![0.0f64; n];
        let base = (1.0 - damping) / n as f64;
        for _ in 0..iters {
            for v in 0..n as u32 {
                let mut sum = 0.0f64;
                for &u in self.inc(v) {
                    sum += rank[u as usize] / self.out(u).len() as f64;
                }
                next[v as usize] = base + damping * sum;
            }
            std::mem::swap(&mut rank, &mut next);
        }
        rank
    }

    /// Weakly connected components (union over both edge directions).
    /// Returns a representative dense index per node, aligned with
    /// [`GraphView::nodes`].
    pub fn connected_components(&self) -> Vec<u32> {
        let n = self.nodes.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for u in 0..n as u32 {
            for &v in self.out(u) {
                let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
                if ru != rv {
                    parent[ru.max(rv) as usize] = ru.min(rv);
                }
            }
        }
        (0..n as u32).map(|u| find(&mut parent, u)).collect()
    }

    /// Triangle count treating edges as undirected (each triangle counted
    /// once).
    pub fn triangles(&self) -> u64 {
        let n = self.nodes.len();
        // Undirected neighbour sets, deduplicated, ordered by dense index.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for u in 0..n as u32 {
            for &v in self.out(u) {
                if u != v {
                    adj[u as usize].push(v);
                    adj[v as usize].push(u);
                }
            }
        }
        for l in adj.iter_mut() {
            l.sort_unstable();
            l.dedup();
        }
        let mut count = 0u64;
        for u in 0..n as u32 {
            for &v in &adj[u as usize] {
                if v <= u {
                    continue;
                }
                // Intersect the higher-index parts of both adjacency lists.
                let (mut i, mut j) = (0, 0);
                let (a, b) = (&adj[u as usize], &adj[v as usize]);
                while i < a.len() && j < b.len() {
                    use std::cmp::Ordering::*;
                    match a[i].cmp(&b[j]) {
                        Less => i += 1,
                        Greater => j += 1,
                        Equal => {
                            if a[i] > v {
                                count += 1;
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        count
    }
}
