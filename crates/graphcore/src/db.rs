//! [`GraphDb`]: the engine object owning pool, tables, dictionary,
//! transaction manager and index directory.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use pmem::{DeviceProfile, Pool};

use gstore::{
    BPlusTree, ChunkedTable, Dictionary, IndexKind, NodeRecord, PVal, PropRecord, RecId,
    RelRecord,
};
use gtxn::{TableTag, TxnManager};

use crate::accel::ReadAccel;
use crate::error::GraphError;
use crate::index::IndexDef;
use crate::txn::GraphTxn;
use crate::{NodeId, Result};

/// Persistent engine root, referenced by the pool root pointer.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct GraphRoot {
    pub node_root: u64,
    pub rel_root: u64,
    pub prop_root: u64,
    pub dict_root: u64,
    pub ts_slot: u64,
    pub index_dir: u64,
    pub index_cap: u64,
    pub index_count: u64,
}

pmem::impl_pod!(GraphRoot);

const INDEX_DIR_CAP: u64 = 64;
/// Index directory entry: `{label u32, key u32, kind u64, btree_root u64, _pad u64}`.
const INDEX_ENTRY: u64 = 32;
const R_INDEX_COUNT: u64 = std::mem::offset_of!(GraphRoot, index_count) as u64;

/// Configuration for creating a database.
pub struct DbOptions {
    path: Option<PathBuf>,
    size: usize,
    profile: DeviceProfile,
    log_cap: u64,
    crash_tracking: bool,
}

impl DbOptions {
    /// A volatile, DRAM-only database (the paper's DRAM baseline).
    pub fn dram(size: usize) -> DbOptions {
        DbOptions {
            path: None,
            size,
            profile: DeviceProfile::dram(),
            log_cap: 1 << 20,
            crash_tracking: false,
        }
    }

    /// A persistent database on an emulated PMem device.
    pub fn pmem(path: impl AsRef<Path>, size: usize) -> DbOptions {
        DbOptions {
            path: Some(path.as_ref().to_path_buf()),
            size,
            profile: DeviceProfile::pmem(),
            log_cap: 1 << 20,
            crash_tracking: false,
        }
    }

    /// Override the injected-latency profile (e.g. zero latencies to
    /// isolate algorithmic costs).
    pub fn profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Enable cache-line crash tracking (for crash-recovery tests).
    pub fn crash_tracking(mut self, on: bool) -> Self {
        self.crash_tracking = on;
        self
    }

    /// Undo-log capacity in bytes.
    pub fn log_cap(mut self, cap: u64) -> Self {
        self.log_cap = cap;
        self
    }
}

/// The transactional property-graph database.
///
/// ```
/// use graphcore::{DbOptions, GraphDb, Value, PropOwner, Dir};
///
/// let db = GraphDb::create(DbOptions::dram(64 << 20))?;
/// let mut tx = db.begin();
/// let ada = tx.create_node("Person", &[("name", Value::from("Ada"))])?;
/// let bob = tx.create_node("Person", &[("name", Value::from("Bob"))])?;
/// tx.create_rel(ada, "KNOWS", bob, &[("since", Value::Int(2021))])?;
/// tx.commit()?;
///
/// let tx = db.begin();
/// assert_eq!(tx.degree(ada, Dir::Out)?, 1);
/// assert_eq!(
///     tx.prop(PropOwner::Node(bob), "name")?,
///     Some(Value::Str("Bob".into()))
/// );
/// # Ok::<(), graphcore::GraphError>(())
/// ```
pub struct GraphDb {
    pool: Arc<Pool>,
    nodes: ChunkedTable<NodeRecord>,
    rels: ChunkedTable<RelRecord>,
    props: ChunkedTable<PropRecord>,
    dict: Dictionary,
    mgr: TxnManager,
    indexes: RwLock<Vec<IndexDef>>,
    accel: ReadAccel,
    root_off: u64,
    /// Slots of deleted records awaiting reclamation once no snapshot can
    /// reach them (§5.3: bitmap-free, never deallocate).
    deferred_slots: Mutex<Vec<(u64, TableTag, RecId)>>,
}

/// Default for the read-acceleration toggle (`PMEMGRAPH_READ_ACCEL`,
/// registered in `gconfig::KNOBS`).
fn read_accel_env() -> bool {
    gconfig::read_accel()
}

impl GraphDb {
    /// Create a fresh database.
    pub fn create(opts: DbOptions) -> Result<GraphDb> {
        let pool = match &opts.path {
            Some(p) => {
                let pool = Pool::create_with_log(p, opts.size, opts.profile, opts.log_cap)?;
                if opts.crash_tracking {
                    pool.with_crash_tracking()
                } else {
                    pool
                }
            }
            None => {
                let pool = Pool::volatile(opts.size)?;
                if opts.crash_tracking {
                    pool.with_crash_tracking()
                } else {
                    pool
                }
            }
        };
        let pool = Arc::new(pool);
        let nodes = ChunkedTable::create(pool.clone())?;
        let rels = ChunkedTable::create(pool.clone())?;
        let props = ChunkedTable::create(pool.clone())?;
        let dict = Dictionary::create(pool.clone())?;
        let mgr = TxnManager::create(pool.clone())?;
        let index_dir = pool.alloc_zeroed((INDEX_DIR_CAP * INDEX_ENTRY) as usize)?;
        let root = GraphRoot {
            node_root: nodes.root_off(),
            rel_root: rels.root_off(),
            prop_root: props.root_off(),
            dict_root: dict.root_off(),
            ts_slot: mgr.ts_slot(),
            index_dir,
            index_cap: INDEX_DIR_CAP,
            index_count: 0,
        };
        let root_off = pool.alloc_zeroed(std::mem::size_of::<GraphRoot>())?;
        pool.write(pmem::POff::new(root_off), &root);
        pool.persist(root_off, std::mem::size_of::<GraphRoot>());
        pool.set_root::<GraphRoot>(pmem::POff::new(root_off));
        let db = GraphDb {
            pool,
            nodes,
            rels,
            props,
            dict,
            mgr,
            indexes: RwLock::new(Vec::new()),
            accel: ReadAccel::default(),
            root_off,
            deferred_slots: Mutex::new(Vec::new()),
        };
        db.set_read_accel(read_accel_env());
        Ok(db)
    }

    /// Open an existing persistent database, running full recovery:
    /// undo-log rollback, stale-lock clearing, uncommitted-insert
    /// reclamation, and index reopening (hybrid indexes rebuild their DRAM
    /// inner levels from the persistent leaf chain).
    pub fn open(path: impl AsRef<Path>, profile: DeviceProfile) -> Result<GraphDb> {
        Self::open_with_decider(path, profile, &|_| false)
    }

    /// [`open`](Self::open) with a cross-shard epoch decider: a trailing
    /// epoch marker in the undo log is settled forward when `decider`
    /// accepts its epoch, rolled back otherwise (see `pmem::commit_epoch`).
    /// Standalone databases never see markers; [`crate::shard::ShardedDb`]
    /// passes the decider derived from the epoch-decider shard.
    pub fn open_with_decider(
        path: impl AsRef<Path>,
        profile: DeviceProfile,
        decider: &dyn Fn(u64) -> bool,
    ) -> Result<GraphDb> {
        let pool = Arc::new(Pool::open_with_decider(path, profile, decider)?);
        let root_off = pool.root::<GraphRoot>().raw();
        if root_off == 0 {
            return Err(GraphError::Pmem(pmem::PmemError::BadPool(
                "pool has no graph root".into(),
            )));
        }
        let root: GraphRoot = pool.read(pmem::POff::new(root_off));
        let nodes = ChunkedTable::open(pool.clone(), root.node_root)?;
        let rels = ChunkedTable::open(pool.clone(), root.rel_root)?;
        let props = ChunkedTable::open(pool.clone(), root.prop_root)?;
        let dict = Dictionary::open(pool.clone(), root.dict_root)?;
        let mgr = TxnManager::open(pool.clone(), root.ts_slot);
        mgr.recover_table(&nodes);
        mgr.recover_table(&rels);
        let db = GraphDb {
            pool: pool.clone(),
            nodes,
            rels,
            props,
            dict,
            mgr,
            indexes: RwLock::new(Vec::new()),
            accel: ReadAccel::default(),
            root_off,
            deferred_slots: Mutex::new(Vec::new()),
        };
        // Reopen persisted index definitions.
        let mut defs = Vec::new();
        for i in 0..root.index_count {
            let e = root.index_dir + i * INDEX_ENTRY;
            let lk = pool.read_u64(e);
            let kind_raw = pool.read_u64(e + 8);
            let btree_root = pool.read_u64(e + 16);
            let (label, key) = ((lk & 0xFFFF_FFFF) as u32, (lk >> 32) as u32);
            let kind = match kind_raw {
                1 => IndexKind::Persistent,
                2 => IndexKind::Hybrid,
                _ => IndexKind::Volatile,
            };
            let tree = match kind {
                IndexKind::Volatile => {
                    // Full rebuild from the primary data: the slow recovery
                    // path quantified in Fig. 8.
                    let tree = BPlusTree::create(IndexKind::Volatile, None)?;
                    db.fill_index(&tree, label, key)?;
                    tree
                }
                _ => BPlusTree::open(pool.clone(), btree_root)?,
            };
            defs.push(IndexDef {
                label,
                key,
                tree: Arc::new(tree),
            });
        }
        *db.indexes.write() = defs;
        // Rebuild the DRAM read-acceleration metadata from the latest
        // committed versions (same source fill_index trusts): label bitsets
        // for both tables, plus zone maps for every indexed property key.
        db.rebuild_label_zones();
        let keys: Vec<u32> = db.indexes.read().iter().map(|d| d.key).collect();
        for key in keys {
            let entries = db.collect_key_entries(key);
            db.accel.register_key(key, &entries);
        }
        db.set_read_accel(read_accel_env());
        Ok(db)
    }

    // ------------------------------------------------------------------
    // Accessors used by the query layers
    // ------------------------------------------------------------------

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// The node table.
    pub fn nodes(&self) -> &ChunkedTable<NodeRecord> {
        &self.nodes
    }

    /// The relationship table.
    pub fn rels(&self) -> &ChunkedTable<RelRecord> {
        &self.rels
    }

    /// The property table.
    pub fn props(&self) -> &ChunkedTable<PropRecord> {
        &self.props
    }

    /// The string dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The transaction manager.
    pub fn mgr(&self) -> &TxnManager {
        &self.mgr
    }

    /// The DRAM read-acceleration layer (chunk zone maps).
    pub fn accel(&self) -> &ReadAccel {
        &self.accel
    }

    /// Toggle chunk-grain read acceleration: zone-map pruning in scans and
    /// the MVTO single-version fast path. Maintenance is always on, so the
    /// toggle is safe at runtime (used by benches for on/off comparisons).
    pub fn set_read_accel(&self, on: bool) {
        self.accel.set_enabled(on);
        self.mgr.set_fast_scans(on);
    }

    /// True if chunk-grain read acceleration is enabled.
    pub fn read_accel(&self) -> bool {
        self.accel.enabled()
    }

    /// Toggle the group-commit pipeline (DESIGN.md §10). Both settings keep
    /// the flush-coalesced batch commit; grouping only changes whether
    /// concurrent committers share one log transaction. The default comes
    /// from `PMEMGRAPH_GROUP_COMMIT` (on unless `0`/`false`/`off`/`no`) and
    /// the toggle is safe at runtime (used by benches for on/off runs).
    pub fn set_group_commit(&self, on: bool) {
        self.mgr.set_group_commit(on);
    }

    /// True if commits from concurrent writers may be grouped.
    pub fn group_commit(&self) -> bool {
        self.mgr.group_commit()
    }

    /// The active durability rung. Default follows `PMEMGRAPH_SYNC_MODE`.
    pub fn sync_mode(&self) -> gtxn::SyncMode {
        self.mgr.sync_mode()
    }

    /// Switch durability rung at runtime. Tightening to
    /// [`gtxn::SyncMode::PerTxn`] checkpoints the deferred tail first.
    pub fn set_sync_mode(&self, mode: gtxn::SyncMode) -> Result<()> {
        self.mgr.set_sync_mode(mode).map_err(GraphError::from)
    }

    /// Explicit durability point: flush all data deferred by the
    /// `EveryN`/`CheckpointOnly` rungs and truncate the accumulated undo
    /// log. Cheap no-op when nothing is deferred.
    pub fn checkpoint(&self) -> Result<()> {
        self.mgr.checkpoint().map_err(GraphError::from)
    }

    /// Count of committed write transactions. A snapshot (e.g. the
    /// analytics CSR) built at epoch E is current iff this still equals E.
    pub fn mutation_epoch(&self) -> u64 {
        self.mgr.mutation_epoch()
    }

    /// Rebuild both tables' label bitsets from the latest committed data.
    fn rebuild_label_zones(&self) {
        self.accel.clear_labels();
        self.nodes.for_each_live(|id, _| {
            if let Some(rec) = self.mgr.read_latest_committed(&self.nodes, id) {
                self.accel.note_node_label(id, rec.label);
            }
        });
        self.rels.for_each_live(|id, _| {
            if let Some(rec) = self.mgr.read_latest_committed(&self.rels, id) {
                self.accel.note_rel_label(id, rec.label);
            }
        });
    }

    /// `(node_id, index_key)` for every committed node carrying `key`
    /// (any label — zone maps are per key, not per `(label, key)` pair).
    fn collect_key_entries(&self, key: u32) -> Vec<(u64, u64)> {
        let mut entries = Vec::new();
        self.nodes.for_each_live(|id, _| {
            if let Some(rec) = self.mgr.read_latest_committed(&self.nodes, id) {
                if let Some(pv) = self.committed_prop(rec.props, key) {
                    entries.push((id, pv.index_key()));
                }
            }
        });
        entries
    }

    /// Intern a label/key/string-value, returning its dictionary code.
    pub fn intern(&self, s: &str) -> Result<u32> {
        Ok(self.dict.get_or_insert(s)?)
    }

    /// Begin a transaction.
    pub fn begin(&self) -> GraphTxn<'_> {
        GraphTxn::new(self, self.mgr.begin())
    }

    /// A reader handle sharing an existing transaction's snapshot id (for
    /// morsel-driven parallel workers). Read-only; dropping it is a no-op —
    /// the parent transaction owns the lifecycle.
    pub fn reader_at(&self, snapshot_id: u64) -> GraphTxn<'_> {
        GraphTxn::new(self, self.mgr.reader_at(snapshot_id))
    }

    // ------------------------------------------------------------------
    // Indexes (§4.2 "Hybrid Indexes")
    // ------------------------------------------------------------------

    /// Create a secondary index on `(:label {key})` of the given kind and
    /// bulk-load it from the latest committed data.
    pub fn create_index(&self, label: &str, key: &str, kind: IndexKind) -> Result<()> {
        let label_code = self.dict.get_or_insert(label)?;
        let key_code = self.dict.get_or_insert(key)?;
        if self
            .indexes
            .read()
            .iter()
            .any(|d| d.label == label_code && d.key == key_code)
        {
            return Err(GraphError::IndexExists {
                label: label.into(),
                key: key.into(),
            });
        }
        let tree = match kind {
            IndexKind::Volatile => BPlusTree::create(kind, None)?,
            _ => BPlusTree::create(kind, Some(self.pool.clone()))?,
        };
        self.fill_index(&tree, label_code, key_code)?;
        // Persist the definition.
        let root: GraphRoot = self.pool.read(pmem::POff::new(self.root_off));
        assert!(root.index_count < root.index_cap, "index directory full");
        let e = root.index_dir + root.index_count * INDEX_ENTRY;
        self.pool
            .write_u64(e, (key_code as u64) << 32 | label_code as u64);
        self.pool.write_u64(
            e + 8,
            match kind {
                IndexKind::Volatile => 0,
                IndexKind::Persistent => 1,
                IndexKind::Hybrid => 2,
            },
        );
        self.pool.write_u64(e + 16, tree.root_off());
        self.pool.persist(e, INDEX_ENTRY as usize);
        self.pool
            .write_u64(self.root_off + R_INDEX_COUNT, root.index_count + 1);
        self.pool.persist(self.root_off + R_INDEX_COUNT, 8);
        self.indexes.write().push(IndexDef {
            label: label_code,
            key: key_code,
            tree: Arc::new(tree),
        });
        // Start zone-tracking the key (prefilled under the registry lock so
        // scans never see it registered with incomplete zones). Writers
        // overlapping index creation are covered by their commit-time
        // replay of staged index updates — the same discipline
        // `apply_index_updates` relies on for the B+-tree itself.
        if !self.accel.key_registered(key_code) {
            let entries = self.collect_key_entries(key_code);
            self.accel.register_key(key_code, &entries);
        }
        Ok(())
    }

    /// Bulk-load an index from the latest committed node versions.
    fn fill_index(&self, tree: &BPlusTree, label: u32, key: u32) -> Result<()> {
        let mut pending: Vec<(u64, NodeId)> = Vec::new();
        self.nodes.for_each_live(|id, _| {
            if let Some(rec) = self.mgr.read_latest_committed(&self.nodes, id) {
                if rec.label == label {
                    if let Some(pv) = self.committed_prop(rec.props, key) {
                        pending.push((pv.index_key(), id));
                    }
                }
            }
        });
        for (k, id) in pending {
            tree.insert(k, id)?;
        }
        Ok(())
    }

    /// Read property `key` out of a committed property chain (used by
    /// index maintenance and by benchmark harnesses extracting keys).
    pub fn committed_prop(&self, mut head: u64, key: u32) -> Option<PVal> {
        while head != gstore::NIL {
            let rec = self.props.get(head);
            for slot in rec.slots {
                if slot.key == key {
                    return PVal::decode(slot.tag, slot.val);
                }
            }
            head = rec.next;
        }
        None
    }

    /// The index over `(label_code, key_code)`, if one exists.
    pub fn index_for(&self, label: u32, key: u32) -> Option<Arc<BPlusTree>> {
        self.indexes
            .read()
            .iter()
            .find(|d| d.label == label && d.key == key)
            .map(|d| d.tree.clone())
    }

    /// All committed values in `lo <= key <= hi` for the `(label, key)`
    /// index, in key order. `None` when no such index exists (callers fall
    /// back to a full scan). Values are raw candidates: index maintenance
    /// is eager under MVTO, so readers must re-check visibility, label and
    /// key against their own snapshot.
    pub fn index_range(&self, label: u32, key: u32, lo: u64, hi: u64) -> Option<Vec<u64>> {
        let tree = self.index_for(label, key)?;
        let mut out = Vec::new();
        tree.range(lo, hi, |_, v| out.push(v));
        Some(out)
    }

    /// All index definitions (for diagnostics and benches).
    pub fn index_defs(&self) -> Vec<(u32, u32, IndexKind)> {
        self.indexes
            .read()
            .iter()
            .map(|d| (d.label, d.key, d.tree.kind()))
            .collect()
    }

    pub(crate) fn apply_index_updates(
        &self,
        adds: &[(u32, u32, u64, NodeId)],
        removes: &[(u32, u32, u64, NodeId)],
    ) {
        if adds.is_empty() && removes.is_empty() {
            return;
        }
        let indexes = self.indexes.read();
        for def in indexes.iter() {
            for &(label, key, ikey, id) in removes {
                if def.label == label && def.key == key {
                    def.tree.remove(ikey, id);
                }
            }
            for &(label, key, ikey, id) in adds {
                if def.label == label && def.key == key {
                    let _ = def.tree.insert(ikey, id);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Deferred slot reclamation (§5.3)
    // ------------------------------------------------------------------

    pub(crate) fn defer_slot_free(&self, ets: u64, tag: TableTag, id: RecId) {
        self.deferred_slots.lock().push((ets, tag, id));
    }

    /// Reclaim slots of deleted records that no snapshot can reach anymore.
    /// Called after each commit; also available for explicit maintenance.
    pub fn reclaim_deleted(&self) -> usize {
        let horizon = self.mgr.oldest_active_ts();
        let mut guard = self.deferred_slots.lock();
        let mut reclaimed = 0;
        let mut i = 0;
        while i < guard.len() {
            let (ets, tag, id) = guard[i];
            if ets < horizon {
                match tag {
                    TableTag::Node => self.nodes.delete(id),
                    TableTag::Rel => self.rels.delete(id),
                }
                guard.swap_remove(i);
                reclaimed += 1;
            } else {
                i += 1;
            }
        }
        reclaimed
    }

    /// Mark-and-sweep reclamation of unreachable property records (e.g.
    /// chains leaked by crashed transactions whose owners were reclaimed).
    /// Must run quiesced: returns 0 without touching anything if any
    /// transaction is active. Returns the number of reclaimed records.
    pub fn vacuum_props(&self) -> usize {
        if self.mgr.active_count() > 0 || self.mgr.version_count() > 0 {
            // Conservative: active snapshots or live version chains may
            // still reference superseded property chains.
            return 0;
        }
        let mut reachable = std::collections::HashSet::new();
        let mut mark = |mut head: u64| {
            while head != gstore::NIL {
                if !reachable.insert(head) {
                    break;
                }
                head = self.props.get(head).next;
            }
        };
        self.nodes.for_each_live(|_, rec| mark(rec.props));
        self.rels.for_each_live(|_, rec| mark(rec.props));
        let mut dead = Vec::new();
        self.props.for_each_live(|id, _| {
            if !reachable.contains(&id) {
                dead.push(id);
            }
        });
        for id in &dead {
            self.props.delete(*id);
        }
        dead.len()
    }

    /// Number of live nodes (committed or not — table-level count).
    pub fn node_count(&self) -> usize {
        self.nodes.live_count()
    }

    /// Number of live relationships.
    pub fn rel_count(&self) -> usize {
        self.rels.live_count()
    }
}

impl std::fmt::Debug for GraphDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphDb")
            .field("pool", &self.pool)
            .field("nodes", &self.nodes.live_count())
            .field("rels", &self.rels.live_count())
            .field("indexes", &self.indexes.read().len())
            .finish()
    }
}
