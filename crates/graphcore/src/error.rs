//! Engine-level errors.

use std::fmt;

/// Errors surfaced by the graph engine.
#[derive(Debug)]
pub enum GraphError {
    /// Transactional conflict or protocol error (abort and retry).
    Txn(gtxn::TxnError),
    /// Pool-level failure.
    Pmem(pmem::PmemError),
    /// A referenced node does not exist in this snapshot.
    NodeNotFound(u64),
    /// A referenced relationship does not exist in this snapshot.
    RelNotFound(u64),
    /// Deleting a node that still has visible relationships.
    NodeHasRelationships(u64),
    /// An index over this (label, property) pair already exists.
    IndexExists { label: String, key: String },
    /// The transaction handle was already committed or aborted.
    TxnFinished,
    /// An operation the shard router does not support (e.g. deleting a
    /// cross-shard relationship through a single-shard handle).
    CrossShard(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Txn(e) => write!(f, "transaction error: {e}"),
            GraphError::Pmem(e) => write!(f, "pool error: {e}"),
            GraphError::NodeNotFound(id) => write!(f, "node {id} not found"),
            GraphError::RelNotFound(id) => write!(f, "relationship {id} not found"),
            GraphError::NodeHasRelationships(id) => {
                write!(f, "node {id} still has relationships (detach first)")
            }
            GraphError::IndexExists { label, key } => {
                write!(f, "index on (:{label} {{{key}}}) already exists")
            }
            GraphError::TxnFinished => write!(f, "transaction already finished"),
            GraphError::CrossShard(msg) => write!(f, "cross-shard: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Txn(e) => Some(e),
            GraphError::Pmem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gtxn::TxnError> for GraphError {
    fn from(e: gtxn::TxnError) -> Self {
        GraphError::Txn(e)
    }
}

impl From<pmem::PmemError> for GraphError {
    fn from(e: pmem::PmemError) -> Self {
        GraphError::Pmem(e)
    }
}

impl GraphError {
    /// True for conflicts worth retrying with a fresh transaction.
    pub fn is_retryable(&self) -> bool {
        matches!(self, GraphError::Txn(e) if e.is_retryable())
    }
}
