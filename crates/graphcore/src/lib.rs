//! The transactional property-graph engine (paper §4 + §5 assembled).
//!
//! [`GraphDb`] owns one persistent pool holding the node, relationship and
//! property chunked tables, the string dictionary, the MVTO transaction
//! manager's persistent timestamp slot, and the secondary-index directory.
//! It exposes an RAII transaction handle ([`GraphTxn`]) for all reads and
//! writes, hybrid B+-tree indexes over `(label, property)` pairs, and a
//! recovery path ([`GraphDb::open`]) that:
//!
//! 1. replays/rolls back the pool's undo log (pmem layer),
//! 2. clears stale MVTO locks and reclaims uncommitted inserts (gtxn),
//! 3. reopens persistent structures and rebuilds the volatile parts
//!    (chunk-directory mirrors, hybrid index inner levels).
//!
//! The same engine runs in three device configurations used throughout the
//! paper's evaluation: `PMem` (file-backed pool + latency model), `DRAM`
//! (anonymous pool, no latency) — plus the separate disk-based baseline in
//! the `gdisk` crate.

pub mod accel;
pub mod analytics;
mod db;
mod error;
mod index;
pub mod shard;
mod txn;
mod value;

pub use accel::ReadAccel;
pub use analytics::GraphView;
pub use db::{DbOptions, GraphDb, GraphRoot};
pub use error::GraphError;
pub use index::IndexDef;
pub use shard::{ShardOptions, ShardRouter, ShardedDb, ShardedTxn};
pub use txn::{Dir, GraphTxn, PropOwner};
pub use value::Value;

/// Node identifier: a record id in the node table.
pub type NodeId = u64;
/// Relationship identifier: a record id in the relationship table.
pub type RelId = u64;

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
