//! Analytics-over-snapshot tests: CSR view construction, BFS, PageRank,
//! connected components, triangles, and snapshot stability under
//! concurrent updates (the HTAP claim).

use graphcore::{DbOptions, GraphDb, GraphView, Value};

fn db() -> GraphDb {
    GraphDb::create(DbOptions::dram(256 << 20)).unwrap()
}

/// Build a small known graph:
///
/// ```text
/// 0 -> 1 -> 2 -> 0      (triangle)
/// 2 -> 3 -> 4           (tail)
/// 5 -> 6                (separate component)
/// 7                     (isolated)
/// ```
fn known_graph(db: &GraphDb) -> Vec<u64> {
    let mut tx = db.begin();
    let ids: Vec<u64> = (0..8)
        .map(|i| tx.create_node("V", &[("i", Value::Int(i))]).unwrap())
        .collect();
    for (s, d) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 6)] {
        tx.create_rel(ids[s], "E", ids[d], &[]).unwrap();
    }
    tx.commit().unwrap();
    ids
}

#[test]
fn view_counts() {
    let db = db();
    let ids = known_graph(&db);
    let tx = db.begin();
    let view = GraphView::build(&tx, None, None).unwrap();
    assert_eq!(view.node_count(), 8);
    assert_eq!(view.edge_count(), 6);
    let i2 = view.index[&ids[2]];
    assert_eq!(view.out(i2).len(), 2); // -> 0, -> 3
    assert_eq!(view.inc(i2).len(), 1); // <- 1
}

#[test]
fn bfs_depths() {
    let db = db();
    let ids = known_graph(&db);
    let tx = db.begin();
    let view = GraphView::build(&tx, None, None).unwrap();
    let depth = view.bfs(ids[0]);
    assert_eq!(depth[&ids[0]], 0);
    assert_eq!(depth[&ids[1]], 1);
    assert_eq!(depth[&ids[2]], 2);
    assert_eq!(depth[&ids[3]], 3);
    assert_eq!(depth[&ids[4]], 4);
    assert!(!depth.contains_key(&ids[5]), "other component unreachable");
    assert!(!depth.contains_key(&ids[7]));
}

#[test]
fn connected_components_counts() {
    let db = db();
    let ids = known_graph(&db);
    let tx = db.begin();
    let view = GraphView::build(&tx, None, None).unwrap();
    let comp = view.connected_components();
    let reps: std::collections::HashSet<u32> = comp.iter().copied().collect();
    assert_eq!(reps.len(), 3, "three weakly-connected components");
    // 0..=4 share a component.
    let c0 = comp[view.index[&ids[0]] as usize];
    for i in 1..=4 {
        assert_eq!(comp[view.index[&ids[i]] as usize], c0);
    }
    assert_ne!(comp[view.index[&ids[5]] as usize], c0);
}

#[test]
fn triangle_count() {
    let db = db();
    known_graph(&db);
    let tx = db.begin();
    let view = GraphView::build(&tx, None, None).unwrap();
    assert_eq!(view.triangles(), 1);
}

#[test]
fn pagerank_sums_to_one_and_ranks_hubs() {
    let db = db();
    let mut tx = db.begin();
    // Star: many nodes point at a hub.
    let hub = tx.create_node("V", &[]).unwrap();
    let spokes: Vec<u64> = (0..20)
        .map(|_| tx.create_node("V", &[]).unwrap())
        .collect();
    for &s in &spokes {
        tx.create_rel(s, "E", hub, &[]).unwrap();
    }
    tx.commit().unwrap();

    let tx = db.begin();
    let view = GraphView::build(&tx, None, None).unwrap();
    let pr = view.pagerank(30, 0.85);
    let sum: f64 = pr.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9, "probability mass conserved: {sum}");
    let hub_rank = pr[view.index[&hub] as usize];
    for &s in &spokes {
        assert!(hub_rank > pr[view.index[&s] as usize] * 5.0);
    }
}

#[test]
fn label_filtered_view() {
    let db = db();
    let mut tx = db.begin();
    let a = tx.create_node("A", &[]).unwrap();
    let b = tx.create_node("A", &[]).unwrap();
    let c = tx.create_node("B", &[]).unwrap();
    tx.create_rel(a, "X", b, &[]).unwrap();
    tx.create_rel(a, "Y", b, &[]).unwrap();
    tx.create_rel(a, "X", c, &[]).unwrap();
    tx.commit().unwrap();

    let a_label = db.dict().code_of("A").unwrap();
    let x = db.dict().code_of("X").unwrap();
    let tx = db.begin();
    let view = GraphView::build(&tx, Some(a_label), Some(x)).unwrap();
    assert_eq!(view.node_count(), 2, "only A-labelled nodes");
    assert_eq!(view.edge_count(), 1, "only X edges between A nodes");
}

#[test]
fn snapshot_stability_under_concurrent_updates() {
    // The HTAP story: an analytical view built at snapshot S must not see
    // transactions that commit after S — even while they stream in.
    let db = db();
    let ids = known_graph(&db);

    let analytic_txn = db.begin();

    // OLTP continues: add edges and nodes after the analytics snapshot.
    let mut tx = db.begin();
    let n = tx.create_node("V", &[]).unwrap();
    tx.create_rel(ids[7], "E", n, &[]).unwrap();
    tx.create_rel(ids[4], "E", ids[0], &[]).unwrap();
    tx.commit().unwrap();

    let view = GraphView::build(&analytic_txn, None, None).unwrap();
    assert_eq!(view.node_count(), 8, "new node invisible to the snapshot");
    assert_eq!(view.edge_count(), 6, "new edges invisible to the snapshot");

    // A fresh snapshot sees everything.
    let tx2 = db.begin();
    let view2 = GraphView::build(&tx2, None, None).unwrap();
    assert_eq!(view2.node_count(), 9);
    assert_eq!(view2.edge_count(), 8);
}

#[test]
fn empty_view() {
    let db = db();
    let tx = db.begin();
    let view = GraphView::build(&tx, None, None).unwrap();
    assert_eq!(view.node_count(), 0);
    assert_eq!(view.edge_count(), 0);
    assert!(view.pagerank(10, 0.85).is_empty());
    assert!(view.bfs(0).is_empty());
    assert_eq!(view.triangles(), 0);
}
