//! Engine-level integration tests: the full GraphDb API.

use graphcore::{DbOptions, Dir, GraphDb, GraphError, PropOwner, Value};
use gstore::IndexKind;

fn db() -> GraphDb {
    GraphDb::create(DbOptions::dram(256 << 20)).unwrap()
}

fn tmpfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("graphcore-{}-{}", std::process::id(), name));
    p
}

#[test]
fn create_and_read_node_with_props() {
    let db = db();
    let mut tx = db.begin();
    let id = tx
        .create_node(
            "Person",
            &[
                ("firstName", Value::from("Ada")),
                ("born", Value::Int(1815)),
                ("rating", Value::Double(9.5)),
                ("active", Value::Bool(true)),
            ],
        )
        .unwrap();
    tx.commit().unwrap();

    let tx = db.begin();
    assert_eq!(tx.node_label(id).unwrap().as_deref(), Some("Person"));
    assert_eq!(
        tx.prop(PropOwner::Node(id), "firstName").unwrap(),
        Some(Value::Str("Ada".into()))
    );
    assert_eq!(
        tx.prop(PropOwner::Node(id), "born").unwrap(),
        Some(Value::Int(1815))
    );
    assert_eq!(tx.prop(PropOwner::Node(id), "missing").unwrap(), None);
    let mut all = tx.props(PropOwner::Node(id)).unwrap();
    all.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(all.len(), 4);
}

#[test]
fn many_props_chain_across_batches() {
    let db = db();
    let mut tx = db.begin();
    let props: Vec<(String, Value)> = (0..10)
        .map(|i| (format!("k{i}"), Value::Int(i)))
        .collect();
    let props_ref: Vec<(&str, Value)> = props.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let id = tx.create_node("N", &props_ref).unwrap();
    tx.commit().unwrap();

    let tx = db.begin();
    for i in 0..10 {
        assert_eq!(
            tx.prop(PropOwner::Node(id), &format!("k{i}")).unwrap(),
            Some(Value::Int(i)),
            "k{i}"
        );
    }
    assert_eq!(tx.props(PropOwner::Node(id)).unwrap().len(), 10);
}

#[test]
fn relationships_and_traversal() {
    let db = db();
    let mut tx = db.begin();
    let a = tx.create_node("Person", &[("name", "a".into())]).unwrap();
    let b = tx.create_node("Person", &[("name", "b".into())]).unwrap();
    let c = tx.create_node("Person", &[("name", "c".into())]).unwrap();
    let ab = tx
        .create_rel(a, "KNOWS", b, &[("since", Value::Int(2020))])
        .unwrap();
    let ac = tx.create_rel(a, "KNOWS", c, &[]).unwrap();
    let ba = tx.create_rel(b, "LIKES", a, &[]).unwrap();
    tx.commit().unwrap();

    let tx = db.begin();
    let out = tx.rels_of(a, Dir::Out, None).unwrap();
    let out_ids: Vec<_> = out.iter().map(|(id, _)| *id).collect();
    assert_eq!(out_ids, vec![ac, ab], "head insertion: newest first");
    let inc = tx.rels_of(a, Dir::In, None).unwrap();
    assert_eq!(inc[0].0, ba);
    assert_eq!(tx.degree(a, Dir::Out).unwrap(), 2);
    assert_eq!(tx.degree(a, Dir::In).unwrap(), 1);
    assert_eq!(
        tx.prop(PropOwner::Rel(ab), "since").unwrap(),
        Some(Value::Int(2020))
    );

    // Label-filtered traversal.
    let knows = db.dict().code_of("KNOWS").unwrap();
    let filtered = tx.rels_of(a, Dir::Out, Some(knows)).unwrap();
    assert_eq!(filtered.len(), 2);
    let likes = db.dict().code_of("LIKES").unwrap();
    assert!(tx.rels_of(a, Dir::Out, Some(likes)).unwrap().is_empty());
}

#[test]
fn create_rel_to_missing_node_fails() {
    let db = db();
    let mut tx = db.begin();
    let a = tx.create_node("N", &[]).unwrap();
    let err = tx.create_rel(a, "R", 999, &[]).unwrap_err();
    assert!(matches!(err, GraphError::NodeNotFound(999)));
}

#[test]
fn set_prop_versions_are_snapshot_stable() {
    let db = db();
    let mut tx = db.begin();
    let id = tx.create_node("N", &[("v", Value::Int(1))]).unwrap();
    tx.commit().unwrap();

    let old = db.begin(); // snapshot before the update

    let mut tx = db.begin();
    tx.set_prop(PropOwner::Node(id), "v", Value::Int(2)).unwrap();
    tx.commit().unwrap();

    // The old snapshot still sees v=1 through the old version's chain.
    assert_eq!(
        old.prop(PropOwner::Node(id), "v").unwrap(),
        Some(Value::Int(1))
    );
    drop(old);

    let tx = db.begin();
    assert_eq!(
        tx.prop(PropOwner::Node(id), "v").unwrap(),
        Some(Value::Int(2))
    );
}

#[test]
fn delete_rel_unlinks_from_both_chains() {
    let db = db();
    let mut tx = db.begin();
    let a = tx.create_node("N", &[]).unwrap();
    let b = tx.create_node("N", &[]).unwrap();
    let r1 = tx.create_rel(a, "R", b, &[]).unwrap();
    let r2 = tx.create_rel(a, "R", b, &[]).unwrap();
    let r3 = tx.create_rel(a, "R", b, &[]).unwrap();
    tx.commit().unwrap();

    // Delete the middle one (chain head order: r3, r2, r1).
    let mut tx = db.begin();
    tx.delete_rel(r2).unwrap();
    tx.commit().unwrap();

    let tx = db.begin();
    let out: Vec<_> = tx
        .rels_of(a, Dir::Out, None)
        .unwrap()
        .iter()
        .map(|(id, _)| *id)
        .collect();
    assert_eq!(out, vec![r3, r1]);
    let inc: Vec<_> = tx
        .rels_of(b, Dir::In, None)
        .unwrap()
        .iter()
        .map(|(id, _)| *id)
        .collect();
    assert_eq!(inc, vec![r3, r1]);
    assert!(tx.rel(r2).unwrap().is_none());
}

#[test]
fn delete_node_requires_detach() {
    let db = db();
    let mut tx = db.begin();
    let a = tx.create_node("N", &[]).unwrap();
    let b = tx.create_node("N", &[]).unwrap();
    tx.create_rel(a, "R", b, &[]).unwrap();
    tx.commit().unwrap();

    let mut tx = db.begin();
    let err = tx.delete_node(a).unwrap_err();
    assert!(matches!(err, GraphError::NodeHasRelationships(_)));
    drop(tx);

    let mut tx = db.begin();
    tx.detach_delete_node(a).unwrap();
    tx.commit().unwrap();

    let tx = db.begin();
    assert!(tx.node(a).unwrap().is_none());
    assert!(tx.node(b).unwrap().is_some());
    assert_eq!(tx.degree(b, Dir::In).unwrap(), 0);
}

#[test]
fn abort_leaves_no_trace() {
    let db = db();
    let mut tx = db.begin();
    let a = tx.create_node("N", &[("k", Value::Int(1))]).unwrap();
    tx.commit().unwrap();
    let before_nodes = db.node_count();
    let before_props = db.props().live_count();

    let mut tx = db.begin();
    let b = tx.create_node("N", &[("k", Value::Int(2))]).unwrap();
    tx.create_rel(a, "R", b, &[("p", Value::Int(3))]).unwrap();
    tx.set_prop(PropOwner::Node(a), "k", Value::Int(9)).unwrap();
    tx.abort();

    assert_eq!(db.node_count(), before_nodes);
    assert_eq!(db.rel_count(), 0);
    assert_eq!(
        db.props().live_count(),
        before_props,
        "aborted property chains must be reclaimed"
    );
    let tx = db.begin();
    assert_eq!(
        tx.prop(PropOwner::Node(a), "k").unwrap(),
        Some(Value::Int(1))
    );
}

#[test]
fn drop_without_commit_aborts() {
    let db = db();
    {
        let mut tx = db.begin();
        tx.create_node("N", &[]).unwrap();
        // dropped here
    }
    assert_eq!(db.node_count(), 0);
}

#[test]
fn index_lookup_all_kinds() {
    for kind in [IndexKind::Volatile, IndexKind::Persistent, IndexKind::Hybrid] {
        let db = db();
        let mut tx = db.begin();
        let mut ids = Vec::new();
        for i in 0..500i64 {
            ids.push(
                tx.create_node("Person", &[("pid", Value::Int(i)), ("x", Value::Int(i % 7))])
                    .unwrap(),
            );
        }
        tx.commit().unwrap();

        db.create_index("Person", "pid", kind).unwrap();

        let tx = db.begin();
        let hits = tx
            .lookup_nodes("Person", "pid", &Value::Int(123))
            .unwrap();
        assert_eq!(hits, vec![ids[123]], "kind={kind:?}");

        // Index tracks later inserts.
        drop(tx);
        let mut tx = db.begin();
        let new = tx
            .create_node("Person", &[("pid", Value::Int(1000))])
            .unwrap();
        tx.commit().unwrap();
        let tx = db.begin();
        assert_eq!(
            tx.lookup_nodes("Person", "pid", &Value::Int(1000)).unwrap(),
            vec![new]
        );

        // ...updates...
        drop(tx);
        let mut tx = db.begin();
        tx.set_prop(PropOwner::Node(new), "pid", Value::Int(2000))
            .unwrap();
        tx.commit().unwrap();
        let tx = db.begin();
        assert!(tx
            .lookup_nodes("Person", "pid", &Value::Int(1000))
            .unwrap()
            .is_empty());
        assert_eq!(
            tx.lookup_nodes("Person", "pid", &Value::Int(2000)).unwrap(),
            vec![new]
        );

        // ...and deletes.
        drop(tx);
        let mut tx = db.begin();
        tx.detach_delete_node(new).unwrap();
        tx.commit().unwrap();
        let tx = db.begin();
        assert!(tx
            .lookup_nodes("Person", "pid", &Value::Int(2000))
            .unwrap()
            .is_empty());
    }
}

#[test]
fn duplicate_index_rejected() {
    let db = db();
    db.create_index("Person", "pid", IndexKind::Volatile).unwrap();
    assert!(matches!(
        db.create_index("Person", "pid", IndexKind::Volatile),
        Err(GraphError::IndexExists { .. })
    ));
}

#[test]
fn lookup_without_index_falls_back_to_scan() {
    let db = db();
    let mut tx = db.begin();
    let id = tx
        .create_node("City", &[("name", Value::from("Ilmenau"))])
        .unwrap();
    tx.create_node("City", &[("name", Value::from("Berlin"))])
        .unwrap();
    tx.commit().unwrap();

    let tx = db.begin();
    assert_eq!(
        tx.lookup_nodes("City", "name", &Value::from("Ilmenau"))
            .unwrap(),
        vec![id]
    );
    assert!(tx
        .lookup_nodes("City", "name", &Value::from("Nowhere"))
        .unwrap()
        .is_empty());
}

#[test]
fn persistent_db_full_recovery_cycle() {
    let path = tmpfile("full-recovery");
    let _ = std::fs::remove_file(&path);
    let (a, b, rel);
    {
        let db = GraphDb::create(
            DbOptions::pmem(&path, 256 << 20).profile(pmem::DeviceProfile::dram()),
        )
        .unwrap();
        let mut tx = db.begin();
        a = tx
            .create_node("Person", &[("name", Value::from("alice")), ("pid", Value::Int(1))])
            .unwrap();
        b = tx
            .create_node("Person", &[("name", Value::from("bob")), ("pid", Value::Int(2))])
            .unwrap();
        rel = tx
            .create_rel(a, "KNOWS", b, &[("since", Value::Int(2021))])
            .unwrap();
        tx.commit().unwrap();
        db.create_index("Person", "pid", IndexKind::Hybrid).unwrap();
    }
    {
        let db = GraphDb::open(&path, pmem::DeviceProfile::dram()).unwrap();
        let tx = db.begin();
        assert_eq!(tx.node_label(a).unwrap().as_deref(), Some("Person"));
        assert_eq!(
            tx.prop(PropOwner::Node(a), "name").unwrap(),
            Some(Value::Str("alice".into()))
        );
        assert_eq!(
            tx.prop(PropOwner::Rel(rel), "since").unwrap(),
            Some(Value::Int(2021))
        );
        let out = tx.rels_of(a, Dir::Out, None).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.dst, b);
        // Hybrid index reopened and functional.
        assert_eq!(
            tx.lookup_nodes("Person", "pid", &Value::Int(2)).unwrap(),
            vec![b]
        );
        drop(tx);

        // Writes continue after reopen.
        let mut tx = db.begin();
        let c = tx
            .create_node("Person", &[("pid", Value::Int(3))])
            .unwrap();
        tx.create_rel(b, "KNOWS", c, &[]).unwrap();
        tx.commit().unwrap();
        let tx = db.begin();
        assert_eq!(
            tx.lookup_nodes("Person", "pid", &Value::Int(3)).unwrap(),
            vec![c]
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn crash_before_commit_recovers_clean() {
    let path = tmpfile("crash-clean");
    let _ = std::fs::remove_file(&path);
    let a;
    {
        let db = GraphDb::create(
            DbOptions::pmem(&path, 256 << 20)
                .profile(pmem::DeviceProfile::dram())
                .crash_tracking(true),
        )
        .unwrap();
        let mut tx = db.begin();
        a = tx
            .create_node("Person", &[("name", Value::from("committed"))])
            .unwrap();
        tx.commit().unwrap();

        // Start a transaction, do work, then "crash" without committing.
        let mut tx = db.begin();
        let _b = tx.create_node("Person", &[("name", Value::from("lost"))]).unwrap();
        tx.create_rel(a, "KNOWS", _b, &[]).unwrap();
        std::mem::forget(tx); // locks remain, commit never happens
        db.pool().simulate_crash(pmem::CrashPolicy::DropUnflushed).unwrap();
        // DB object is now stale; drop it without clean shutdown.
        std::mem::forget(db);
    }
    {
        let db = GraphDb::open(&path, pmem::DeviceProfile::dram()).unwrap();
        let tx = db.begin();
        assert!(tx.node(a).unwrap().is_some());
        assert_eq!(
            tx.prop(PropOwner::Node(a), "name").unwrap(),
            Some(Value::Str("committed".into()))
        );
        // The uncommitted node and relationship are gone.
        assert_eq!(db.node_count(), 1);
        assert_eq!(db.rel_count(), 0);
        assert_eq!(tx.degree(a, Dir::Out).unwrap(), 0);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn deleted_slots_are_reclaimed_after_horizon() {
    let db = db();
    let mut tx = db.begin();
    let a = tx.create_node("N", &[]).unwrap();
    let b = tx.create_node("N", &[]).unwrap();
    let r = tx.create_rel(a, "R", b, &[]).unwrap();
    tx.commit().unwrap();

    let mut tx = db.begin();
    tx.delete_rel(r).unwrap();
    tx.commit().unwrap();

    // A fresh commit advances the horizon past the delete.
    let mut tx = db.begin();
    tx.create_node("N", &[]).unwrap();
    tx.commit().unwrap();
    db.reclaim_deleted();
    assert!(!db.rels().is_live(r), "tombstoned slot must be recycled");
}

#[test]
fn concurrent_transactions_on_disjoint_nodes() {
    let db = std::sync::Arc::new(db());
    let mut setup = db.begin();
    let ids: Vec<_> = (0..8)
        .map(|i| setup.create_node("N", &[("v", Value::Int(i))]).unwrap())
        .collect();
    setup.commit().unwrap();

    let handles: Vec<_> = ids
        .chunks(2)
        .map(|chunk| {
            let db = db.clone();
            let chunk = chunk.to_vec();
            std::thread::spawn(move || {
                for round in 0..50 {
                    let mut tx = db.begin();
                    let mut ok = true;
                    for &id in &chunk {
                        if tx
                            .set_prop(PropOwner::Node(id), "v", Value::Int(round))
                            .is_err()
                        {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        tx.commit().unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let tx = db.begin();
    for &id in &ids {
        assert_eq!(
            tx.prop(PropOwner::Node(id), "v").unwrap(),
            Some(Value::Int(49))
        );
    }
}

#[test]
fn vacuum_reclaims_orphaned_prop_chains() {
    let db = db();
    let mut tx = db.begin();
    let a = tx.create_node("N", &[("k", Value::Int(1)), ("j", Value::Int(2))]).unwrap();
    tx.commit().unwrap();
    let live_before = db.props().live_count();

    // Simulate a leak: a crashed transaction's owner was reclaimed but its
    // chain records kept their slots. We fabricate one by inserting an
    // orphan chain directly.
    let orphan = db
        .props()
        .insert(&gstore::PropRecord::new(9999))
        .unwrap();
    assert!(db.props().is_live(orphan));

    // Vacuum refuses while a transaction is active...
    let guard = db.begin();
    assert_eq!(db.vacuum_props(), 0);
    drop(guard);

    // ...and reclaims exactly the orphan when quiesced.
    assert_eq!(db.vacuum_props(), 1);
    assert!(!db.props().is_live(orphan));
    assert_eq!(db.props().live_count(), live_before);

    // Reachable chains are untouched.
    let tx = db.begin();
    assert_eq!(tx.prop(PropOwner::Node(a), "k").unwrap(), Some(Value::Int(1)));
    assert_eq!(tx.prop(PropOwner::Node(a), "j").unwrap(), Some(Value::Int(2)));
}
