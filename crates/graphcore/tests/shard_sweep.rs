//! Sharded crash sweep (DESIGN.md §13): per-shard recovery keeps each
//! shard's consistent prefix, and the cross-shard two-phase epoch commit
//! is all-or-nothing across pools under torn and dropped-flush crashes.
//!
//! The sweep drives a real cross-shard transaction to a crash injected at
//! every flush point of the commit, applies a cache-loss policy to every
//! shard's pool, abandons the process state (`mem::forget`, as a power
//! failure would) and reopens through `ShardedDb::open` — the parallel
//! per-shard recovery path with shard 0 as the epoch decider.

use graphcore::shard::{shard_path, ShardOptions, ShardedDb};
use graphcore::{Dir, GraphDb, PropOwner, Value};
use pmem::{CrashPolicy, DeviceProfile};
use std::path::PathBuf;

const SHARDS: usize = 4;

fn tmpfile(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("graphcore-shard-{}-{}", std::process::id(), name));
    p
}

fn cleanup(base: &PathBuf) {
    for i in 0..SHARDS {
        let _ = std::fs::remove_file(shard_path(base, i, SHARDS));
    }
    let _ = std::fs::remove_file(base);
}

fn sharded(base: &PathBuf) -> ShardedDb {
    cleanup(base);
    ShardedDb::create(
        ShardOptions::pmem(base, 128 << 20)
            .shards(SHARDS)
            .profile(DeviceProfile::dram())
            .crash_tracking(true),
    )
    .unwrap()
}

/// Four nodes with `v = 0`, one per shard (round-robin placement starts
/// at shard 0), committed through the cross-shard path.
fn seed_nodes(db: &ShardedDb) -> Vec<u64> {
    let mut tx = db.begin();
    let nodes: Vec<u64> = (0..SHARDS)
        .map(|i| {
            tx.create_node("Person", &[("v", Value::Int(0)), ("slot", Value::Int(i as i64))])
                .unwrap()
        })
        .collect();
    tx.commit().unwrap();
    for (i, &gid) in nodes.iter().enumerate() {
        assert_eq!(db.router().shard_of(gid), i, "round-robin placement");
    }
    nodes
}

/// The epoch-atomicity sweep: a transaction that touches three shards
/// (property writes) and creates one cross-shard relationship, crashed at
/// every flush point of its commit under both cache-loss policies. After
/// parallel recovery the transaction must be entirely applied or entirely
/// absent on every shard.
#[test]
fn cross_shard_crash_sweep_epoch_atomic() {
    for (pi, policy) in [CrashPolicy::DropUnflushed, CrashPolicy::Torn(0x5eed)]
        .into_iter()
        .enumerate()
    {
        let mut completed = false;
        for crash_at in 0..200i64 {
            let base = tmpfile(&format!("sweep-{pi}-{crash_at}"));
            let db = sharded(&base);
            let nodes = seed_nodes(&db);

            let mut tx = db.begin();
            for &gid in &nodes[..3] {
                tx.set_prop(PropOwner::Node(gid), "v", Value::Int(1)).unwrap();
            }
            tx.create_rel(nodes[0], "X", nodes[1], &[("w", Value::Int(7))])
                .unwrap();
            // Arm every pool just before commit: prepare does not flush,
            // so the panic lands inside the epoch commit itself (or in
            // the post-persist flushes), where every writer transaction
            // has already surrendered its state and unwinding is inert.
            for s in db.shards() {
                s.pool().inject_crash_after_flushes(crash_at);
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tx.commit()));
            for s in db.shards() {
                s.pool().clear_crash_injection();
            }
            let committed = match outcome {
                Ok(r) => {
                    r.unwrap();
                    completed = true;
                    true
                }
                Err(_) => false,
            };
            // Power failure: lose or tear unflushed lines on every shard,
            // abandon the in-process state, recover from the files.
            for s in db.shards() {
                s.pool().simulate_crash(policy).unwrap();
            }
            std::mem::forget(db);

            let db = ShardedDb::open(&base, SHARDS, DeviceProfile::dram()).unwrap();
            let mut tx = db.begin();
            let vs: Vec<i64> = nodes[..3]
                .iter()
                .map(|&gid| match tx.prop(PropOwner::Node(gid), "v").unwrap() {
                    Some(Value::Int(v)) => v,
                    other => panic!("crash_at={crash_at}: node {gid} lost its v prop: {other:?}"),
                })
                .collect();
            let out0 = tx.neighbors(nodes[0], Dir::Out, None).unwrap();
            let in1 = tx.neighbors(nodes[1], Dir::In, None).unwrap();
            let old = vs == [0, 0, 0] && out0.is_empty() && in1.is_empty();
            let new = vs == [1, 1, 1] && out0 == [nodes[1]] && in1 == [nodes[0]];
            assert!(
                old || new,
                "crash_at={crash_at} policy={policy:?}: partially applied cross-shard \
                 txn after recovery: vs={vs:?} out0={out0:?} in1={in1:?}"
            );
            if committed {
                assert!(new, "crash_at={crash_at}: a commit that returned Ok must survive");
            }
            // Per-shard consistent prefix: the seed transaction stays
            // intact on every shard regardless of where the crash landed.
            for (i, &gid) in nodes.iter().enumerate() {
                assert!(tx.node(gid).unwrap().is_some(), "seed node {i} lost");
                assert_eq!(
                    tx.prop(PropOwner::Node(gid), "slot").unwrap(),
                    Some(Value::Int(i as i64)),
                    "seed prop lost on shard {i}"
                );
            }
            assert_eq!(db.node_count(), SHARDS);
            drop(tx);
            drop(db);
            cleanup(&base);
            if completed {
                break;
            }
        }
        assert!(
            completed,
            "sweep never reached an uninjected commit; raise the crash_at bound"
        );
    }
}

/// Independent single-shard transactions: committed work on every shard
/// survives a crash, in-flight transactions (locks held, never committed)
/// vanish — on every shard, through the parallel reopen.
#[test]
fn per_shard_recovery_keeps_each_committed_prefix() {
    let base = tmpfile("prefix");
    let db = sharded(&base);
    let nodes = seed_nodes(&db);

    // One committed update per shard (single-writer fast path each).
    for (i, &gid) in nodes.iter().enumerate() {
        let mut tx = db.begin();
        tx.set_prop(PropOwner::Node(gid), "v", Value::Int(10 + i as i64))
            .unwrap();
        tx.commit().unwrap();
    }
    // In-flight transactions on two shards: work done, never committed.
    let mut lost = db.begin();
    lost.create_node("Ghost", &[("g", Value::Int(1))]).unwrap();
    lost.set_prop(PropOwner::Node(nodes[1]), "v", Value::Int(99))
        .unwrap();
    std::mem::forget(lost);

    for s in db.shards() {
        s.pool().simulate_crash(CrashPolicy::DropUnflushed).unwrap();
    }
    std::mem::forget(db);

    let db = ShardedDb::open(&base, SHARDS, DeviceProfile::dram()).unwrap();
    assert_eq!(db.node_count(), SHARDS, "ghost node must not survive");
    let mut tx = db.begin();
    for (i, &gid) in nodes.iter().enumerate() {
        assert_eq!(
            tx.prop(PropOwner::Node(gid), "v").unwrap(),
            Some(Value::Int(10 + i as i64)),
            "committed per-shard update lost on shard {i}"
        );
    }
    drop(tx);
    drop(db);
    cleanup(&base);
}

/// `shards = 1` leaves the on-media format untouched: a pool written
/// through the router opens as a plain `GraphDb`, and vice versa.
#[test]
fn single_shard_layout_matches_plain_graphdb() {
    let base = tmpfile("identity");
    let _ = std::fs::remove_file(&base);
    let id;
    {
        let db = ShardedDb::create(
            ShardOptions::pmem(&base, 128 << 20)
                .shards(1)
                .profile(DeviceProfile::dram()),
        )
        .unwrap();
        let mut tx = db.begin();
        id = tx.create_node("Solo", &[("v", Value::Int(42))]).unwrap();
        tx.commit().unwrap();
        db.checkpoint().unwrap();
    }
    {
        // The single-shard file is the base path itself — plain open.
        let db = GraphDb::open(&base, DeviceProfile::dram()).unwrap();
        let tx = db.begin();
        assert_eq!(tx.node_label(id).unwrap().as_deref(), Some("Solo"));
        assert_eq!(
            tx.prop(PropOwner::Node(id), "v").unwrap(),
            Some(Value::Int(42))
        );
    }
    {
        // And back through the sharded opener.
        let db = ShardedDb::open(&base, 1, DeviceProfile::dram()).unwrap();
        assert_eq!(db.node_count(), 1);
        let mut tx = db.begin();
        assert_eq!(
            tx.prop(PropOwner::Node(id), "v").unwrap(),
            Some(Value::Int(42))
        );
    }
    let _ = std::fs::remove_file(&base);
}
