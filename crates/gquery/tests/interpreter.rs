//! Interpreter tests: every operator, breakers, update pipelines, and
//! parallel-vs-sequential equivalence.

use graphcore::{DbOptions, Dir, GraphDb, Value};
use gquery::{execute, execute_collect, execute_parallel, CmpOp, Op, PPar, Plan, Pred, Proj};
use gstore::{IndexKind, PVal};

/// Small social graph: persons with pid/age, cities, KNOWS and LIVES_IN.
struct Fx {
    db: GraphDb,
    person: u32,
    city: u32,
    knows: u32,
    lives_in: u32,
    pid: u32,
    age: u32,
    name: u32,
    persons: Vec<u64>,
    cities: Vec<u64>,
}

fn fixture() -> Fx {
    let db = GraphDb::create(DbOptions::dram(256 << 20)).unwrap();
    let person = db.intern("Person").unwrap();
    let city = db.intern("City").unwrap();
    let knows = db.intern("KNOWS").unwrap();
    let lives_in = db.intern("LIVES_IN").unwrap();
    let pid = db.intern("pid").unwrap();
    let age = db.intern("age").unwrap();
    let name = db.intern("name").unwrap();

    let mut tx = db.begin();
    let cities: Vec<u64> = ["Ilmenau", "Berlin"]
        .iter()
        .map(|n| tx.create_node("City", &[("name", Value::from(*n))]).unwrap())
        .collect();
    let persons: Vec<u64> = (0..20i64)
        .map(|i| {
            tx.create_node(
                "Person",
                &[
                    ("pid", Value::Int(i)),
                    ("age", Value::Int(20 + i % 5)),
                    ("name", Value::Str(format!("p{i}"))),
                ],
            )
            .unwrap()
        })
        .collect();
    // KNOWS ring + some chords.
    for i in 0..20 {
        tx.create_rel(
            persons[i],
            "KNOWS",
            persons[(i + 1) % 20],
            &[("since", Value::Int(2000 + i as i64))],
        )
        .unwrap();
    }
    tx.create_rel(persons[0], "KNOWS", persons[10], &[]).unwrap();
    for (i, &p) in persons.iter().enumerate() {
        tx.create_rel(p, "LIVES_IN", cities[i % 2], &[]).unwrap();
    }
    tx.commit().unwrap();
    Fx {
        db,
        person,
        city,
        knows,
        lives_in,
        pid,
        age,
        name,
        persons,
        cities,
    }
}

#[test]
fn node_scan_with_label() {
    let f = fixture();
    let mut tx = f.db.begin();
    let plan = Plan::new(vec![Op::NodeScan { label: Some(f.person) }], 0);
    let rows = execute_collect(&plan, &mut tx, &[]).unwrap();
    assert_eq!(rows.len(), 20);
    let plan = Plan::new(vec![Op::NodeScan { label: Some(f.city) }], 0);
    assert_eq!(execute_collect(&plan, &mut tx, &[]).unwrap().len(), 2);
    let plan = Plan::new(vec![Op::NodeScan { label: None }], 0);
    assert_eq!(execute_collect(&plan, &mut tx, &[]).unwrap().len(), 22);
}

#[test]
fn filter_on_property() {
    let f = fixture();
    let mut tx = f.db.begin();
    let plan = Plan::new(
        vec![
            Op::NodeScan { label: Some(f.person) },
            Op::Filter(Pred::Prop {
                col: 0,
                key: f.age,
                op: CmpOp::Eq,
                value: PPar::Const(PVal::Int(21)),
            }),
        ],
        0,
    );
    let rows = execute_collect(&plan, &mut tx, &[]).unwrap();
    assert_eq!(rows.len(), 4); // ages cycle 20..24 over 20 persons
}

#[test]
fn filter_with_range_and_params() {
    let f = fixture();
    let mut tx = f.db.begin();
    let plan = Plan::new(
        vec![
            Op::NodeScan { label: Some(f.person) },
            Op::Filter(Pred::Prop {
                col: 0,
                key: f.pid,
                op: CmpOp::Lt,
                value: PPar::Param(0),
            }),
        ],
        1,
    );
    let rows = execute_collect(&plan, &mut tx, &[PVal::Int(5)]).unwrap();
    assert_eq!(rows.len(), 5);
    let rows = execute_collect(&plan, &mut tx, &[PVal::Int(100)]).unwrap();
    assert_eq!(rows.len(), 20);
}

#[test]
fn traversal_expand() {
    let f = fixture();
    let mut tx = f.db.begin();
    // persons -> KNOWS -> other end, projected to the destination pid.
    let plan = Plan::new(
        vec![
            Op::IndexScan {
                label: f.person,
                key: f.pid,
                value: PPar::Const(PVal::Int(0)),
            },
            Op::ForeachRel {
                col: 0,
                dir: Dir::Out,
                label: Some(f.knows),
            },
            Op::GetNode {
                col: 1,
                end: gquery::plan::RelEnd::Dst,
            },
            Op::Project(vec![Proj::Prop { col: 2, key: f.pid }]),
        ],
        0,
    );
    let mut pids: Vec<i64> = execute_collect(&plan, &mut tx, &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_pval().unwrap().as_int())
        .collect();
    pids.sort_unstable();
    assert_eq!(pids, vec![1, 10]); // ring successor + chord
}

trait PValExt {
    fn as_int(&self) -> i64;
}
impl PValExt for PVal {
    fn as_int(&self) -> i64 {
        match self {
            PVal::Int(v) => *v,
            other => panic!("not an int: {other:?}"),
        }
    }
}

#[test]
fn incoming_traversal() {
    let f = fixture();
    let mut tx = f.db.begin();
    let plan = Plan::new(
        vec![
            Op::IndexScan {
                label: f.city,
                key: f.name,
                value: PPar::Const(PVal::Str(
                    f.db.dict().code_of("Ilmenau").unwrap(),
                )),
            },
            Op::ForeachRel {
                col: 0,
                dir: Dir::In,
                label: Some(f.lives_in),
            },
            Op::GetNode {
                col: 1,
                end: gquery::plan::RelEnd::Src,
            },
        ],
        0,
    );
    let rows = execute_collect(&plan, &mut tx, &[]).unwrap();
    assert_eq!(rows.len(), 10); // even-indexed persons
}

#[test]
fn order_by_and_limit() {
    let f = fixture();
    let mut tx = f.db.begin();
    let plan = Plan::new(
        vec![
            Op::NodeScan { label: Some(f.person) },
            Op::OrderBy {
                key: Proj::Prop { col: 0, key: f.pid },
                desc: true,
            },
            Op::Limit(3),
            Op::Project(vec![Proj::Prop { col: 0, key: f.pid }]),
        ],
        0,
    );
    let pids: Vec<i64> = execute_collect(&plan, &mut tx, &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_pval().unwrap().as_int())
        .collect();
    assert_eq!(pids, vec![19, 18, 17]);
}

#[test]
fn count_rows() {
    let f = fixture();
    let mut tx = f.db.begin();
    let plan = Plan::new(
        vec![Op::RelScan { label: Some(f.knows) }, Op::Count],
        0,
    );
    let rows = execute_collect(&plan, &mut tx, &[]).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0].as_pval().unwrap().as_int(), 21);
}

#[test]
fn distinct_removes_duplicates() {
    let f = fixture();
    let mut tx = f.db.begin();
    // Project city of every person: only 2 distinct rows remain.
    let plan = Plan::new(
        vec![
            Op::NodeScan { label: Some(f.person) },
            Op::ForeachRel {
                col: 0,
                dir: Dir::Out,
                label: Some(f.lives_in),
            },
            Op::GetNode {
                col: 1,
                end: gquery::plan::RelEnd::Dst,
            },
            Op::Project(vec![Proj::Col(2)]),
            Op::Distinct,
        ],
        0,
    );
    assert_eq!(execute_collect(&plan, &mut tx, &[]).unwrap().len(), 2);
}

#[test]
fn connected_predicate_and_flag() {
    let f = fixture();
    let mut tx = f.db.begin();
    // Pairs (p0, successor-of-p5) are not connected; (p0, p1) are.
    let plan = Plan::new(
        vec![
            Op::NodeById { id: PPar::Param(0) },
            Op::NodeById { id: PPar::Param(1) }, // appends second node? No —
        ],
        2,
    );
    // NodeById is an access path; compose differently: scan then filter.
    drop(plan);
    let plan = Plan::new(
        vec![
            Op::IndexScan {
                label: f.person,
                key: f.pid,
                value: PPar::Const(PVal::Int(0)),
            },
            Op::ForeachRel {
                col: 0,
                dir: Dir::Out,
                label: Some(f.knows),
            },
            Op::GetNode {
                col: 1,
                end: gquery::plan::RelEnd::Dst,
            },
            Op::Project(vec![
                Proj::Col(0),
                Proj::Col(2),
                Proj::ConnectedFlag {
                    a: 0,
                    b: 2,
                    label: f.knows,
                },
            ]),
        ],
        0,
    );
    let rows = execute_collect(&plan, &mut tx, &[]).unwrap();
    for row in rows {
        assert_eq!(row[2].as_pval(), Some(PVal::Bool(true)));
    }
}

#[test]
fn update_pipeline_create_node_and_rel() {
    let f = fixture();
    let mut tx = f.db.begin();
    let since = f.db.intern("since").unwrap();
    // IU-style: create a person, connect it to pid=3.
    let plan = Plan::new(
        vec![
            Op::IndexScan {
                label: f.person,
                key: f.pid,
                value: PPar::Const(PVal::Int(3)),
            },
            Op::CreateNode {
                label: f.person,
                props: vec![(f.pid, PPar::Param(0))],
            },
            Op::CreateRel {
                src_col: 1,
                dst_col: 0,
                label: f.knows,
                props: vec![(since, PPar::Param(1))],
            },
        ],
        2,
    );
    let n = execute(&plan, &mut tx, &[PVal::Int(999), PVal::Int(2024)], |_| {}).unwrap();
    assert_eq!(n, 1);
    tx.commit().unwrap();

    let mut tx = f.db.begin();
    let check = Plan::new(
        vec![
            Op::IndexScan {
                label: f.person,
                key: f.pid,
                value: PPar::Const(PVal::Int(999)),
            },
            Op::ForeachRel {
                col: 0,
                dir: Dir::Out,
                label: Some(f.knows),
            },
            Op::GetNode {
                col: 1,
                end: gquery::plan::RelEnd::Dst,
            },
            Op::Project(vec![Proj::Prop { col: 2, key: f.pid }]),
        ],
        0,
    );
    let rows = execute_collect(&check, &mut tx, &[]).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0].as_pval().unwrap().as_int(), 3);
}

#[test]
fn set_prop_pipeline() {
    let f = fixture();
    let mut tx = f.db.begin();
    let plan = Plan::new(
        vec![
            Op::IndexScan {
                label: f.person,
                key: f.pid,
                value: PPar::Const(PVal::Int(7)),
            },
            Op::SetProp {
                col: 0,
                key: f.age,
                value: PPar::Const(PVal::Int(99)),
            },
        ],
        0,
    );
    execute(&plan, &mut tx, &[], |_| {}).unwrap();
    tx.commit().unwrap();

    let tx = f.db.begin();
    assert_eq!(
        tx.prop(graphcore::PropOwner::Node(f.persons[7]), "age")
            .unwrap(),
        Some(Value::Int(99))
    );
}

#[test]
fn index_scan_uses_index_when_present() {
    let f = fixture();
    f.db.create_index("Person", "pid", IndexKind::Hybrid).unwrap();
    let mut tx = f.db.begin();
    let plan = Plan::new(
        vec![Op::IndexScan {
            label: f.person,
            key: f.pid,
            value: PPar::Param(0),
        }],
        1,
    );
    for i in 0..20i64 {
        let rows = execute_collect(&plan, &mut tx, &[PVal::Int(i)]).unwrap();
        assert_eq!(rows.len(), 1, "pid={i}");
        assert_eq!(rows[0][0].as_node(), Some(f.persons[i as usize]));
    }
}

#[test]
fn parallel_matches_sequential() {
    let f = fixture();
    // Grow the data so multiple chunks exist.
    let mut tx = f.db.begin();
    for i in 100..400i64 {
        tx.create_node("Person", &[("pid", Value::Int(i)), ("age", Value::Int(30))])
            .unwrap();
    }
    tx.commit().unwrap();

    let plan = Plan::new(
        vec![
            Op::NodeScan { label: Some(f.person) },
            Op::Filter(Pred::Prop {
                col: 0,
                key: f.age,
                op: CmpOp::Ge,
                value: PPar::Const(PVal::Int(23)),
            }),
            Op::Project(vec![Proj::Prop { col: 0, key: f.pid }]),
        ],
        0,
    );
    let mut tx = f.db.begin();
    let seq = execute_collect(&plan, &mut tx, &[]).unwrap();
    for threads in [1, 2, 4, 8] {
        let par = execute_parallel(&plan, &f.db, &tx, &[], threads).unwrap();
        assert_eq!(par, seq, "threads={threads}");
    }
}

#[test]
fn parallel_with_breaker_tail() {
    let f = fixture();
    let plan = Plan::new(
        vec![
            Op::NodeScan { label: Some(f.person) },
            Op::OrderBy {
                key: Proj::Prop { col: 0, key: f.pid },
                desc: true,
            },
            Op::Limit(5),
            Op::Project(vec![Proj::Prop { col: 0, key: f.pid }]),
        ],
        0,
    );
    let mut tx = f.db.begin();
    let seq = execute_collect(&plan, &mut tx, &[]).unwrap();
    let par = execute_parallel(&plan, &f.db, &tx, &[], 4).unwrap();
    assert_eq!(par, seq);
    assert_eq!(seq.len(), 5);
    assert_eq!(seq[0][0].as_pval().unwrap().as_int(), 19);
}

#[test]
fn parallel_rejects_updates() {
    let f = fixture();
    let plan = Plan::new(
        vec![
            Op::Once,
            Op::CreateNode {
                label: f.person,
                props: vec![],
            },
        ],
        0,
    );
    let tx = f.db.begin();
    assert!(execute_parallel(&plan, &f.db, &tx, &[], 2).is_err());
}

#[test]
fn snapshot_isolation_during_scan() {
    let f = fixture();
    let tx_old = f.db.begin();
    // Commit 5 more persons after tx_old began.
    let mut tx_new = f.db.begin();
    for i in 0..5 {
        tx_new
            .create_node("Person", &[("pid", Value::Int(1000 + i))])
            .unwrap();
    }
    tx_new.commit().unwrap();

    // tx_old's scan must not see them.
    let plan = Plan::new(vec![Op::NodeScan { label: Some(f.person) }, Op::Count], 0);
    let mut reader = f.db.reader_at(tx_old.id());
    let rows = execute_collect(&plan, &mut reader, &[]).unwrap();
    assert_eq!(rows[0][0].as_pval().unwrap().as_int(), 20);

    let mut fresh = f.db.begin();
    let rows = execute_collect(&plan, &mut fresh, &[]).unwrap();
    assert_eq!(rows[0][0].as_pval().unwrap().as_int(), 25);
}

#[test]
fn empty_scan_yields_nothing() {
    let db = GraphDb::create(DbOptions::dram(64 << 20)).unwrap();
    let mut tx = db.begin();
    let plan = Plan::new(vec![Op::NodeScan { label: None }], 0);
    assert!(execute_collect(&plan, &mut tx, &[]).unwrap().is_empty());
}

#[test]
fn cities_unused_fields_exercised() {
    // Silence-by-use for fixture fields (also sanity checks them).
    let f = fixture();
    assert_eq!(f.cities.len(), 2);
    assert!(f.persons.len() == 20);
}

#[test]
fn bad_plan_errors_are_reported_not_panicked() {
    let f = fixture();
    let mut tx = f.db.begin();
    // Mid-pipeline op as access path.
    let plan = Plan::new(vec![Op::Filter(Pred::ColEq { a: 0, b: 1 })], 0);
    assert!(matches!(
        execute_collect(&plan, &mut tx, &[]),
        Err(gquery::QueryError::BadPlan(_))
    ));
    // Column out of range.
    let plan = Plan::new(
        vec![
            Op::NodeScan { label: Some(f.person) },
            Op::Project(vec![Proj::Col(7)]),
        ],
        0,
    );
    assert!(execute_collect(&plan, &mut tx, &[]).is_err());
    // GetNode on a non-rel column.
    let plan = Plan::new(
        vec![
            Op::NodeScan { label: Some(f.person) },
            Op::GetNode {
                col: 0,
                end: gquery::plan::RelEnd::Dst,
            },
        ],
        0,
    );
    assert!(execute_collect(&plan, &mut tx, &[]).is_err());
}

#[test]
#[should_panic(expected = "plan expects")]
fn missing_params_panic_loudly() {
    let f = fixture();
    let mut tx = f.db.begin();
    let plan = Plan::new(
        vec![Op::IndexScan {
            label: f.person,
            key: f.pid,
            value: PPar::Param(0),
        }],
        1,
    );
    let _ = gquery::execute(&plan, &mut tx, &[], |_| {});
}

#[test]
fn node_by_id_access_path() {
    let f = fixture();
    let mut tx = f.db.begin();
    let plan = Plan::new(
        vec![
            Op::NodeById { id: PPar::Param(0) },
            Op::Project(vec![Proj::Prop { col: 0, key: f.pid }]),
        ],
        1,
    );
    // Physical id of the first person.
    let rows = execute_collect(&plan, &mut tx, &[PVal::Int(f.persons[0] as i64)]).unwrap();
    assert_eq!(rows.len(), 1);
    // Out-of-range and negative ids yield empty results, not errors.
    assert!(execute_collect(&plan, &mut tx, &[PVal::Int(10_000)])
        .unwrap()
        .is_empty());
    assert!(execute_collect(&plan, &mut tx, &[PVal::Int(-1)])
        .unwrap()
        .is_empty());
}

#[test]
fn label_is_and_not_predicates() {
    let f = fixture();
    let mut tx = f.db.begin();
    let plan = Plan::new(
        vec![
            Op::NodeScan { label: None },
            Op::Filter(Pred::Not(Box::new(Pred::LabelIs {
                col: 0,
                label: f.person,
            }))),
            Op::Count,
        ],
        0,
    );
    let rows = execute_collect(&plan, &mut tx, &[]).unwrap();
    // Everything that is not a Person: the two cities.
    assert_eq!(rows[0][0].as_pval(), Some(PVal::Int(2)));
}

#[test]
fn index_probe_cross_product_semantics() {
    let f = fixture();
    let mut tx = f.db.begin();
    // Scan persons with age 21, probe a fixed person: row per (match, probe).
    let plan = Plan::new(
        vec![
            Op::NodeScan { label: Some(f.person) },
            Op::Filter(Pred::Prop {
                col: 0,
                key: f.age,
                op: CmpOp::Eq,
                value: PPar::Const(PVal::Int(21)),
            }),
            Op::IndexProbe {
                label: f.person,
                key: f.pid,
                value: PPar::Const(PVal::Int(0)),
            },
            Op::Project(vec![
                Proj::Prop { col: 0, key: f.pid },
                Proj::Prop { col: 1, key: f.pid },
            ]),
        ],
        0,
    );
    let rows = execute_collect(&plan, &mut tx, &[]).unwrap();
    assert_eq!(rows.len(), 4, "4 persons aged 21 × 1 probed person");
    for r in rows {
        assert_eq!(r[1].as_pval(), Some(PVal::Int(0)));
    }
}
