//! The unified morsel scheduler — one execution loop for every mode.
//!
//! The paper's central mechanism (§6.1–6.2, Fig. 3) is a single
//! morsel-driven pipeline whose *task function* is swapped between the AOT
//! interpreter and JIT-compiled code. This module is that pipeline:
//!
//! * a [`MorselSource`] splits the first pipeline segment's access path
//!   into morsels — node-table chunks, relationship-table chunks, or
//!   batches of index-range candidates;
//! * a [`TaskSlot`] holds the pipeline task. Workers run the interpreter
//!   until a compiled task is published into the slot (a single atomic
//!   publication — the paper's "redirects the static task function to the
//!   compiled function"), after which every subsequent morsel runs machine
//!   code;
//! * an [`ExecCtx`] threads parameters, a deadline, a cancellation flag
//!   and an [`ExecProfile`] through every executor, so callers observe
//!   morsel counts per mode, per-segment timings and fallback reasons
//!   instead of silent mode switches.
//!
//! `gquery::parallel`, `gjit::adaptive`, `ldbc::run_plan` and the query
//! server are thin clients of [`execute_morsels`]; none of them owns a
//! morsel loop or breaker-splitting logic of its own.
//!
//! Determinism: morsel `m`'s rows land in buffer `m` and buffers merge in
//! morsel order, so parallel, adaptive and sequential runs of the same
//! read-only plan produce identical row orders (chunk order for table
//! scans, key/candidate order for index ranges).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use graphcore::{GraphDb, GraphTxn};
use gstore::PVal;
use parking_lot::Mutex;

use crate::exec::{self, QueryError};
use crate::plan::{Op, Plan, Row, Slot};
use crate::pushdown::Pushdown;

/// Morsel-loop span histograms, registered lazily in the process-global
/// [`gobs`] registry. Observation is gated on [`gobs::spans_enabled`], so
/// embedded/benchmark use (no exporter attached) pays one relaxed load.
mod obs {
    use gobs::Histogram;
    use std::sync::OnceLock;
    use std::time::Duration;

    fn hist(
        cell: &'static OnceLock<Histogram>,
        name: &'static str,
        help: &'static str,
    ) -> &'static Histogram {
        cell.get_or_init(|| gobs::global().histogram(name, help))
    }

    pub fn morsel_head(d: Duration) {
        static H: OnceLock<Histogram> = OnceLock::new();
        hist(
            &H,
            "pmemgraph_exec_morsel_head_us",
            "wall-clock of the parallel morsel loop over the first pipeline segment",
        )
        .observe_duration(d);
    }

    pub fn tail(d: Duration) {
        static H: OnceLock<Histogram> = OnceLock::new();
        hist(
            &H,
            "pmemgraph_exec_tail_us",
            "wall-clock of the sequential breaker tail after the morsel loop",
        )
        .observe_duration(d);
    }

    pub fn interp(d: Duration) {
        static H: OnceLock<Histogram> = OnceLock::new();
        hist(
            &H,
            "pmemgraph_exec_interp_us",
            "wall-clock of sequential interpreted execution (Interp mode and fallbacks)",
        )
        .observe_duration(d);
    }
}

/// Which executor drove a query — the four configurations of the paper's
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    Interp,
    Parallel,
    Jit,
    Adaptive,
}

impl ExecMode {
    pub fn as_str(&self) -> &'static str {
        match self {
            ExecMode::Interp => "interp",
            ExecMode::Parallel => "parallel",
            ExecMode::Jit => "jit",
            ExecMode::Adaptive => "adaptive",
        }
    }
}

/// Why a plan could not run through the morsel scheduler (or could not be
/// compiled) and fell back to a slower path. Recorded in the profile
/// instead of being dropped silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// Update pipelines run single-threaded in the caller's transaction
    /// (an MVTO write transaction cannot be shared across workers).
    UpdatePlan,
    /// The first segment's access path has no morsel source (e.g. `Once`,
    /// `NodeById`, point `IndexScan`).
    AccessPath,
    /// The code generator rejected the plan; morsels stayed interpreted.
    JitUnsupported,
}

impl FallbackReason {
    pub fn as_str(&self) -> &'static str {
        match self {
            FallbackReason::UpdatePlan => "update-plan",
            FallbackReason::AccessPath => "access-path",
            FallbackReason::JitUnsupported => "jit-unsupported",
        }
    }
}

/// Per-query execution profile: what actually ran, where the time went,
/// and why any fallback happened. Aggregated across feed-chain steps with
/// [`ExecProfile::absorb`]; surfaced through the query server's response
/// metadata and `STATS`.
#[derive(Debug, Clone, Default)]
pub struct ExecProfile {
    /// Driving mode (first one recorded wins when steps are absorbed).
    pub mode: Option<ExecMode>,
    /// Total morsels scheduled (a sequential run counts as one).
    pub morsels: u64,
    /// Morsels that ran through the AOT interpreter.
    pub interpreted_morsels: u64,
    /// Morsels that ran through JIT-compiled code.
    pub compiled_morsels: u64,
    /// Rows produced (after breakers).
    pub rows: u64,
    /// Chunks skipped by zone-map predicate pushdown before any row was
    /// materialized.
    pub chunks_pruned: u64,
    /// Morsels that claimed the MVTO single-version fast path (clean
    /// chunks read straight from record bytes).
    pub fast_path_morsels: u64,
    /// Rows materialized from surviving chunks and handed to a residual
    /// pipeline that walked the predicate AST per row (the per-row
    /// filtering pushdown could not elide, and no compiled expression was
    /// available yet).
    pub residual_rows_interp: u64,
    /// Rows whose residual filters ran through a compiled expression from
    /// the `gjit::expr` tier instead of the AST walker.
    pub residual_rows_compiled: u64,
    /// Per-segment wall-clock timings, in execution order.
    pub segments: Vec<(&'static str, Duration)>,
    /// Pattern-pipeline segment stats, in execution order: segment
    /// description, binding rows entering, binding rows surviving. Filled
    /// by the gmatch executor (the scan head counts the node table as its
    /// input), empty for single-segment plans.
    pub expansions: Vec<(String, u64, u64)>,
    /// First fallback hit, if any.
    pub fallback: Option<FallbackReason>,
}

impl ExecProfile {
    /// Record a fallback; the first reason sticks.
    pub fn note_fallback(&mut self, reason: FallbackReason) {
        self.fallback.get_or_insert(reason);
    }

    /// Combined residual row count (interpreted + compiled) — the quantity
    /// the old `residual_rows` field reported before the expression tier
    /// split it.
    pub fn residual_rows(&self) -> u64 {
        self.residual_rows_interp + self.residual_rows_compiled
    }

    /// Fold another step's profile into this one.
    pub fn absorb(&mut self, other: ExecProfile) {
        if self.mode.is_none() {
            self.mode = other.mode;
        }
        self.morsels += other.morsels;
        self.interpreted_morsels += other.interpreted_morsels;
        self.compiled_morsels += other.compiled_morsels;
        self.rows += other.rows;
        self.chunks_pruned += other.chunks_pruned;
        self.fast_path_morsels += other.fast_path_morsels;
        self.residual_rows_interp += other.residual_rows_interp;
        self.residual_rows_compiled += other.residual_rows_compiled;
        self.segments.extend(other.segments);
        self.expansions.extend(other.expansions);
        if self.fallback.is_none() {
            self.fallback = other.fallback;
        }
    }
}

/// Execution context threaded through every mode: parameters, deadline,
/// cancellation, pacing (test knob) and the accumulating profile.
pub struct ExecCtx<'a> {
    pub params: &'a [PVal],
    /// Hard deadline; expiry surfaces as [`QueryError::DeadlineExceeded`].
    pub deadline: Option<Instant>,
    /// Cooperative cancellation; raised flag surfaces as
    /// [`QueryError::Cancelled`].
    pub cancel: Option<&'a AtomicBool>,
    /// Injected delay before each *interpreted* morsel. A test/benchmark
    /// knob that emulates slow media so the compile-vs-interpret race has
    /// a controllable outcome (pairs with `JitEngine::set_compile_delay`).
    pub morsel_pace: Option<Duration>,
    /// Slot a compiled residual expression may be published into (by
    /// `gjit::attach_residual_expr`), mirroring the [`TaskSlot`] switch
    /// protocol at predicate granularity. The expression must correspond
    /// to the leading `Filter` run of the plan this context executes.
    pub residual_expr: Option<Arc<ExprSlot>>,
    pub profile: ExecProfile,
}

impl<'a> ExecCtx<'a> {
    pub fn new(params: &'a [PVal]) -> ExecCtx<'a> {
        ExecCtx {
            params,
            deadline: None,
            cancel: None,
            morsel_pace: None,
            residual_expr: None,
            profile: ExecProfile::default(),
        }
    }

    pub fn with_residual_expr(mut self, slot: Arc<ExprSlot>) -> Self {
        self.residual_expr = Some(slot);
        self
    }

    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn with_cancel(mut self, flag: &'a AtomicBool) -> Self {
        self.cancel = Some(flag);
        self
    }

    pub fn with_morsel_pace(mut self, pace: Duration) -> Self {
        self.morsel_pace = Some(pace);
        self
    }

    /// Fail fast if the query was cancelled or its deadline elapsed.
    pub fn check_interrupt(&self) -> Result<(), QueryError> {
        self.interrupt().check()
    }

    fn interrupt(&self) -> Interrupt<'a> {
        Interrupt {
            deadline: self.deadline,
            cancel: self.cancel,
        }
    }
}

/// The copyable interrupt controls, shared by value with worker threads so
/// they can check without borrowing the (mutably held) context.
#[derive(Clone, Copy)]
struct Interrupt<'a> {
    deadline: Option<Instant>,
    cancel: Option<&'a AtomicBool>,
}

impl Interrupt<'_> {
    fn check(&self) -> Result<(), QueryError> {
        if let Some(flag) = self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(QueryError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(QueryError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// A parallelisable access path, split into morsels. Implementations
/// exist for node-table chunks, relationship-table chunks, and batches of
/// index-range candidates.
pub trait MorselSource: Send + Sync {
    /// How many morsels this source splits into.
    fn morsel_count(&self) -> usize;

    /// Run `rest` (the pipeline after the access path) interpreted over
    /// morsel `morsel`, pushing rows to `sink`. A compiled residual
    /// expression in `expr` replaces the leading `Filter` run of `rest`
    /// for sources that feed single-entity rows (table chunk scans);
    /// other sources ignore it.
    fn run_interpreted(
        &self,
        morsel: usize,
        rest: &[Op],
        txn: &mut GraphTxn<'_>,
        params: &[PVal],
        expr: Option<&CompiledPred>,
        sink: &mut dyn FnMut(&[Slot]) -> Result<(), QueryError>,
    ) -> Result<(), QueryError>;

    /// The `[c0, c1)` chunk range a compiled task covers for this morsel,
    /// or `None` when compiled code cannot address this source (the morsel
    /// then always interprets).
    fn compiled_range(&self, morsel: usize) -> Option<(u64, u64)>;

    /// Read-acceleration stats accumulated across interpreted morsels:
    /// `(fast-path morsels, residual rows through the interpreted filter
    /// walker, residual rows through a compiled expression)`. Sources
    /// without per-morsel instrumentation report zeros.
    fn drain_stats(&self) -> (u64, u64, u64) {
        (0, 0, 0)
    }

    /// Access-path name for profiles and diagnostics.
    fn kind(&self) -> &'static str;
}

/// Index-range candidates per morsel. Matches the table chunk capacity so
/// range and scan morsels have comparable granularity.
const RANGE_BATCH: usize = 64;

struct NodeChunks {
    label: Option<u32>,
    /// Surviving chunk indexes after zone-map pruning, in chunk order (so
    /// morsel-order merging still reproduces the sequential row order).
    chunks: Vec<usize>,
    fast: AtomicU64,
    residual_interp: AtomicU64,
    residual_compiled: AtomicU64,
}

impl MorselSource for NodeChunks {
    fn morsel_count(&self) -> usize {
        self.chunks.len()
    }

    fn run_interpreted(
        &self,
        morsel: usize,
        rest: &[Op],
        txn: &mut GraphTxn<'_>,
        params: &[PVal],
        expr: Option<&CompiledPred>,
        sink: &mut dyn FnMut(&[Slot]) -> Result<(), QueryError>,
    ) -> Result<(), QueryError> {
        let (fast, rows, compiled) =
            exec::scan_node_chunk(self.chunks[morsel], self.label, rest, txn, params, expr, sink)?;
        if fast {
            self.fast.fetch_add(1, Ordering::Relaxed);
        }
        if compiled {
            self.residual_compiled.fetch_add(rows, Ordering::Relaxed);
        } else {
            self.residual_interp.fetch_add(rows, Ordering::Relaxed);
        }
        Ok(())
    }

    fn compiled_range(&self, morsel: usize) -> Option<(u64, u64)> {
        let c = self.chunks[morsel] as u64;
        Some((c, c + 1))
    }

    fn drain_stats(&self) -> (u64, u64, u64) {
        (
            self.fast.load(Ordering::Relaxed),
            self.residual_interp.load(Ordering::Relaxed),
            self.residual_compiled.load(Ordering::Relaxed),
        )
    }

    fn kind(&self) -> &'static str {
        "node-chunks"
    }
}

struct RelChunks {
    label: Option<u32>,
    chunks: Vec<usize>,
    fast: AtomicU64,
    residual_interp: AtomicU64,
    residual_compiled: AtomicU64,
}

impl MorselSource for RelChunks {
    fn morsel_count(&self) -> usize {
        self.chunks.len()
    }

    fn run_interpreted(
        &self,
        morsel: usize,
        rest: &[Op],
        txn: &mut GraphTxn<'_>,
        params: &[PVal],
        expr: Option<&CompiledPred>,
        sink: &mut dyn FnMut(&[Slot]) -> Result<(), QueryError>,
    ) -> Result<(), QueryError> {
        let (fast, rows, compiled) =
            exec::scan_rel_chunk(self.chunks[morsel], self.label, rest, txn, params, expr, sink)?;
        if fast {
            self.fast.fetch_add(1, Ordering::Relaxed);
        }
        if compiled {
            self.residual_compiled.fetch_add(rows, Ordering::Relaxed);
        } else {
            self.residual_interp.fetch_add(rows, Ordering::Relaxed);
        }
        Ok(())
    }

    fn compiled_range(&self, morsel: usize) -> Option<(u64, u64)> {
        let c = self.chunks[morsel] as u64;
        Some((c, c + 1))
    }

    fn drain_stats(&self) -> (u64, u64, u64) {
        (
            self.fast.load(Ordering::Relaxed),
            self.residual_interp.load(Ordering::Relaxed),
            self.residual_compiled.load(Ordering::Relaxed),
        )
    }

    fn kind(&self) -> &'static str {
        "rel-chunks"
    }
}

struct IndexRange {
    label: u32,
    key: u32,
    lo: u64,
    hi: u64,
    /// Candidate ids pre-partitioned in deterministic (key or id) order.
    batches: Vec<Vec<u64>>,
}

impl MorselSource for IndexRange {
    fn morsel_count(&self) -> usize {
        self.batches.len()
    }

    fn run_interpreted(
        &self,
        morsel: usize,
        rest: &[Op],
        txn: &mut GraphTxn<'_>,
        params: &[PVal],
        _expr: Option<&CompiledPred>,
        sink: &mut dyn FnMut(&[Slot]) -> Result<(), QueryError>,
    ) -> Result<(), QueryError> {
        // Compiled residual expressions never apply to index-range
        // morsels: the candidate re-check is not a plan `Filter`, so
        // there is no leading filter run for the expression to replace.
        for &id in &self.batches[morsel] {
            exec::push_range_candidate(
                id, self.label, self.key, self.lo, self.hi, rest, txn, params, sink,
            )?;
        }
        Ok(())
    }

    fn compiled_range(&self, _morsel: usize) -> Option<(u64, u64)> {
        // Compiled pipelines address table chunks, not candidate batches;
        // range morsels always interpret (recorded as `jit-unsupported`
        // by the adaptive driver).
        None
    }

    fn kind(&self) -> &'static str {
        "index-range"
    }
}

/// Build the morsel source for a first pipeline segment, or `None` if its
/// access path cannot be morsel-split. Table-scan sources are built from
/// the chunks *surviving* zone-map predicate pushdown; the second element
/// is the number of chunks pruned before any row was materialized.
fn source_for(
    seg: &[Op],
    db: &GraphDb,
    snapshot: &GraphTxn<'_>,
    params: &[PVal],
) -> Option<(Box<dyn MorselSource>, u64)> {
    match seg.first()? {
        Op::NodeScan { label } => {
            let pd = Pushdown::extract(seg, params);
            let (chunks, pruned) =
                pd.surviving_node_chunks(db.accel(), db.nodes().chunk_count());
            Some((
                Box::new(NodeChunks {
                    label: *label,
                    chunks,
                    fast: AtomicU64::new(0),
                    residual_interp: AtomicU64::new(0),
                    residual_compiled: AtomicU64::new(0),
                }),
                pruned,
            ))
        }
        Op::RelScan { label } => {
            let pd = Pushdown::extract(seg, params);
            let (chunks, pruned) = pd.surviving_rel_chunks(db.accel(), db.rels().chunk_count());
            Some((
                Box::new(RelChunks {
                    label: *label,
                    chunks,
                    fast: AtomicU64::new(0),
                    residual_interp: AtomicU64::new(0),
                    residual_compiled: AtomicU64::new(0),
                }),
                pruned,
            ))
        }
        Op::IndexRangeScan { label, key, lo, hi } => {
            let lo = lo.resolve(params).index_key();
            let hi = hi.resolve(params).index_key();
            let ids = exec::range_candidates(snapshot, *label, *key, lo, hi);
            let batches = ids.chunks(RANGE_BATCH).map(<[u64]>::to_vec).collect();
            Some((
                Box::new(IndexRange {
                    label: *label,
                    key: *key,
                    lo,
                    hi,
                    batches,
                }),
                0,
            ))
        }
        _ => None,
    }
}

/// True if the plan can run through the morsel scheduler: a read-only plan
/// whose first segment starts with a morsel-splittable access path.
pub fn morsel_eligible(plan: &Plan) -> bool {
    !plan.is_update()
        && matches!(
            plan.split_first_segment().0.first(),
            Some(Op::NodeScan { .. } | Op::RelScan { .. } | Op::IndexRangeScan { .. })
        )
}

/// The pipeline task body for one morsel when compiled code is available:
/// runs the compiled first segment over a chunk range and returns its
/// rows. Published by `gjit` (as a closure over its `CompiledQuery`) so
/// this crate stays independent of the JIT backend.
pub type CompiledTask =
    Box<dyn Fn(&mut GraphTxn<'_>, &[PVal], u64, u64) -> Result<Vec<Row>, QueryError> + Send + Sync>;

/// The swappable task-function slot of the adaptive scheduler (Fig. 3).
/// Starts empty (morsels interpret); a background compiler publishes
/// either a compiled task or a permanent failure exactly once. Workers
/// observe the publication on their next morsel pull.
#[derive(Default)]
pub struct TaskSlot {
    cell: OnceLock<Option<CompiledTask>>,
}

impl TaskSlot {
    pub fn new() -> TaskSlot {
        TaskSlot::default()
    }

    /// Publish the compiled task (first publication wins).
    pub fn publish(&self, task: CompiledTask) {
        let _ = self.cell.set(Some(task));
    }

    /// Record that compilation failed; morsels keep interpreting.
    pub fn publish_failure(&self) {
        let _ = self.cell.set(None);
    }

    /// The compiled task, if one has been published.
    pub fn get(&self) -> Option<&CompiledTask> {
        self.cell.get().and_then(Option::as_ref)
    }

    /// True once a compiled task is available.
    pub fn is_compiled(&self) -> bool {
        self.get().is_some()
    }

    /// True if compilation finished with a failure.
    pub fn compile_failed(&self) -> bool {
        matches!(self.cell.get(), Some(None))
    }
}

/// A compiled residual predicate: one native `fn(row) -> bool` standing in
/// for the leading `Filter` run of a residual pipeline. Published by
/// `gjit::expr` (as a closure over its `CompiledExpr`) so this crate stays
/// independent of the JIT backend — same layering as [`CompiledTask`].
pub type CompiledPred =
    Box<dyn Fn(&mut GraphTxn<'_>, &[PVal], &[Slot]) -> Result<bool, QueryError> + Send + Sync>;

/// The [`TaskSlot`] switch protocol at predicate granularity: starts empty
/// (residual filters walk the AST), a background compiler publishes a
/// compiled expression or a permanent failure exactly once, and scans
/// observe the publication on their next chunk. Shared via `Arc` across
/// worker threads and across per-shard executions, so a plan compiled once
/// serves every shard's scan.
#[derive(Default)]
pub struct ExprSlot {
    cell: OnceLock<Option<CompiledPred>>,
}

impl ExprSlot {
    pub fn new() -> ExprSlot {
        ExprSlot::default()
    }

    /// Publish the compiled expression (first publication wins).
    pub fn publish(&self, pred: CompiledPred) {
        let _ = self.cell.set(Some(pred));
    }

    /// Record that expression compilation failed; filters keep walking
    /// the AST.
    pub fn publish_failure(&self) {
        let _ = self.cell.set(None);
    }

    /// The compiled expression, if one has been published.
    pub fn get(&self) -> Option<&CompiledPred> {
        self.cell.get().and_then(Option::as_ref)
    }

    /// True once a compiled expression is available.
    pub fn is_compiled(&self) -> bool {
        self.get().is_some()
    }

    /// True if compilation finished with a failure.
    pub fn compile_failed(&self) -> bool {
        matches!(self.cell.get(), Some(None))
    }
}

/// Execute a read-only plan through the morsel scheduler.
///
/// Workers pull morsel indexes from a shared counter; each morsel runs the
/// compiled task if `task` has published one (and the source is
/// chunk-addressable), the interpreter otherwise. Per-morsel row buffers
/// merge in morsel order, then the tail (breakers onward) runs
/// sequentially on a snapshot reader.
///
/// Returns `Ok(None)` — with the reason recorded in the profile — when the
/// plan has no morsel source; the caller picks its own fallback (the
/// sequential interpreter, or the one-shot JIT driver). Update plans are
/// an error: morsel workers share a read snapshot, never a write
/// transaction.
pub fn execute_morsels(
    plan: &Plan,
    db: &GraphDb,
    snapshot: &GraphTxn<'_>,
    ctx: &mut ExecCtx<'_>,
    threads: usize,
    task: Option<&TaskSlot>,
) -> Result<Option<Vec<Row>>, QueryError> {
    if plan.is_update() {
        return Err(QueryError::BadPlan("morsel execution is read-only".into()));
    }
    ctx.check_interrupt()?;
    let (seg, tail) = plan.split_first_segment();
    let Some((source, pruned)) = source_for(seg, db, snapshot, ctx.params) else {
        ctx.profile.note_fallback(FallbackReason::AccessPath);
        return Ok(None);
    };
    ctx.profile.chunks_pruned += pruned;
    let source = &*source;
    let rest = &seg[1..];
    let morsels = source.morsel_count();
    let params = ctx.params;
    let interrupt = ctx.interrupt();
    let pace = ctx.morsel_pace;
    let expr_slot = ctx.residual_expr.clone();
    let expr_slot = expr_slot.as_deref();

    let head_start = Instant::now();
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Vec<Row>>> = (0..morsels).map(|_| Mutex::new(Vec::new())).collect();
    let failure: Mutex<Option<QueryError>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    let interp_count = AtomicU64::new(0);
    let jit_count = AtomicU64::new(0);

    let workers = threads.max(1).min(morsels.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut txn = db.reader_at(snapshot.id());
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let m = next.fetch_add(1, Ordering::Relaxed);
                    if m >= morsels {
                        break;
                    }
                    if let Err(e) = interrupt.check() {
                        *failure.lock() = Some(e);
                        abort.store(true, Ordering::Relaxed);
                        break;
                    }
                    // The adaptive switch: whichever task function is
                    // published *now* runs this morsel.
                    let compiled = task
                        .and_then(TaskSlot::get)
                        .and_then(|f| source.compiled_range(m).map(|r| (f, r)));
                    let outcome = match compiled {
                        Some((run, (c0, c1))) => {
                            jit_count.fetch_add(1, Ordering::Relaxed);
                            run(&mut txn, params, c0, c1)
                        }
                        None => {
                            interp_count.fetch_add(1, Ordering::Relaxed);
                            if let Some(p) = pace {
                                std::thread::sleep(p);
                            }
                            let mut rows: Vec<Row> = Vec::new();
                            let res = {
                                // Like the task slot above: whichever
                                // compiled expression is published *now*
                                // filters this morsel's residual rows.
                                let expr = expr_slot.and_then(ExprSlot::get);
                                let mut sink = |row: &[Slot]| -> Result<(), QueryError> {
                                    rows.push(row.to_vec());
                                    Ok(())
                                };
                                source.run_interpreted(m, rest, &mut txn, params, expr, &mut sink)
                            };
                            res.map(|()| rows)
                        }
                    };
                    match outcome {
                        Ok(rows) => *results[m].lock() = rows,
                        Err(e) => {
                            *failure.lock() = Some(e);
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });
    if let Some(e) = failure.into_inner() {
        return Err(e);
    }

    ctx.profile.morsels += morsels as u64;
    ctx.profile.interpreted_morsels += interp_count.into_inner();
    ctx.profile.compiled_morsels += jit_count.into_inner();
    let (fast, resid_interp, resid_compiled) = source.drain_stats();
    ctx.profile.fast_path_morsels += fast;
    ctx.profile.residual_rows_interp += resid_interp;
    ctx.profile.residual_rows_compiled += resid_compiled;
    let head_elapsed = gobs::saturating_elapsed(head_start);
    if gobs::spans_enabled() {
        obs::morsel_head(head_elapsed);
    }
    ctx.profile.segments.push((source.kind(), head_elapsed));

    let merged: Vec<Row> = results.into_iter().flat_map(Mutex::into_inner).collect();
    let out = if tail.is_empty() {
        merged
    } else {
        ctx.check_interrupt()?;
        let tail_start = Instant::now();
        let mut reader = db.reader_at(snapshot.id());
        let mut out = Vec::new();
        {
            let mut sink = |row: &[Slot]| -> Result<(), QueryError> {
                out.push(row.to_vec());
                Ok(())
            };
            exec::exec_segments_pub(tail, &mut reader, params, Some(merged), &mut sink)?;
        }
        let tail_elapsed = gobs::saturating_elapsed(tail_start);
        if gobs::spans_enabled() {
            obs::tail(tail_elapsed);
        }
        ctx.profile.segments.push(("tail", tail_elapsed));
        out
    };
    ctx.profile.rows += out.len() as u64;
    ctx.check_interrupt()?;
    Ok(Some(out))
}

/// The bare morsel loop, for jobs that are not query plans (the
/// `ganalytics` graph kernels): `workers` threads pull morsel indexes
/// `0..morsels` from a shared counter and run `f` on each. Honours the
/// context's deadline/cancellation between morsels — the first error
/// raises an abort flag, stops all workers, and is returned. `f` runs on
/// scoped worker threads, so it can borrow from the caller's stack (flat
/// rank/frontier arrays, the CSR itself).
///
/// Unlike [`execute_morsels`] there is no per-morsel result buffer: jobs
/// write into disjoint (or atomic) slices they own, which is what keeps
/// the inner loops SIMD-friendly.
pub fn parallel_for<F>(
    workers: usize,
    morsels: usize,
    ctx: &ExecCtx<'_>,
    f: F,
) -> Result<(), QueryError>
where
    F: Fn(usize) -> Result<(), QueryError> + Sync,
{
    ctx.check_interrupt()?;
    if morsels == 0 {
        return Ok(());
    }
    let interrupt = ctx.interrupt();
    let next = AtomicUsize::new(0);
    let failure: Mutex<Option<QueryError>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    let workers = workers.max(1).min(morsels);
    if workers == 1 {
        // Inline fast path: no thread spawn for tiny jobs.
        for m in 0..morsels {
            interrupt.check()?;
            f(m)?;
        }
        return Ok(());
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let m = next.fetch_add(1, Ordering::Relaxed);
                if m >= morsels {
                    break;
                }
                let r = interrupt.check().and_then(|()| f(m));
                if let Err(e) = r {
                    let mut slot = failure.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    abort.store(true, Ordering::Relaxed);
                    break;
                }
            });
        }
    });
    match failure.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Sequential interpretation under an [`ExecCtx`]: the `Interp` mode and
/// the shared fallback for non-morsel plans. Checks the interrupt controls
/// between result batches, counts the run as one interpreted morsel, and
/// reports a result that arrived after the deadline as missed.
pub fn execute_collect_ctx(
    plan: &Plan,
    txn: &mut GraphTxn<'_>,
    ctx: &mut ExecCtx<'_>,
) -> Result<Vec<Row>, QueryError> {
    assert!(
        ctx.params.len() >= plan.n_params,
        "plan expects {} params, got {}",
        plan.n_params,
        ctx.params.len()
    );
    ctx.check_interrupt()?;
    let start = Instant::now();
    let interrupt = ctx.interrupt();
    let expr_slot = ctx.residual_expr.clone();
    let mut hook = exec::ResidualHook::new(expr_slot.as_deref());
    let mut rows: Vec<Row> = Vec::new();
    {
        let mut sink = |row: &[Slot]| -> Result<(), QueryError> {
            rows.push(row.to_vec());
            if rows.len().is_multiple_of(512) {
                interrupt.check()?;
            }
            Ok(())
        };
        exec::exec_segments_hook(&plan.ops, txn, ctx.params, None, &mut hook, &mut sink)?;
    }
    ctx.profile.morsels += 1;
    ctx.profile.interpreted_morsels += 1;
    ctx.profile.residual_rows_interp += hook.interp_rows;
    ctx.profile.residual_rows_compiled += hook.compiled_rows;
    let elapsed = gobs::saturating_elapsed(start);
    if gobs::spans_enabled() {
        obs::interp(elapsed);
    }
    ctx.profile.segments.push(("interp", elapsed));
    ctx.profile.rows += rows.len() as u64;
    ctx.check_interrupt()?;
    Ok(rows)
}
