//! Predicate pushdown: turn a pipeline's sargable leading conjuncts into
//! chunk-grain pruning decisions against the DRAM zone maps.
//!
//! [`Pushdown::extract`] inspects the first pipeline segment — the scan's
//! own label plus every `Pred::LabelIs`/`Pred::Prop` conjunct on column 0
//! in the *leading* consecutive `Filter` operators — and compiles them
//! into label requirements and per-key index-key ranges. Morsel sources
//! and the sequential interpreter then ask, per chunk, whether any record
//! in the chunk could satisfy all of them ([`node_chunk_survives`]
//! / [`rel_chunk_survives`](Pushdown::rel_chunk_survives)); chunks that
//! cannot are skipped before a single row is materialized.
//!
//! The residual predicate is untouched: filters stay in the pipeline and
//! still run per row, so pushdown only ever removes work, never changes
//! which rows qualify. Pruning is conservative in exactly one direction —
//! a chunk survives unless the zone maps *prove* no record can match:
//!
//! * `Eq` prunes on the index-key image of the value (PVal equality
//!   implies index-key equality, so the range `[k, k]` over-approximates);
//! * ordered comparisons (`Lt`/`Le`/`Gt`/`Ge`) are evaluated on index
//!   keys by the interpreter itself, so their ranges are exact;
//! * `Lt 0` / `Gt u64::MAX` can never match ⇒ every chunk is pruned
//!   (`Pred::Prop` on a missing property is false, so no row survives);
//! * `Ne`, `Or`, `Not`, multi-column predicates are not sargable and
//!   remain residual-only.
//!
//! [`node_chunk_survives`]: Pushdown::node_chunk_survives

use graphcore::ReadAccel;
use gstore::PVal;

use crate::plan::{CmpOp, Op, Pred};

/// Sargable leading conjuncts of one pipeline segment, resolved against
/// the invocation's parameters.
#[derive(Debug, Default)]
pub struct Pushdown {
    /// Labels the column-0 entity must carry (scan label + `LabelIs`).
    pub labels: Vec<u32>,
    /// Per-key inclusive index-key ranges the column-0 node must satisfy.
    pub ranges: Vec<(u32, u64, u64)>,
    /// A leading conjunct can never be satisfied; every chunk is prunable.
    pub never: bool,
}

impl Pushdown {
    /// Extract the sargable leading conjuncts of a first pipeline segment
    /// (`seg[0]` is the access path; consecutive `Filter`s follow).
    pub fn extract(seg: &[Op], params: &[PVal]) -> Pushdown {
        let mut pd = Pushdown::default();
        if let Some(Op::NodeScan { label: Some(l) } | Op::RelScan { label: Some(l) }) = seg.first() {
            pd.labels.push(*l);
        }
        for op in &seg[1.min(seg.len())..] {
            let Op::Filter(pred) = op else { break };
            pd.add_conjunct(pred, params);
        }
        pd
    }

    fn add_conjunct(&mut self, pred: &Pred, params: &[PVal]) {
        match pred {
            Pred::And(l, r) => {
                self.add_conjunct(l, params);
                self.add_conjunct(r, params);
            }
            Pred::LabelIs { col: 0, label } => self.labels.push(*label),
            Pred::Prop {
                col: 0,
                key,
                op,
                value,
            } => {
                let k = value.resolve(params).index_key();
                match op {
                    CmpOp::Eq => self.ranges.push((*key, k, k)),
                    CmpOp::Le => self.ranges.push((*key, 0, k)),
                    CmpOp::Ge => self.ranges.push((*key, k, u64::MAX)),
                    CmpOp::Lt if k == 0 => self.never = true,
                    CmpOp::Lt => self.ranges.push((*key, 0, k - 1)),
                    CmpOp::Gt if k == u64::MAX => self.never = true,
                    CmpOp::Gt => self.ranges.push((*key, k + 1, u64::MAX)),
                    CmpOp::Ne => {}
                }
            }
            _ => {}
        }
    }

    /// True when nothing was pushed down (no chunk can ever be pruned).
    pub fn is_trivial(&self) -> bool {
        !self.never && self.labels.is_empty() && self.ranges.is_empty()
    }

    /// May any record in node chunk `chunk` satisfy every pushed-down
    /// conjunct? Always true while acceleration is disabled, so the
    /// on/off toggle yields byte-identical scan behaviour.
    pub fn node_chunk_survives(&self, accel: &ReadAccel, chunk: usize) -> bool {
        if !accel.enabled() {
            return true;
        }
        if self.never {
            return false;
        }
        self.labels
            .iter()
            .all(|&l| accel.node_chunk_may_match_label(chunk, l))
            && self
                .ranges
                .iter()
                .all(|&(k, lo, hi)| accel.node_chunk_may_overlap(k, chunk, lo, hi))
    }

    /// May any record in relationship chunk `chunk` satisfy the pushed-down
    /// conjuncts? Relationship properties carry no zone maps, so only the
    /// label bitset (and `never`) prune here.
    pub fn rel_chunk_survives(&self, accel: &ReadAccel, chunk: usize) -> bool {
        if !accel.enabled() {
            return true;
        }
        if self.never {
            return false;
        }
        self.labels
            .iter()
            .all(|&l| accel.rel_chunk_may_match_label(chunk, l))
    }

    /// Surviving node chunks in `0..chunk_count`, plus how many were
    /// pruned. The surviving list keeps chunk order, so pruned scans
    /// produce rows in the same order as unpruned ones.
    pub fn surviving_node_chunks(&self, accel: &ReadAccel, chunk_count: usize) -> (Vec<usize>, u64) {
        let list: Vec<usize> = (0..chunk_count)
            .filter(|&c| self.node_chunk_survives(accel, c))
            .collect();
        let pruned = (chunk_count - list.len()) as u64;
        (list, pruned)
    }

    /// Surviving relationship chunks in `0..chunk_count`, plus the pruned
    /// count.
    pub fn surviving_rel_chunks(&self, accel: &ReadAccel, chunk_count: usize) -> (Vec<usize>, u64) {
        let list: Vec<usize> = (0..chunk_count)
            .filter(|&c| self.rel_chunk_survives(accel, c))
            .collect();
        let pruned = (chunk_count - list.len()) as u64;
        (list, pruned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PPar;

    fn ikey(v: i64) -> u64 {
        PVal::Int(v).index_key()
    }

    fn prop(op: CmpOp, v: i64) -> Op {
        Op::Filter(Pred::Prop {
            col: 0,
            key: 7,
            op,
            value: PPar::Const(PVal::Int(v)),
        })
    }

    #[test]
    fn extracts_scan_label_and_leading_conjuncts() {
        let seg = [
            Op::NodeScan { label: Some(3) },
            Op::Filter(Pred::And(
                Box::new(Pred::LabelIs { col: 0, label: 3 }),
                Box::new(Pred::Prop {
                    col: 0,
                    key: 7,
                    op: CmpOp::Le,
                    value: PPar::Param(0),
                }),
            )),
            prop(CmpOp::Ge, 10),
        ];
        let pd = Pushdown::extract(&seg, &[PVal::Int(99)]);
        assert_eq!(pd.labels, vec![3, 3]);
        assert_eq!(pd.ranges, vec![(7, 0, ikey(99)), (7, ikey(10), u64::MAX)]);
        assert!(!pd.never);
        assert!(!pd.is_trivial());
    }

    #[test]
    fn extraction_stops_at_first_non_filter() {
        let seg = [
            Op::NodeScan { label: None },
            Op::ForeachRel {
                col: 0,
                dir: graphcore::Dir::Out,
                label: None,
            },
            prop(CmpOp::Eq, 5),
        ];
        let pd = Pushdown::extract(&seg, &[]);
        assert!(pd.is_trivial());
    }

    #[test]
    fn non_sargable_predicates_stay_residual() {
        let seg = [
            Op::NodeScan { label: None },
            prop(CmpOp::Ne, 5),
            Op::Filter(Pred::Or(
                Box::new(Pred::LabelIs { col: 0, label: 1 }),
                Box::new(Pred::LabelIs { col: 0, label: 2 }),
            )),
            Op::Filter(Pred::LabelIs { col: 1, label: 1 }),
        ];
        let pd = Pushdown::extract(&seg, &[]);
        assert!(pd.is_trivial());
    }

    #[test]
    fn impossible_bounds_prune_everything() {
        let seg = [Op::NodeScan { label: None }, prop(CmpOp::Lt, i64::MIN)];
        let pd = Pushdown::extract(&seg, &[]);
        assert!(pd.never, "Lt over the smallest index key can never match");
        let accel = ReadAccel::default();
        accel.set_enabled(true);
        assert!(!pd.node_chunk_survives(&accel, 0));
    }

    #[test]
    fn survival_consults_zone_maps() {
        let accel = ReadAccel::default();
        accel.set_enabled(true);
        // Chunk 0 holds label 1 with key 7 in [10, 20]; chunk 1 label 2.
        accel.register_key(7, &[]);
        accel.note_node_label(0, 1);
        accel.note_node_prop(7, 0, ikey(10));
        accel.note_node_prop(7, 0, ikey(20));
        accel.note_node_label(64, 2);

        let seg = [Op::NodeScan { label: Some(1) }, prop(CmpOp::Ge, 15)];
        let pd = Pushdown::extract(&seg, &[]);
        assert!(pd.node_chunk_survives(&accel, 0));
        assert!(!pd.node_chunk_survives(&accel, 1), "label 1 never in chunk 1");
        assert!(!pd.node_chunk_survives(&accel, 2), "chunk never populated");

        let seg = [Op::NodeScan { label: Some(1) }, prop(CmpOp::Gt, 20)];
        let pd = Pushdown::extract(&seg, &[]);
        assert!(!pd.node_chunk_survives(&accel, 0), "zone [10,20] disjoint");

        let (list, pruned) = Pushdown::extract(
            &[Op::NodeScan { label: Some(1) }],
            &[],
        )
        .surviving_node_chunks(&accel, 3);
        assert_eq!(list, vec![0]);
        assert_eq!(pruned, 2);
    }

    #[test]
    fn disabled_accel_never_prunes() {
        let accel = ReadAccel::default();
        let seg = [Op::NodeScan { label: Some(9) }, prop(CmpOp::Lt, i64::MIN)];
        let pd = Pushdown::extract(&seg, &[]);
        assert!(pd.node_chunk_survives(&accel, 0));
        assert!(pd.rel_chunk_survives(&accel, 0));
    }

    #[test]
    fn rel_survival_uses_label_bitset_only() {
        let accel = ReadAccel::default();
        accel.set_enabled(true);
        accel.note_rel_label(0, 4);
        let seg = [
            Op::RelScan { label: Some(4) },
            prop(CmpOp::Eq, 1), // rel props are not zone-tracked
        ];
        let pd = Pushdown::extract(&seg, &[]);
        assert!(pd.rel_chunk_survives(&accel, 0));
        assert!(!pd.rel_chunk_survives(&accel, 1));
    }
}
