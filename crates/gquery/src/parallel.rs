//! Morsel-driven parallel execution (paper §6.1, following its reference
//! to Leis et al.'s morsel-driven parallelism) — a thin client of the
//! unified scheduler in [`crate::sched`].
//!
//! Worker threads share the caller's snapshot id via reader transactions,
//! so every morsel observes one consistent snapshot; per-morsel results
//! merge in morsel order (deterministic output), then the remaining
//! segments (pipeline breakers onward) run sequentially. All of that
//! machinery lives in [`sched::execute_morsels`]; this module only picks
//! the mode and the fallback.

use graphcore::{GraphDb, GraphTxn};
use gstore::PVal;

use crate::exec::QueryError;
use crate::plan::{Plan, Row};
use crate::sched::{self, ExecCtx, ExecMode};

/// Execute a read-only plan across `nthreads` workers. Plans whose access
/// path cannot be morsel-split fall back to sequential execution on a
/// snapshot-sharing reader.
pub fn execute_parallel(
    plan: &Plan,
    db: &GraphDb,
    snapshot: &GraphTxn<'_>,
    params: &[PVal],
    nthreads: usize,
) -> Result<Vec<Row>, QueryError> {
    let mut ctx = ExecCtx::new(params);
    execute_parallel_ctx(plan, db, snapshot, &mut ctx, nthreads)
}

/// [`execute_parallel`] with an explicit [`ExecCtx`]: honours the context's
/// deadline and cancellation flag and records the run in its profile.
pub fn execute_parallel_ctx(
    plan: &Plan,
    db: &GraphDb,
    snapshot: &GraphTxn<'_>,
    ctx: &mut ExecCtx<'_>,
    nthreads: usize,
) -> Result<Vec<Row>, QueryError> {
    if plan.is_update() {
        return Err(QueryError::BadPlan(
            "parallel execution is read-only".into(),
        ));
    }
    ctx.profile.mode.get_or_insert(ExecMode::Parallel);
    match sched::execute_morsels(plan, db, snapshot, ctx, nthreads, None)? {
        Some(rows) => Ok(rows),
        None => {
            // No morsel source (reason already recorded in the profile):
            // run sequentially on a snapshot-sharing reader.
            let mut reader = db.reader_at(snapshot.id());
            sched::execute_collect_ctx(plan, &mut reader, ctx)
        }
    }
}
