//! Morsel-driven parallel execution (paper §6.1, following its reference
//! to Leis et al.'s morsel-driven parallelism).
//!
//! Table chunks are the morsels. Worker threads pull chunk indexes from a
//! shared atomic counter and run the first pipeline segment on each morsel
//! with a *reader* transaction that shares the caller's snapshot id, so
//! every worker observes one consistent snapshot. Results are collected per
//! chunk and merged in chunk order (deterministic output), then the
//! remaining segments (pipeline breakers onward) run sequentially.

use std::sync::atomic::{AtomicUsize, Ordering};

use graphcore::{GraphDb, GraphTxn};
use gstore::PVal;
use parking_lot::Mutex;

use crate::exec::{scan_node_chunk, QueryError};
use crate::plan::{Op, Plan, Row, Slot};

/// Execute a read-only plan starting with `NodeScan` across `nthreads`
/// workers. Falls back to sequential execution for other plan shapes.
pub fn execute_parallel(
    plan: &Plan,
    db: &GraphDb,
    snapshot: &GraphTxn<'_>,
    params: &[PVal],
    nthreads: usize,
) -> Result<Vec<Row>, QueryError> {
    if plan.is_update() {
        return Err(QueryError::BadPlan(
            "parallel execution is read-only".into(),
        ));
    }
    let Some(Op::NodeScan { label }) = plan.ops.first().cloned() else {
        // Not a parallel-scannable access path: run sequentially on a
        // snapshot-sharing reader.
        let mut reader = reader_txn(db, snapshot);
        return crate::exec::execute_collect(plan, &mut reader, params);
    };

    // First segment: everything before the first breaker.
    let cut = plan
        .ops
        .iter()
        .position(Op::is_breaker)
        .unwrap_or(plan.ops.len());
    let pipe = &plan.ops[1..cut];
    let tail = &plan.ops[cut..];

    let chunks = db.nodes().chunk_count();
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Vec<Row>>> = (0..chunks).map(|_| Mutex::new(Vec::new())).collect();
    let error: Mutex<Option<QueryError>> = Mutex::new(None);

    let workers = nthreads.max(1).min(chunks.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut txn = reader_txn(db, snapshot);
                loop {
                    let ci = next.fetch_add(1, Ordering::Relaxed);
                    if ci >= chunks {
                        break;
                    }
                    let mut local: Vec<Row> = Vec::new();
                    let mut sink = |row: &[Slot]| -> Result<(), QueryError> {
                        local.push(row.to_vec());
                        Ok(())
                    };
                    if let Err(e) = scan_node_chunk(ci, label, pipe, &mut txn, params, &mut sink)
                    {
                        *error.lock() = Some(e);
                        break;
                    }
                    *results[ci].lock() = local;
                }
            });
        }
    });
    if let Some(e) = error.into_inner() {
        return Err(e);
    }

    let merged: Vec<Row> = results
        .into_iter()
        .flat_map(|m| m.into_inner())
        .collect();
    if tail.is_empty() {
        return Ok(merged);
    }
    // Remaining segments run sequentially on a reader.
    let mut reader = reader_txn(db, snapshot);
    let mut out = Vec::new();
    let mut sink = |row: &[Slot]| -> Result<(), QueryError> {
        out.push(row.to_vec());
        Ok(())
    };
    crate::exec::exec_segments_pub(tail, &mut reader, params, Some(merged), &mut sink)?;
    Ok(out)
}

fn reader_txn<'db>(db: &'db GraphDb, snapshot: &GraphTxn<'_>) -> GraphTxn<'db> {
    db.reader_at(snapshot.id())
}
