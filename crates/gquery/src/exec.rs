//! The push-based interpreter — the engine's AOT execution mode (§6.1).
//!
//! Every operator is ahead-of-time-compiled Rust; the interpreter walks the
//! plan per row, pushing tuples from each operator to its successor as
//! nested calls, exactly the cascade the paper describes for interpretation
//! mode. Pipeline breakers split the plan into segments with buffers in
//! between.

use std::fmt;

use graphcore::{Dir, GraphError, GraphTxn, PropOwner};
use gstore::PVal;
use gtxn::TableTag;

use crate::plan::{split_first_segment, CmpOp, Op, Plan, Pred, Proj, RelEnd, Row, Slot};
use crate::pushdown::Pushdown;
use crate::sched::{CompiledPred, ExprSlot};

/// Errors during query execution.
#[derive(Debug)]
pub enum QueryError {
    /// Engine/transaction error (conflicts abort the query's transaction).
    Graph(GraphError),
    /// The plan is structurally invalid for the interpreter.
    BadPlan(String),
    /// JIT compilation or compiled execution failed (converted from
    /// `gjit::JitError` so servers can match on it structurally).
    Jit(String),
    /// The execution context's deadline elapsed mid-query. Maps to the
    /// retryable `DEADLINE_EXCEEDED` protocol error.
    DeadlineExceeded,
    /// The execution context's cancellation flag was raised.
    Cancelled,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Graph(e) => write!(f, "query failed: {e}"),
            QueryError::BadPlan(m) => write!(f, "bad plan: {m}"),
            QueryError::Jit(m) => write!(f, "jit error: {m}"),
            QueryError::DeadlineExceeded => write!(f, "deadline elapsed during execution"),
            QueryError::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<GraphError> for QueryError {
    fn from(e: GraphError) -> Self {
        QueryError::Graph(e)
    }
}

type Sink<'s> = &'s mut dyn FnMut(&[Slot]) -> Result<(), QueryError>;

/// Execute a plan in the given transaction, pushing result rows to `sink`.
/// Returns the number of emitted rows.
pub fn execute(
    plan: &Plan,
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
    mut sink: impl FnMut(&[Slot]),
) -> Result<u64, QueryError> {
    assert!(
        params.len() >= plan.n_params,
        "plan expects {} params, got {}",
        plan.n_params,
        params.len()
    );
    let mut count = 0u64;
    let mut wrapped = |row: &[Slot]| -> Result<(), QueryError> {
        count += 1;
        sink(row);
        Ok(())
    };
    let mut hook = ResidualHook::new(None);
    exec_segments(&plan.ops, txn, params, None, &mut hook, &mut wrapped)?;
    Ok(count)
}

/// Execute and collect all rows.
pub fn execute_collect(
    plan: &Plan,
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
) -> Result<Vec<Row>, QueryError> {
    let mut rows = Vec::new();
    execute(plan, txn, params, |r| rows.push(r.to_vec()))?;
    Ok(rows)
}

/// Run the remaining operators (typically breakers and post-breaker
/// segments) over pre-buffered rows. Used by the parallel executor and by
/// the JIT driver, which compiles the first pipeline segment to machine
/// code and hands its output back here.
pub fn execute_prebuffered(
    ops: &[Op],
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
    rows: Vec<Row>,
    sink: &mut dyn FnMut(&[Slot]) -> Result<(), QueryError>,
) -> Result<(), QueryError> {
    let mut hook = ResidualHook::new(None);
    exec_segments(ops, txn, params, Some(rows), &mut hook, sink)
}

/// Crate-internal re-export for the parallel executor's tail segments.
pub(crate) fn exec_segments_pub(
    ops: &[Op],
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
    input: Option<Vec<Row>>,
    sink: Sink<'_>,
) -> Result<(), QueryError> {
    let mut hook = ResidualHook::new(None);
    exec_segments(ops, txn, params, input, &mut hook, sink)
}

/// The sequential executor's view of the expression-compilation tier
/// (see `gjit::expr`): an optional slot a compiled residual predicate may
/// be published into mid-run, plus counters for how many scan rows went
/// through the interpreted vs compiled residual pipeline. The slot is
/// re-resolved per chunk, so the interpret → compiled switch lands the
/// same way it does in the morsel scheduler.
pub(crate) struct ResidualHook<'h> {
    pub slot: Option<&'h ExprSlot>,
    pub interp_rows: u64,
    pub compiled_rows: u64,
}

impl<'h> ResidualHook<'h> {
    pub fn new(slot: Option<&'h ExprSlot>) -> Self {
        ResidualHook {
            slot,
            interp_rows: 0,
            compiled_rows: 0,
        }
    }
}

/// [`exec_segments_pub`] with an expression-tier hook — the entry used by
/// `sched::execute_collect_ctx` so Interp-mode queries pick up compiled
/// residual filters and report the interp/compiled row split.
pub(crate) fn exec_segments_hook(
    ops: &[Op],
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
    input: Option<Vec<Row>>,
    hook: &mut ResidualHook<'_>,
    sink: Sink<'_>,
) -> Result<(), QueryError> {
    exec_segments(ops, txn, params, input, hook, sink)
}

/// Execute operator list split at pipeline breakers. `input` is `None` for
/// the first segment (which must start with an access path) and the
/// buffered rows afterwards.
fn exec_segments(
    ops: &[Op],
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
    input: Option<Vec<Row>>,
    hook: &mut ResidualHook<'_>,
    sink: Sink<'_>,
) -> Result<(), QueryError> {
    let (pipe, tail) = split_first_segment(ops);
    match tail.split_first() {
        None => exec_pipeline(pipe, txn, params, input, hook, sink),
        Some((breaker, rest)) => {
            let mut buf: Vec<Row> = Vec::new();
            {
                let mut collect = |row: &[Slot]| -> Result<(), QueryError> {
                    buf.push(row.to_vec());
                    Ok(())
                };
                exec_pipeline(pipe, txn, params, input, hook, &mut collect)?;
            }
            let buf = apply_breaker(breaker, buf, txn, params)?;
            // Only the first segment has an access path; later segments
            // replay buffered rows, where the compiled residual expression
            // (anchored to the leading scan's filters) no longer applies.
            let mut tail_hook = ResidualHook::new(None);
            exec_segments(rest, txn, params, Some(buf), &mut tail_hook, sink)
        }
    }
}

fn apply_breaker(
    op: &Op,
    mut buf: Vec<Row>,
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
) -> Result<Vec<Row>, QueryError> {
    match op {
        Op::OrderBy { key, desc } => {
            let mut keyed: Vec<(u64, Row)> = buf
                .into_iter()
                .map(|row| {
                    let k = eval_proj(key, &row, txn, params)?;
                    Ok((sort_key(&k), row))
                })
                .collect::<Result<_, QueryError>>()?;
            keyed.sort_by_key(|(k, _)| *k);
            if *desc {
                keyed.reverse();
            }
            Ok(keyed.into_iter().map(|(_, r)| r).collect())
        }
        Op::Limit(n) => {
            buf.truncate(*n);
            Ok(buf)
        }
        Op::Count => Ok(vec![vec![Slot::val(PVal::Int(buf.len() as i64))]]),
        Op::Distinct => {
            let mut seen = std::collections::HashSet::new();
            buf.retain(|row| {
                let key: Vec<(u8, u64)> = row.iter().map(|s| (s.tag, s.val)).collect();
                seen.insert(key)
            });
            Ok(buf)
        }
        _ => unreachable!("not a breaker"),
    }
}

/// Stable total order for sort keys: nulls first, then entities by id,
/// then values by order-preserving encoding.
fn sort_key(s: &Slot) -> u64 {
    match s.as_pval() {
        Some(p) => p.index_key(),
        None => s.val,
    }
}

fn exec_pipeline(
    ops: &[Op],
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
    input: Option<Vec<Row>>,
    hook: &mut ResidualHook<'_>,
    sink: Sink<'_>,
) -> Result<(), QueryError> {
    match input {
        Some(rows) => {
            for row in rows {
                push(ops, txn, params, &row, sink)?;
            }
            Ok(())
        }
        None => {
            if ops.is_empty() {
                return Err(QueryError::BadPlan("empty pipeline".into()));
            }
            exec_access_path(ops, txn, params, hook, sink)
        }
    }
}

/// Run the access-path operator (first in the pipeline) and push rows
/// through the rest.
fn exec_access_path(
    ops: &[Op],
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
    hook: &mut ResidualHook<'_>,
    sink: Sink<'_>,
) -> Result<(), QueryError> {
    let rest = &ops[1..];
    match &ops[0] {
        Op::Once => push(rest, txn, params, &[], sink),
        Op::NodeScan { label } => {
            // Chunk pruning via zone maps; the residual predicate still
            // runs per row inside the pipeline, so results are identical
            // with acceleration on or off.
            let pd = Pushdown::extract(ops, params);
            let chunks = txn.db().nodes().chunk_count();
            for ci in 0..chunks {
                if !pd.node_chunk_survives(txn.db().accel(), ci) {
                    continue;
                }
                // Re-resolved per chunk: a compiled expression published
                // mid-scan takes over for the remaining chunks.
                let expr = hook.slot.and_then(ExprSlot::get);
                let (_, rows, compiled) =
                    scan_node_chunk(ci, *label, rest, txn, params, expr, sink)?;
                if compiled {
                    hook.compiled_rows += rows;
                } else {
                    hook.interp_rows += rows;
                }
            }
            Ok(())
        }
        Op::RelScan { label } => {
            let pd = Pushdown::extract(ops, params);
            let chunks = txn.db().rels().chunk_count();
            for ci in 0..chunks {
                if !pd.rel_chunk_survives(txn.db().accel(), ci) {
                    continue;
                }
                let expr = hook.slot.and_then(ExprSlot::get);
                let (_, rows, compiled) =
                    scan_rel_chunk(ci, *label, rest, txn, params, expr, sink)?;
                if compiled {
                    hook.compiled_rows += rows;
                } else {
                    hook.interp_rows += rows;
                }
            }
            Ok(())
        }
        Op::IndexRangeScan { label, key, lo, hi } => {
            let lo = lo.resolve(params).index_key();
            let hi = hi.resolve(params).index_key();
            for id in range_candidates(txn, *label, *key, lo, hi) {
                push_range_candidate(id, *label, *key, lo, hi, rest, txn, params, sink)?;
            }
            Ok(())
        }
        Op::IndexScan { label, key, value } => {
            let pv = value.resolve(params);
            let ids = index_candidates(txn, *label, *key, pv)?;
            for id in ids {
                if let Some(n) = txn.node(id)? {
                    if n.label == *label
                        && txn.prop_pval(PropOwner::Node(id), *key)? == Some(pv)
                    {
                        push(rest, txn, params, &[Slot::node(id)], sink)?;
                    }
                }
            }
            Ok(())
        }
        Op::NodeById { id } => {
            let pv = id.resolve(params);
            let PVal::Int(raw) = pv else {
                return Err(QueryError::BadPlan("NodeById expects an Int id".into()));
            };
            if raw >= 0
                && txn.node(raw as u64)?.is_some() {
                    push(rest, txn, params, &[Slot::node(raw as u64)], sink)?;
                }
            Ok(())
        }
        other => Err(QueryError::BadPlan(format!(
            "operator {other:?} cannot start a pipeline"
        ))),
    }
}

/// Split the leading run of `Op::Filter`s off a residual pipeline — the
/// exact conjuncts a compiled residual expression stands in for (the
/// attach side folds the same run into one `Pred::And` chain, so both
/// agree on how many operators the compiled function replaces).
fn split_leading_filters(rest: &[Op]) -> (usize, &[Op]) {
    let nf = rest
        .iter()
        .take_while(|op| matches!(op, Op::Filter(_)))
        .count();
    (nf, &rest[nf..])
}

/// Morsel entry point: run the pipeline on one node-table chunk (used by
/// the morsel scheduler in [`crate::sched`]). Tries to claim the MVTO
/// single-version fast path for the chunk first; clean chunks are read
/// straight from record bytes, dirty ones through the full version-chain
/// protocol. When `expr` is present and the residual pipeline opens with
/// filters, the compiled expression replaces that leading filter run.
/// Returns `(fast path claimed, rows handed to the residual pipeline,
/// compiled expression used)`.
pub(crate) fn scan_node_chunk(
    chunk: usize,
    label: Option<u32>,
    rest: &[Op],
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
    expr: Option<&CompiledPred>,
    sink: Sink<'_>,
) -> Result<(bool, u64, bool), QueryError> {
    let fast = txn.try_fast_chunk(TableTag::Node, chunk);
    let (nf, after) = split_leading_filters(rest);
    let expr = if nf > 0 { expr } else { None };
    let mut ids = Vec::with_capacity(64);
    txn.db().nodes().for_each_live_id(chunk, &mut |id| ids.push(id));
    let mut rows = 0u64;
    for id in ids {
        let n = if fast { txn.node_fast(id)? } else { txn.node(id)? };
        if let Some(n) = n {
            if label.is_none_or(|l| n.label == l) {
                rows += 1;
                let row = [Slot::node(id)];
                match expr {
                    Some(e) => {
                        if e(txn, params, &row)? {
                            push(after, txn, params, &row, sink)?;
                        }
                    }
                    None => push(rest, txn, params, &row, sink)?,
                }
            }
        }
    }
    Ok((fast, rows, expr.is_some()))
}

/// Morsel entry point: run the pipeline on one relationship-table chunk
/// (same fast-path and compiled-expression contract as
/// [`scan_node_chunk`]).
pub(crate) fn scan_rel_chunk(
    chunk: usize,
    label: Option<u32>,
    rest: &[Op],
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
    expr: Option<&CompiledPred>,
    sink: Sink<'_>,
) -> Result<(bool, u64, bool), QueryError> {
    let fast = txn.try_fast_chunk(TableTag::Rel, chunk);
    let (nf, after) = split_leading_filters(rest);
    let expr = if nf > 0 { expr } else { None };
    let mut ids = Vec::with_capacity(64);
    txn.db().rels().for_each_live_id(chunk, &mut |id| ids.push(id));
    let mut rows = 0u64;
    for id in ids {
        let r = if fast { txn.rel_fast(id)? } else { txn.rel(id)? };
        if let Some(r) = r {
            if label.is_none_or(|l| r.label == l) {
                rows += 1;
                let row = [Slot::rel(id)];
                match expr {
                    Some(e) => {
                        if e(txn, params, &row)? {
                            push(after, txn, params, &row, sink)?;
                        }
                    }
                    None => push(rest, txn, params, &row, sink)?,
                }
            }
        }
    }
    Ok((fast, rows, expr.is_some()))
}

/// Candidate node ids for an `IndexRangeScan` with resolved key bounds, in
/// deterministic order: key order from the B+-tree, or id order from the
/// whole-table fallback when no index exists. Candidates are raw (caller
/// re-checks visibility, label, and the actual property value) — the same
/// contract as [`index_candidates`]. Both the sequential interpreter and
/// the morsel scheduler build their work lists here, so parallel batches
/// concatenate to exactly the sequential order.
pub(crate) fn range_candidates(
    txn: &GraphTxn<'_>,
    label: u32,
    key: u32,
    lo: u64,
    hi: u64,
) -> Vec<u64> {
    if lo > hi {
        return Vec::new();
    }
    if let Some(ids) = txn.db().index_range(label, key, lo, hi) {
        return ids;
    }
    let mut out = Vec::new();
    let nodes = txn.db().nodes();
    for ci in 0..nodes.chunk_count() {
        nodes.for_each_live_id(ci, &mut |id| out.push(id));
    }
    out
}

/// Re-check one range candidate (visibility, label, key within bounds) and
/// push it through the pipeline — shared by the sequential path and the
/// index-range morsel source.
#[allow(clippy::too_many_arguments)]
pub(crate) fn push_range_candidate(
    id: u64,
    label: u32,
    key: u32,
    lo: u64,
    hi: u64,
    rest: &[Op],
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
    sink: Sink<'_>,
) -> Result<(), QueryError> {
    let Some(n) = txn.node(id)? else {
        return Ok(());
    };
    if n.label != label {
        return Ok(());
    }
    let Some(pv) = txn.prop_pval(PropOwner::Node(id), key)? else {
        return Ok(());
    };
    let k = pv.index_key();
    if k >= lo && k <= hi {
        push(rest, txn, params, &[Slot::node(id)], sink)?;
    }
    Ok(())
}

fn index_candidates(
    txn: &GraphTxn<'_>,
    label: u32,
    key: u32,
    pv: PVal,
) -> Result<Vec<u64>, QueryError> {
    if let Some(tree) = txn.db().index_for(label, key) {
        Ok(tree.lookup(pv.index_key()))
    } else {
        // No index: scan fallback (candidates filtered by the caller).
        let mut out = Vec::new();
        let nodes = txn.db().nodes();
        for ci in 0..nodes.chunk_count() {
            nodes.for_each_live_id(ci, &mut |id| out.push(id));
        }
        Ok(out)
    }
}

/// Push one row through the (non-breaker) operator chain.
pub(crate) fn push(
    ops: &[Op],
    txn: &mut GraphTxn<'_>,
    params: &[PVal],
    row: &[Slot],
    sink: Sink<'_>,
) -> Result<(), QueryError> {
    let Some((op, rest)) = ops.split_first() else {
        return sink(row);
    };
    match op {
        Op::ForeachRel { col, dir, label } => {
            let node = entity(row, *col, "ForeachRel")?;
            // Collect first: the traversal borrows txn immutably while the
            // continuation may need it mutably (update pipelines).
            let rels = txn.rels_of(node, *dir, *label)?;
            for (rid, _) in rels {
                let mut next = row.to_vec();
                next.push(Slot::rel(rid));
                push(rest, txn, params, &next, sink)?;
            }
            Ok(())
        }
        Op::GetNode { col, end } => {
            let rid = row
                .get(*col)
                .and_then(Slot::as_rel)
                .ok_or_else(|| QueryError::BadPlan(format!("column {col} is not a rel")))?;
            let r = txn.rel(rid)?.ok_or(GraphError::RelNotFound(rid))?;
            let node = match end {
                RelEnd::Src => r.src,
                RelEnd::Dst => r.dst,
                RelEnd::Other(c) => {
                    let anchor = entity(row, *c, "GetNode::Other")?;
                    if r.src == anchor {
                        r.dst
                    } else {
                        r.src
                    }
                }
            };
            let mut next = row.to_vec();
            next.push(Slot::node(node));
            push(rest, txn, params, &next, sink)
        }
        Op::IndexProbe { label, key, value } => {
            let pv = value.resolve(params);
            let ids = index_candidates(txn, *label, *key, pv)?;
            for id in ids {
                if let Some(n) = txn.node(id)? {
                    if n.label == *label
                        && txn.prop_pval(PropOwner::Node(id), *key)? == Some(pv)
                    {
                        let mut next = row.to_vec();
                        next.push(Slot::node(id));
                        push(rest, txn, params, &next, sink)?;
                    }
                }
            }
            Ok(())
        }
        Op::Filter(pred) => {
            if eval_pred(pred, row, txn, params)? {
                push(rest, txn, params, row, sink)
            } else {
                Ok(())
            }
        }
        Op::Project(projs) => {
            let mut next = Vec::with_capacity(projs.len());
            for p in projs {
                next.push(eval_proj(p, row, txn, params)?);
            }
            push(rest, txn, params, &next, sink)
        }
        Op::CreateNode { label, props } => {
            let resolved: Vec<(u32, PVal)> =
                props.iter().map(|(k, v)| (*k, v.resolve(params))).collect();
            let id = txn.create_node_coded(*label, &resolved)?;
            let mut next = row.to_vec();
            next.push(Slot::node(id));
            push(rest, txn, params, &next, sink)
        }
        Op::CreateRel {
            src_col,
            dst_col,
            label,
            props,
        } => {
            let src = entity(row, *src_col, "CreateRel.src")?;
            let dst = entity(row, *dst_col, "CreateRel.dst")?;
            let resolved: Vec<(u32, PVal)> =
                props.iter().map(|(k, v)| (*k, v.resolve(params))).collect();
            let id = txn.create_rel_coded(src, *label, dst, &resolved)?;
            let mut next = row.to_vec();
            next.push(Slot::rel(id));
            push(rest, txn, params, &next, sink)
        }
        Op::SetProp { col, key, value } => {
            let owner = owner_of(row, *col)?;
            txn.set_prop_coded(owner, *key, value.resolve(params))?;
            push(rest, txn, params, row, sink)
        }
        other => Err(QueryError::BadPlan(format!(
            "operator {other:?} not valid mid-pipeline"
        ))),
    }
}

fn entity(row: &[Slot], col: usize, what: &str) -> Result<u64, QueryError> {
    row.get(col)
        .and_then(Slot::as_node)
        .ok_or_else(|| QueryError::BadPlan(format!("{what}: column {col} is not a node")))
}

fn owner_of(row: &[Slot], col: usize) -> Result<PropOwner, QueryError> {
    let slot = row
        .get(col)
        .ok_or_else(|| QueryError::BadPlan(format!("column {col} out of range")))?;
    if let Some(id) = slot.as_node() {
        Ok(PropOwner::Node(id))
    } else if let Some(id) = slot.as_rel() {
        Ok(PropOwner::Rel(id))
    } else {
        Err(QueryError::BadPlan(format!(
            "column {col} is not an entity"
        )))
    }
}

fn prop_of(
    row: &[Slot],
    col: usize,
    key: u32,
    txn: &GraphTxn<'_>,
) -> Result<Option<PVal>, QueryError> {
    let owner = owner_of(row, col)?;
    Ok(txn.prop_pval(owner, key)?)
}

/// Evaluate a predicate on a row. Public because the expression-
/// compilation tier (`gjit::expr`) and its differential tests use this as
/// the semantic reference for compiled predicates.
pub fn eval_pred(
    pred: &Pred,
    row: &[Slot],
    txn: &GraphTxn<'_>,
    params: &[PVal],
) -> Result<bool, QueryError> {
    Ok(match pred {
        Pred::Prop {
            col,
            key,
            op,
            value,
        } => match prop_of(row, *col, *key, txn)? {
            Some(actual) => {
                let expect = value.resolve(params);
                if *op == CmpOp::Eq {
                    actual == expect
                } else if *op == CmpOp::Ne {
                    actual != expect
                } else {
                    op.eval_u64(actual.index_key(), expect.index_key())
                }
            }
            None => false,
        },
        Pred::LabelIs { col, label } => {
            let owner = owner_of(row, *col)?;
            match owner {
                PropOwner::Node(id) => txn.node(id)?.is_some_and(|n| n.label == *label),
                PropOwner::Rel(id) => txn.rel(id)?.is_some_and(|r| r.label == *label),
            }
        }
        Pred::ColEq { a, b } => {
            let sa = row.get(*a).ok_or_else(|| bad_col(*a))?;
            let sb = row.get(*b).ok_or_else(|| bad_col(*b))?;
            sa.tag == sb.tag && sa.val == sb.val
        }
        Pred::ColNe { a, b } => {
            let sa = row.get(*a).ok_or_else(|| bad_col(*a))?;
            let sb = row.get(*b).ok_or_else(|| bad_col(*b))?;
            !(sa.tag == sb.tag && sa.val == sb.val)
        }
        Pred::Connected { a, b, label } => {
            connected(row, *a, *b, *label, txn)?
        }
        Pred::And(l, r) => {
            eval_pred(l, row, txn, params)? && eval_pred(r, row, txn, params)?
        }
        Pred::Or(l, r) => eval_pred(l, row, txn, params)? || eval_pred(r, row, txn, params)?,
        Pred::Not(x) => !eval_pred(x, row, txn, params)?,
    })
}

fn connected(
    row: &[Slot],
    a: usize,
    b: usize,
    label: u32,
    txn: &GraphTxn<'_>,
) -> Result<bool, QueryError> {
    let na = entity(row, a, "Connected.a")?;
    let nb = entity(row, b, "Connected.b")?;
    // Stream the adjacency lists with early exit — probing one edge must
    // not materialize a hub node's full neighbourhood.
    if txn.any_rel(na, Dir::Out, Some(label), |_, r| r.dst == nb)? {
        return Ok(true);
    }
    txn.any_rel(na, Dir::In, Some(label), |_, r| r.src == nb)
        .map_err(QueryError::from)
}

fn bad_col(col: usize) -> QueryError {
    QueryError::BadPlan(format!("column {col} out of range"))
}

/// Evaluate a projection expression on a row.
pub(crate) fn eval_proj(
    proj: &Proj,
    row: &[Slot],
    txn: &GraphTxn<'_>,
    _params: &[PVal],
) -> Result<Slot, QueryError> {
    Ok(match proj {
        Proj::Col(c) => *row.get(*c).ok_or_else(|| bad_col(*c))?,
        Proj::Prop { col, key } => match prop_of(row, *col, *key, txn)? {
            Some(p) => Slot::val(p),
            None => Slot::NULL,
        },
        Proj::Label { col } => {
            let owner = owner_of(row, *col)?;
            let label = match owner {
                PropOwner::Node(id) => {
                    txn.node(id)?.ok_or(GraphError::NodeNotFound(id))?.label
                }
                PropOwner::Rel(id) => txn.rel(id)?.ok_or(GraphError::RelNotFound(id))?.label,
            };
            Slot::val(PVal::Int(label as i64))
        }
        Proj::Id { col } => {
            let slot = row.get(*col).ok_or_else(|| bad_col(*col))?;
            Slot::val(PVal::Int(slot.val as i64))
        }
        Proj::ConnectedFlag { a, b, label } => {
            Slot::val(PVal::Bool(connected(row, *a, *b, *label, txn)?))
        }
    })
}
