//! Push-based graph-algebra query engine (paper §6.1) — the AOT execution
//! mode.
//!
//! Queries are linear operator pipelines over [`Slot`] rows, pushed from an
//! access path (`NodeScan`, `RelScan`, `IndexScan`, `IndexRangeScan`,
//! `NodeById`, `Once`) through traversal ([`Op::ForeachRel`],
//! [`Op::GetNode`]), filter, projection and update operators. Pipeline
//! breakers (`OrderBy`, `Limit`, `Count`) buffer between pipeline segments,
//! exactly the structure the JIT compiler in `gjit` turns into one
//! machine-code function per segment.
//!
//! Parallel execution follows the paper's morsel-driven approach (§6.1,
//! Leis et al.) and lives in [`sched`]: one scheduler with pluggable
//! [`sched::MorselSource`]s (node chunks, relationship chunks, index-range
//! batches) and a swappable task function, consumed by the parallel
//! interpreter, the adaptive JIT driver and the query server alike. An
//! [`sched::ExecCtx`] threads parameters, deadline, cancellation and a
//! per-query [`sched::ExecProfile`] through every mode.

pub mod exec;
pub mod parallel;
pub mod plan;
pub mod pushdown;
pub mod sched;
pub mod shard;

pub use exec::{eval_pred, execute, execute_collect, execute_prebuffered, QueryError};
pub use parallel::{execute_parallel, execute_parallel_ctx};
pub use plan::{
    pred_fingerprint, split_first_segment, CmpOp, Op, PPar, Plan, Pred, Proj, RelEnd, Row, Slot,
    SlotTag,
};
pub use pushdown::Pushdown;
pub use sched::{
    execute_collect_ctx, execute_morsels, morsel_eligible, parallel_for, CompiledPred,
    CompiledTask, ExecCtx, ExecMode, ExecProfile, ExprSlot, FallbackReason, MorselSource, TaskSlot,
};
pub use shard::{for_each_node_parallel, for_each_rel_parallel, ShardMorsel, ShardReaders};
