//! Push-based graph-algebra query engine (paper §6.1) — the AOT execution
//! mode.
//!
//! Queries are linear operator pipelines over [`Slot`] rows, pushed from an
//! access path (`NodeScan`, `IndexScan`, `NodeById`, `Once`) through
//! traversal ([`Op::ForeachRel`], [`Op::GetNode`]), filter, projection and
//! update operators. Pipeline breakers (`OrderBy`, `Limit`, `Count`) buffer
//! between pipeline segments, exactly the structure the JIT compiler in
//! `gjit` turns into one machine-code function per segment.
//!
//! Parallel execution follows the paper's morsel-driven approach (§6.1,
//! Leis et al.): table chunks are the morsels; worker threads pull chunk
//! ranges from a shared counter and run the whole pipeline segment on each
//! morsel.

pub mod exec;
pub mod parallel;
pub mod plan;

pub use exec::{execute, execute_collect, execute_prebuffered, run_scan_morsel, QueryError};
pub use parallel::execute_parallel;
pub use plan::{CmpOp, Op, PPar, Plan, Pred, Proj, Row, Slot, SlotTag};
