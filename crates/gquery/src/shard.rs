//! Shard-aware morsel fan-out (DESIGN.md §13).
//!
//! The morsel scheduler in [`crate::sched`] dispatches over one
//! [`GraphDb`]'s chunk space. A sharded database is N such spaces, so the
//! natural morsel list is the concatenation of every shard's chunks: one
//! `(shard, chunk)` pair per morsel, pulled by the same worker pool
//! through [`parallel_for`]. Workers on different shards touch disjoint
//! pools — no shared tables, no shared version chains — so the fan-out
//! scales with shards as well as with cores.
//!
//! These helpers open one MVTO reader per shard, enumerate the combined
//! morsel list and drive visibility-checked scans that surface **global**
//! ids (the router's `gid = lid * N + shard` encoding). The sharded CSR
//! build (`ganalytics`) and shard-local aggregate queries both consume
//! this; the single-`GraphDb` scheduler is untouched.

use graphcore::shard::{self, ShardedDb};
use graphcore::{GraphTxn, NodeId, RelId};
use gstore::{NodeRecord, RelRecord};
use gtxn::TableTag;

use crate::exec::QueryError;
use crate::sched::{parallel_for, ExecCtx};

/// One unit of shard-aware work: a chunk of one table in one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMorsel {
    pub shard: usize,
    pub chunk: usize,
}

/// One reader transaction per shard, begun together so a scan observes
/// each shard at a single MVTO timestamp (per-shard snapshot isolation —
/// the same consistency the sharded CSR build provides).
pub struct ShardReaders<'d> {
    db: &'d ShardedDb,
    txns: Vec<GraphTxn<'d>>,
}

impl<'d> ShardReaders<'d> {
    pub fn begin(db: &'d ShardedDb) -> ShardReaders<'d> {
        ShardReaders {
            db,
            txns: (0..db.shard_count()).map(|i| db.shard(i).begin()).collect(),
        }
    }

    /// The reader pinned to one shard.
    pub fn txn(&self, shard: usize) -> &GraphTxn<'d> {
        &self.txns[shard]
    }

    /// The sharded database the readers observe.
    pub fn db(&self) -> &'d ShardedDb {
        self.db
    }

    /// The combined morsel list for one table: every shard's chunks.
    pub fn morsels(&self, tag: TableTag) -> Vec<ShardMorsel> {
        let mut out = Vec::new();
        for shard in 0..self.db.shard_count() {
            let gdb = self.db.shard(shard);
            let chunks = match tag {
                TableTag::Node => gdb.nodes().chunk_count(),
                TableTag::Rel => gdb.rels().chunk_count(),
            };
            out.extend((0..chunks).map(|chunk| ShardMorsel { shard, chunk }));
        }
        out
    }

    /// Commit every reader (read-only: publishes `rts`, frees nothing).
    pub fn finish(self) -> Result<(), QueryError> {
        for txn in self.txns {
            txn.commit().map_err(QueryError::Graph)?;
        }
        Ok(())
    }
}

/// Visit every visible node across all shards with `workers` threads:
/// `f(global id, &record)`. Morsels are `(shard, chunk)` pairs pulled from
/// one shared queue, so load balances across shards and cores at once.
pub fn for_each_node_parallel(
    readers: &ShardReaders<'_>,
    workers: usize,
    ctx: &ExecCtx<'_>,
    f: impl Fn(NodeId, &NodeRecord) -> Result<(), QueryError> + Sync,
) -> Result<(), QueryError> {
    let db = readers.db();
    let router = db.router();
    let morsels = readers.morsels(TableTag::Node);
    parallel_for(workers, morsels.len(), ctx, |m| {
        let ShardMorsel { shard, chunk } = morsels[m];
        let gdb = db.shard(shard);
        let txn = readers.txn(shard);
        let fast = txn.try_fast_chunk(TableTag::Node, chunk);
        let mut ids = Vec::new();
        gdb.nodes().for_each_live_id(chunk, &mut |id| ids.push(id));
        for id in ids {
            let rec = if fast { txn.node_fast(id) } else { txn.node(id) }
                .map_err(QueryError::Graph)?;
            if let Some(rec) = rec {
                f(router.global_of(shard, id), &rec)?;
            }
        }
        Ok(())
    })
}

/// Visit every visible relationship across all shards with `workers`
/// threads: `f(rel gid, src gid, dst gid, &record)`. Each cross-shard
/// edge is reported **once**, from its owning (source) shard — mirror
/// halves are skipped, matching the sharded CSR build's convention.
pub fn for_each_rel_parallel(
    readers: &ShardReaders<'_>,
    workers: usize,
    ctx: &ExecCtx<'_>,
    f: impl Fn(RelId, NodeId, NodeId, &RelRecord) -> Result<(), QueryError> + Sync,
) -> Result<(), QueryError> {
    let db = readers.db();
    let router = db.router();
    let morsels = readers.morsels(TableTag::Rel);
    parallel_for(workers, morsels.len(), ctx, |m| {
        let ShardMorsel { shard, chunk } = morsels[m];
        let gdb = db.shard(shard);
        let txn = readers.txn(shard);
        let fast = txn.try_fast_chunk(TableTag::Rel, chunk);
        let mut ids = Vec::new();
        gdb.rels().for_each_live_id(chunk, &mut |id| ids.push(id));
        for id in ids {
            let rec = if fast { txn.rel_fast(id) } else { txn.rel(id) }
                .map_err(QueryError::Graph)?;
            if let Some(rec) = rec {
                if shard::is_remote(rec.src) {
                    continue; // mirror in-half; the source shard owns it
                }
                f(
                    router.global_of(shard, id),
                    db.endpoint_global(shard, rec.src),
                    db.endpoint_global(shard, rec.dst),
                    &rec,
                )?;
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::shard::ShardOptions;
    use graphcore::Value;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    fn ring_db(shards: usize, n: usize) -> (ShardedDb, Vec<NodeId>) {
        let db = ShardedDb::create(ShardOptions::dram(48 << 20).shards(shards)).unwrap();
        let mut tx = db.begin();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| tx.create_node("N", &[("i", Value::Int(i as i64))]).unwrap())
            .collect();
        for i in 0..n {
            tx.create_rel(ids[i], "E", ids[(i + 1) % n], &[]).unwrap();
        }
        tx.commit().unwrap();
        (db, ids)
    }

    #[test]
    fn node_fanout_visits_every_shard_once() {
        let (db, ids) = ring_db(4, 10);
        let readers = ShardReaders::begin(&db);
        let ctx = ExecCtx::new(&[]);
        let seen = Mutex::new(BTreeSet::new());
        for_each_node_parallel(&readers, 3, &ctx, |gid, rec| {
            assert!(rec.label > 0);
            assert!(seen.lock().unwrap().insert(gid), "node {gid} visited twice");
            Ok(())
        })
        .unwrap();
        readers.finish().unwrap();
        let expect: BTreeSet<NodeId> = ids.into_iter().collect();
        assert_eq!(*seen.lock().unwrap(), expect);
    }

    #[test]
    fn rel_fanout_reports_each_cross_shard_edge_once() {
        let (db, ids) = ring_db(4, 10);
        let readers = ShardReaders::begin(&db);
        let ctx = ExecCtx::new(&[]);
        let seen = Mutex::new(Vec::new());
        for_each_rel_parallel(&readers, 3, &ctx, |_rid, src, dst, _rec| {
            seen.lock().unwrap().push((src, dst));
            Ok(())
        })
        .unwrap();
        readers.finish().unwrap();
        let mut got = seen.into_inner().unwrap();
        got.sort_unstable();
        let mut expect: Vec<(NodeId, NodeId)> =
            (0..10).map(|i| (ids[i], ids[(i + 1) % 10])).collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "ring edges, each exactly once, global ids");
    }

    #[test]
    fn single_shard_fanout_matches_unsharded_ids() {
        let (db, ids) = ring_db(1, 5);
        let readers = ShardReaders::begin(&db);
        assert_eq!(readers.morsels(TableTag::Node).len(), db.shard(0).nodes().chunk_count());
        let ctx = ExecCtx::new(&[]);
        let seen = Mutex::new(BTreeSet::new());
        for_each_node_parallel(&readers, 2, &ctx, |gid, _| {
            seen.lock().unwrap().insert(gid);
            Ok(())
        })
        .unwrap();
        // gid == lid when N = 1.
        assert_eq!(*seen.lock().unwrap(), ids.into_iter().collect::<BTreeSet<_>>());
    }
}
