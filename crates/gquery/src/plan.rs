//! Graph-algebra plans: operators, predicates, projections, parameters.
//!
//! Plans are *parameterised*: literal positions may reference a parameter
//! slot instead of a constant, so one plan shape serves many invocations.
//! The [`Plan::fingerprint`] hashes only the shape — this is the paper's
//! "unique query identifier that comprises the operators' identifiers",
//! used as the key of the persistent query-code cache (§6.2).

use graphcore::Dir;
use gstore::hash::fnv1a;
use gstore::PVal;

/// A tagged 64-bit tuple element. `#[repr(C)]` so JIT-compiled code can
/// build rows on the stack and hand them to the runtime unchanged.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slot {
    pub tag: u8,
    pub val: u64,
}

/// Slot tag values (kept u8-stable for the JIT ABI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SlotTag {
    Null = 0,
    Node = 1,
    Rel = 2,
    /// Property value: `tag = 8 + PVal tag`, `val` = PVal payload.
    Val = 8,
}

impl Slot {
    pub const NULL: Slot = Slot { tag: 0, val: 0 };

    pub fn node(id: u64) -> Slot {
        Slot {
            tag: SlotTag::Node as u8,
            val: id,
        }
    }

    pub fn rel(id: u64) -> Slot {
        Slot {
            tag: SlotTag::Rel as u8,
            val: id,
        }
    }

    pub fn val(p: PVal) -> Slot {
        let (tag, val) = p.encode();
        Slot { tag: 8 + tag, val }
    }

    /// The node id, if this is a node slot.
    pub fn as_node(&self) -> Option<u64> {
        (self.tag == SlotTag::Node as u8).then_some(self.val)
    }

    /// The relationship id, if this is a relationship slot.
    pub fn as_rel(&self) -> Option<u64> {
        (self.tag == SlotTag::Rel as u8).then_some(self.val)
    }

    /// The property value, if this is a value slot.
    pub fn as_pval(&self) -> Option<PVal> {
        if self.tag >= 8 {
            PVal::decode(self.tag - 8, self.val)
        } else {
            None
        }
    }
}

/// A row of slots.
pub type Row = Vec<Slot>;

/// A literal or a parameter reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PPar {
    Const(PVal),
    /// Index into the parameter vector supplied at execution time.
    Param(usize),
}

impl PPar {
    /// Resolve against the parameter vector.
    pub fn resolve(&self, params: &[PVal]) -> PVal {
        match self {
            PPar::Const(p) => *p,
            PPar::Param(i) => params[*i],
        }
    }

    fn shape_hash(&self, h: &mut Vec<u8>) {
        match self {
            // Constants are part of the shape; parameters are holes.
            PPar::Const(p) => {
                let (t, v) = p.encode();
                h.push(1);
                h.push(t);
                h.extend_from_slice(&v.to_le_bytes());
            }
            PPar::Param(i) => {
                h.push(2);
                h.extend_from_slice(&(*i as u64).to_le_bytes());
            }
        }
    }
}

/// Comparison operators for property predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluate on order-preserving u64 encodings.
    pub fn eval_u64(&self, a: u64, b: u64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Filter predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Compare a property of the node/rel in column `col` against a value.
    /// Missing property ⇒ false.
    Prop {
        col: usize,
        key: u32,
        op: CmpOp,
        value: PPar,
    },
    /// The node in `col` has the given label.
    LabelIs { col: usize, label: u32 },
    /// The entity ids in two columns are equal.
    ColEq { a: usize, b: usize },
    /// The entity ids in two columns differ.
    ColNe { a: usize, b: usize },
    /// There is a visible relationship (any direction) with `label`
    /// between the nodes in columns `a` and `b` (IS7's "knows" flag).
    Connected { a: usize, b: usize, label: u32 },
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

/// Projection expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Proj {
    /// Copy a column.
    Col(usize),
    /// A property of the node/rel in `col` (missing ⇒ Null slot).
    Prop { col: usize, key: u32 },
    /// The label code of the node/rel in `col` as an Int value.
    Label { col: usize },
    /// The id of the entity in `col` as an Int value.
    Id { col: usize },
    /// Whether `Connected` holds, as a Bool value (projected flag).
    ConnectedFlag { a: usize, b: usize, label: u32 },
}

/// Which end of a relationship to fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelEnd {
    Src,
    Dst,
    /// The endpoint that is NOT the node in the given column.
    Other(usize),
}

/// Pipeline operators. A plan is a linear `Vec<Op>`; rows flow from the
/// first operator (the access path) to the last.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Access path: emit one empty row (seed for update pipelines).
    Once,
    /// Access path: scan the node table, emitting visible nodes with the
    /// label (or all).
    NodeScan { label: Option<u32> },
    /// Access path: scan the relationship table.
    RelScan { label: Option<u32> },
    /// Access path: B+-tree lookup on `(:label {key} = value)`; falls back
    /// to a scan when no index exists (PMem-s/p vs PMem-i in Fig. 5).
    IndexScan { label: u32, key: u32, value: PPar },
    /// Access path: B+-tree range `(:label {lo <= key <= hi})`, inclusive
    /// on both ends over the order-preserving u64 key encoding. Candidates
    /// come out in key order; without an index the node table is scanned
    /// and filtered. Morsel-parallelisable (candidates are batched).
    IndexRangeScan {
        label: u32,
        key: u32,
        lo: PPar,
        hi: PPar,
    },
    /// Access path: single node by physical id.
    NodeById { id: PPar },
    /// Mid-pipeline index lookup: for each input row, append every node
    /// matching `(:label {key} = value)` (an index nested-loop join; used
    /// by the IU update pipelines to bind a second entity).
    IndexProbe { label: u32, key: u32, value: PPar },
    /// Traverse relationships of the node in `col`; appends a Rel slot.
    ForeachRel {
        col: usize,
        dir: Dir,
        label: Option<u32>,
    },
    /// Fetch an endpoint of the relationship in `col`; appends a Node slot.
    GetNode { col: usize, end: RelEnd },
    /// Keep rows satisfying the predicate.
    Filter(Pred),
    /// Replace the row with projected slots.
    Project(Vec<Proj>),
    /// Pipeline breaker: sort by a projected key.
    OrderBy {
        key: Proj,
        desc: bool,
    },
    /// Pipeline breaker: keep the first `n` rows.
    Limit(usize),
    /// Pipeline breaker: replace all rows with one count row.
    Count,
    /// Remove duplicate rows (breaker).
    Distinct,
    /// Update: create a node; appends its Node slot.
    CreateNode {
        label: u32,
        props: Vec<(u32, PPar)>,
    },
    /// Update: create a relationship between the nodes in two columns;
    /// appends its Rel slot.
    CreateRel {
        src_col: usize,
        dst_col: usize,
        label: u32,
        props: Vec<(u32, PPar)>,
    },
    /// Update: set a property on the node/rel in `col`.
    SetProp {
        col: usize,
        key: u32,
        value: PPar,
    },
}

impl Op {
    /// Breakers buffer all upstream rows before continuing.
    pub fn is_breaker(&self) -> bool {
        matches!(
            self,
            Op::OrderBy { .. } | Op::Limit(_) | Op::Count | Op::Distinct
        )
    }

    /// Update operators mutate the graph.
    pub fn is_update(&self) -> bool {
        matches!(
            self,
            Op::CreateNode { .. } | Op::CreateRel { .. } | Op::SetProp { .. }
        )
    }

    /// Stable operator name for plan summaries and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Once => "Once",
            Op::NodeScan { .. } => "NodeScan",
            Op::RelScan { .. } => "RelScan",
            Op::IndexScan { .. } => "IndexScan",
            Op::IndexRangeScan { .. } => "IndexRangeScan",
            Op::NodeById { .. } => "NodeById",
            Op::IndexProbe { .. } => "IndexProbe",
            Op::ForeachRel { .. } => "ForeachRel",
            Op::GetNode { .. } => "GetNode",
            Op::Filter(_) => "Filter",
            Op::Project(_) => "Project",
            Op::OrderBy { .. } => "OrderBy",
            Op::Limit(_) => "Limit",
            Op::Count => "Count",
            Op::Distinct => "Distinct",
            Op::CreateNode { .. } => "CreateNode",
            Op::CreateRel { .. } => "CreateRel",
            Op::SetProp { .. } => "SetProp",
        }
    }
}

/// A query plan: a linear operator pipeline plus the number of parameters
/// it expects.
///
/// ```
/// use gquery::{Op, PPar, Plan, Pred, CmpOp};
/// use gstore::PVal;
///
/// // MATCH (n:1) WHERE n.k < $0 — same shape for any parameter value:
/// let plan = Plan::new(
///     vec![
///         Op::NodeScan { label: Some(1) },
///         Op::Filter(Pred::Prop { col: 0, key: 2, op: CmpOp::Lt, value: PPar::Param(0) }),
///     ],
///     1,
/// );
/// let fp = plan.fingerprint();
/// assert_eq!(fp, plan.clone().fingerprint()); // stable: the code-cache key
/// assert!(!plan.is_update());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    pub ops: Vec<Op>,
    pub n_params: usize,
}

impl Plan {
    /// Build a plan, validating basic shape invariants.
    pub fn new(ops: Vec<Op>, n_params: usize) -> Plan {
        assert!(!ops.is_empty(), "plan must have at least one operator");
        Plan { ops, n_params }
    }

    /// True if any operator mutates the graph.
    pub fn is_update(&self) -> bool {
        self.ops.iter().any(Op::is_update)
    }

    /// Split at the first pipeline breaker: `(first segment, tail)`. The
    /// first segment is the streaming pipeline every executor compiles or
    /// morsel-parallelises; the tail (the breaker onward) buffers and runs
    /// sequentially. The single source of truth for the cut — executors
    /// must not re-derive it.
    pub fn split_first_segment(&self) -> (&[Op], &[Op]) {
        split_first_segment(&self.ops)
    }

    /// Compact operator-chain summary for the slow-query log and
    /// diagnostics, with the breaker cut marked: operators before the
    /// first breaker (the streaming segment) join with `->`, the buffered
    /// tail follows after `|`, e.g. `NodeScan->Filter | Count`.
    pub fn summary(&self) -> String {
        let (seg, tail) = self.split_first_segment();
        let mut out = seg.iter().map(Op::name).collect::<Vec<_>>().join("->");
        if !tail.is_empty() {
            out.push_str(" | ");
            out.push_str(&tail.iter().map(Op::name).collect::<Vec<_>>().join("->"));
        }
        out
    }

    /// Shape hash: identifies the operator structure with parameter values
    /// masked out. Two invocations of the same query template share a
    /// fingerprint — the key of the JIT code cache (§6.2).
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(64);
        for op in &self.ops {
            hash_op(op, &mut bytes);
        }
        fnv1a(&bytes)
    }
}

/// [`Plan::split_first_segment`] over a raw operator slice (for executors
/// working on sub-pipelines).
pub fn split_first_segment(ops: &[Op]) -> (&[Op], &[Op]) {
    let cut = ops.iter().position(Op::is_breaker).unwrap_or(ops.len());
    ops.split_at(cut)
}

/// Shape hash of a single predicate — the expression-tier analogue of
/// [`Plan::fingerprint`]. Parameter positions are holes, constants are
/// part of the shape, so two invocations of the same residual filter
/// template share a fingerprint. Keys the compiled-expression caches
/// (in-memory and the on-disk `{base}.jitcache`).
pub fn pred_fingerprint(p: &Pred) -> u64 {
    let mut bytes = Vec::with_capacity(32);
    hash_pred(p, &mut bytes);
    fnv1a(&bytes)
}

fn hash_op(op: &Op, h: &mut Vec<u8>) {
    match op {
        Op::Once => h.push(0),
        Op::NodeScan { label } => {
            h.push(1);
            h.extend_from_slice(&label.unwrap_or(0).to_le_bytes());
        }
        Op::RelScan { label } => {
            h.push(2);
            h.extend_from_slice(&label.unwrap_or(0).to_le_bytes());
        }
        Op::IndexScan { label, key, value } => {
            h.push(3);
            h.extend_from_slice(&label.to_le_bytes());
            h.extend_from_slice(&key.to_le_bytes());
            value.shape_hash(h);
        }
        Op::NodeById { id } => {
            h.push(4);
            id.shape_hash(h);
        }
        Op::IndexRangeScan { label, key, lo, hi } => {
            h.push(17);
            h.extend_from_slice(&label.to_le_bytes());
            h.extend_from_slice(&key.to_le_bytes());
            lo.shape_hash(h);
            hi.shape_hash(h);
        }
        Op::IndexProbe { label, key, value } => {
            h.push(16);
            h.extend_from_slice(&label.to_le_bytes());
            h.extend_from_slice(&key.to_le_bytes());
            value.shape_hash(h);
        }
        Op::ForeachRel { col, dir, label } => {
            h.push(5);
            h.push(*col as u8);
            h.push(matches!(dir, Dir::Out) as u8);
            h.extend_from_slice(&label.unwrap_or(0).to_le_bytes());
        }
        Op::GetNode { col, end } => {
            h.push(6);
            h.push(*col as u8);
            match end {
                RelEnd::Src => h.push(0),
                RelEnd::Dst => h.push(1),
                RelEnd::Other(c) => {
                    h.push(2);
                    h.push(*c as u8);
                }
            }
        }
        Op::Filter(p) => {
            h.push(7);
            hash_pred(p, h);
        }
        Op::Project(ps) => {
            h.push(8);
            for p in ps {
                hash_proj(p, h);
            }
        }
        Op::OrderBy { key, desc } => {
            h.push(9);
            hash_proj(key, h);
            h.push(*desc as u8);
        }
        Op::Limit(n) => {
            h.push(10);
            h.extend_from_slice(&(*n as u64).to_le_bytes());
        }
        Op::Count => h.push(11),
        Op::Distinct => h.push(12),
        Op::CreateNode { label, props } => {
            h.push(13);
            h.extend_from_slice(&label.to_le_bytes());
            for (k, v) in props {
                h.extend_from_slice(&k.to_le_bytes());
                v.shape_hash(h);
            }
        }
        Op::CreateRel {
            src_col,
            dst_col,
            label,
            props,
        } => {
            h.push(14);
            h.push(*src_col as u8);
            h.push(*dst_col as u8);
            h.extend_from_slice(&label.to_le_bytes());
            for (k, v) in props {
                h.extend_from_slice(&k.to_le_bytes());
                v.shape_hash(h);
            }
        }
        Op::SetProp { col, key, value } => {
            h.push(15);
            h.push(*col as u8);
            h.extend_from_slice(&key.to_le_bytes());
            value.shape_hash(h);
        }
    }
    h.push(0xFE); // op separator
}

fn hash_pred(p: &Pred, h: &mut Vec<u8>) {
    match p {
        Pred::Prop {
            col,
            key,
            op,
            value,
        } => {
            h.push(20);
            h.push(*col as u8);
            h.extend_from_slice(&key.to_le_bytes());
            h.push(*op as u8);
            value.shape_hash(h);
        }
        Pred::LabelIs { col, label } => {
            h.push(21);
            h.push(*col as u8);
            h.extend_from_slice(&label.to_le_bytes());
        }
        Pred::ColEq { a, b } => {
            h.push(22);
            h.push(*a as u8);
            h.push(*b as u8);
        }
        Pred::ColNe { a, b } => {
            h.push(23);
            h.push(*a as u8);
            h.push(*b as u8);
        }
        Pred::Connected { a, b, label } => {
            h.push(24);
            h.push(*a as u8);
            h.push(*b as u8);
            h.extend_from_slice(&label.to_le_bytes());
        }
        Pred::And(l, r) => {
            h.push(25);
            hash_pred(l, h);
            hash_pred(r, h);
        }
        Pred::Or(l, r) => {
            h.push(26);
            hash_pred(l, h);
            hash_pred(r, h);
        }
        Pred::Not(x) => {
            h.push(27);
            hash_pred(x, h);
        }
    }
}

fn hash_proj(p: &Proj, h: &mut Vec<u8>) {
    match p {
        Proj::Col(c) => {
            h.push(30);
            h.push(*c as u8);
        }
        Proj::Prop { col, key } => {
            h.push(31);
            h.push(*col as u8);
            h.extend_from_slice(&key.to_le_bytes());
        }
        Proj::Label { col } => {
            h.push(32);
            h.push(*col as u8);
        }
        Proj::Id { col } => {
            h.push(33);
            h.push(*col as u8);
        }
        Proj::ConnectedFlag { a, b, label } => {
            h.push(34);
            h.push(*a as u8);
            h.push(*b as u8);
            h.extend_from_slice(&label.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrips() {
        assert_eq!(Slot::node(7).as_node(), Some(7));
        assert_eq!(Slot::node(7).as_rel(), None);
        assert_eq!(Slot::rel(3).as_rel(), Some(3));
        let s = Slot::val(PVal::Int(-5));
        assert_eq!(s.as_pval(), Some(PVal::Int(-5)));
        assert_eq!(Slot::NULL.as_pval(), None);
    }

    #[test]
    fn fingerprint_ignores_param_values_but_not_shape() {
        let p1 = Plan::new(
            vec![Op::IndexScan {
                label: 1,
                key: 2,
                value: PPar::Param(0),
            }],
            1,
        );
        let p2 = p1.clone();
        assert_eq!(p1.fingerprint(), p2.fingerprint());

        let p3 = Plan::new(
            vec![Op::IndexScan {
                label: 1,
                key: 3, // different key
                value: PPar::Param(0),
            }],
            1,
        );
        assert_ne!(p1.fingerprint(), p3.fingerprint());

        // Constants ARE part of the shape.
        let c1 = Plan::new(
            vec![Op::IndexScan {
                label: 1,
                key: 2,
                value: PPar::Const(PVal::Int(5)),
            }],
            0,
        );
        let c2 = Plan::new(
            vec![Op::IndexScan {
                label: 1,
                key: 2,
                value: PPar::Const(PVal::Int(6)),
            }],
            0,
        );
        assert_ne!(c1.fingerprint(), c2.fingerprint());
    }

    #[test]
    fn update_detection() {
        let read = Plan::new(vec![Op::NodeScan { label: None }], 0);
        assert!(!read.is_update());
        let write = Plan::new(
            vec![
                Op::Once,
                Op::CreateNode {
                    label: 1,
                    props: vec![],
                },
            ],
            0,
        );
        assert!(write.is_update());
    }

    #[test]
    fn split_first_segment_cuts_at_breaker() {
        let plan = Plan::new(
            vec![
                Op::NodeScan { label: None },
                Op::Filter(Pred::LabelIs { col: 0, label: 1 }),
                Op::Count,
                Op::Limit(1),
            ],
            0,
        );
        let (seg, tail) = plan.split_first_segment();
        assert_eq!(seg.len(), 2);
        assert!(matches!(tail[0], Op::Count));
        assert_eq!(tail.len(), 2);

        let no_breaker = Plan::new(vec![Op::NodeScan { label: None }], 0);
        let (seg, tail) = no_breaker.split_first_segment();
        assert_eq!(seg.len(), 1);
        assert!(tail.is_empty());
    }

    #[test]
    fn index_range_scan_fingerprint_masks_params() {
        let r1 = Plan::new(
            vec![Op::IndexRangeScan {
                label: 1,
                key: 2,
                lo: PPar::Param(0),
                hi: PPar::Param(1),
            }],
            2,
        );
        assert_eq!(r1.fingerprint(), r1.clone().fingerprint());
        let r2 = Plan::new(
            vec![Op::IndexRangeScan {
                label: 1,
                key: 3,
                lo: PPar::Param(0),
                hi: PPar::Param(1),
            }],
            2,
        );
        assert_ne!(r1.fingerprint(), r2.fingerprint());
    }

    #[test]
    fn cmp_ops() {
        assert!(CmpOp::Eq.eval_u64(5, 5));
        assert!(CmpOp::Ne.eval_u64(5, 6));
        assert!(CmpOp::Lt.eval_u64(4, 5));
        assert!(CmpOp::Le.eval_u64(5, 5));
        assert!(CmpOp::Gt.eval_u64(6, 5));
        assert!(CmpOp::Ge.eval_u64(5, 5));
        assert!(!CmpOp::Lt.eval_u64(5, 5));
    }
}
