//! A small blocking client for the wire protocol — used by the CLI
//! binary, the integration tests and the `stress_server` load driver.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{obj, Json};
use crate::proto::ErrorCode;

/// Query parameter, converted to the wire's JSON forms.
#[derive(Debug, Clone)]
pub enum Param {
    Int(i64),
    Float(f64),
    Str(String),
    /// LDBC date (epoch milliseconds) — sent as `{"date": ms}`.
    Date(i64),
    Bool(bool),
    Null,
}

impl Param {
    fn to_json(&self) -> Json {
        match self {
            Param::Int(v) => Json::Int(*v),
            Param::Float(v) => Json::Float(*v),
            Param::Str(s) => Json::Str(s.clone()),
            Param::Date(ms) => obj(vec![("date", Json::Int(*ms))]),
            Param::Bool(b) => Json::Bool(*b),
            Param::Null => Json::Null,
        }
    }
}

impl From<i64> for Param {
    fn from(v: i64) -> Param {
        Param::Int(v)
    }
}

impl From<&str> for Param {
    fn from(v: &str) -> Param {
        Param::Str(v.to_string())
    }
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The server answered `{"ok":false,...}`.
    Server {
        code: ErrorCode,
        message: String,
        retryable: bool,
    },
    /// The server sent something that is not a valid response frame.
    Protocol(String),
}

impl ClientError {
    /// True for failures the caller may retry verbatim after a backoff.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Server { retryable: true, .. })
    }

    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server: {}: {message}", code.as_str())
            }
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Result of an `execute` request.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Up to the server's row cap; each row is a vector of JSON slots.
    pub rows: Vec<Vec<Json>>,
    /// Total rows the query produced (before truncation).
    pub row_count: u64,
    pub truncated: bool,
}

impl QueryResult {
    /// First slot of the first row as an integer — the common shape of
    /// `count`-style results.
    pub fn scalar(&self) -> Option<i64> {
        self.rows.first().and_then(|r| r.first()).and_then(Json::as_i64)
    }
}

/// One request in a pipelined [`Client::send_batch`] call.
#[derive(Debug, Clone)]
pub struct BatchItem {
    name: Option<String>,
    query: Option<String>,
    params: Vec<Param>,
    deadline: Option<Duration>,
}

impl BatchItem {
    /// Execute a previously prepared (or catalog) statement by name.
    pub fn prepared(name: &str, params: &[Param]) -> BatchItem {
        BatchItem {
            name: Some(name.to_string()),
            query: None,
            params: params.to_vec(),
            deadline: None,
        }
    }

    /// One-shot query by catalog name or ad-hoc text.
    pub fn query(text: &str, params: &[Param]) -> BatchItem {
        BatchItem {
            name: None,
            query: Some(text.to_string()),
            params: params.to_vec(),
            deadline: None,
        }
    }

    /// Attach a per-request deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> BatchItem {
        self.deadline = Some(deadline);
        self
    }

    fn to_line(&self) -> String {
        let mut fields = vec![("op", Json::Str("execute".into()))];
        if let Some(n) = &self.name {
            fields.push(("name", Json::Str(n.clone())));
        }
        if let Some(q) = &self.query {
            fields.push(("query", Json::Str(q.clone())));
        }
        fields.push((
            "params",
            Json::Arr(self.params.iter().map(Param::to_json).collect()),
        ));
        if let Some(d) = self.deadline {
            fields.push(("deadline_ms", Json::Int(d.as_millis() as i64)));
        }
        let mut line = String::new();
        obj(fields).write(&mut line);
        line
    }
}

/// A blocking protocol client: one synchronous request at a time via the
/// `execute`/`query` methods, or N requests in flight via [`send_batch`]
/// (the server pipelines and answers in request order).
///
/// [`send_batch`]: Client::send_batch
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    session: u64,
}

impl Client {
    /// Connect and consume the greeting frame.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            stream,
            reader,
            session: 0,
        };
        let greeting = client.read_response()?;
        client.session = greeting
            .get("session")
            .and_then(Json::as_i64)
            .unwrap_or(0) as u64;
        Ok(client)
    }

    /// Server-assigned session id (from the greeting).
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Bound how long any single response is waited for (`None` = forever).
    pub fn set_response_timeout(&self, t: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    /// Send a raw request line and return the raw response line — the
    /// escape hatch used by the CLI binary.
    pub fn raw_request(&mut self, line: &str) -> Result<String, ClientError> {
        writeln!(self.stream, "{}", line.trim_end())?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed".into()));
        }
        Ok(resp.trim_end().to_string())
    }

    fn request(&mut self, body: Json) -> Result<Json, ClientError> {
        let mut line = String::new();
        body.write(&mut line);
        writeln!(self.stream, "{line}")?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Json, ClientError> {
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed".into()));
        }
        Self::parse_frame(&resp)
    }

    fn parse_frame(resp: &str) -> Result<Json, ClientError> {
        let v = Json::parse(resp)
            .map_err(|e| ClientError::Protocol(format!("bad response frame: {e}")))?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            Some(false) => {
                let err = v.get("error");
                let code = err
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::parse)
                    .unwrap_or(ErrorCode::Internal);
                let message = err
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                let retryable = err
                    .and_then(|e| e.get("retryable"))
                    .and_then(Json::as_bool)
                    .unwrap_or(code.retryable());
                Err(ClientError::Server {
                    code,
                    message,
                    retryable,
                })
            }
            None => Err(ClientError::Protocol("response missing \"ok\"".into())),
        }
    }

    fn op(&mut self, name: &str) -> Result<Json, ClientError> {
        self.request(obj(vec![("op", Json::Str(name.into()))]))
    }

    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.op("ping").map(|_| ())
    }

    /// Open an explicit transaction; returns its MVTO timestamp/id.
    pub fn begin(&mut self) -> Result<u64, ClientError> {
        let v = self.op("begin")?;
        Ok(v.get("txn").and_then(Json::as_i64).unwrap_or(0) as u64)
    }

    pub fn commit(&mut self) -> Result<(), ClientError> {
        self.op("commit").map(|_| ())
    }

    pub fn rollback(&mut self) -> Result<(), ClientError> {
        self.op("rollback").map(|_| ())
    }

    /// Register a prepared statement; returns its parameter count.
    pub fn prepare(&mut self, name: &str, query: &str) -> Result<u64, ClientError> {
        let v = self.request(obj(vec![
            ("op", Json::Str("prepare".into())),
            ("name", Json::Str(name.into())),
            ("query", Json::Str(query.into())),
        ]))?;
        Ok(v.get("params").and_then(Json::as_i64).unwrap_or(0) as u64)
    }

    /// Execute a prepared statement.
    pub fn execute(&mut self, name: &str, params: &[Param]) -> Result<QueryResult, ClientError> {
        self.execute_inner(Some(name), None, params, None)
    }

    /// Execute a prepared statement with a request deadline.
    pub fn execute_with_deadline(
        &mut self,
        name: &str,
        params: &[Param],
        deadline: Duration,
    ) -> Result<QueryResult, ClientError> {
        self.execute_inner(Some(name), None, params, Some(deadline))
    }

    /// One-shot query by catalog name or ad-hoc text.
    pub fn query(&mut self, text: &str, params: &[Param]) -> Result<QueryResult, ClientError> {
        self.execute_inner(None, Some(text), params, None)
    }

    fn execute_inner(
        &mut self,
        name: Option<&str>,
        query: Option<&str>,
        params: &[Param],
        deadline: Option<Duration>,
    ) -> Result<QueryResult, ClientError> {
        let mut fields = vec![("op", Json::Str("execute".into()))];
        if let Some(n) = name {
            fields.push(("name", Json::Str(n.into())));
        }
        if let Some(q) = query {
            fields.push(("query", Json::Str(q.into())));
        }
        fields.push((
            "params",
            Json::Arr(params.iter().map(Param::to_json).collect()),
        ));
        if let Some(d) = deadline {
            fields.push(("deadline_ms", Json::Int(d.as_millis() as i64)));
        }
        let v = self.request(obj(fields))?;
        Ok(Self::parse_query_result(&v))
    }

    fn parse_query_result(v: &Json) -> QueryResult {
        let rows = match v.get("rows") {
            Some(Json::Arr(rows)) => rows
                .iter()
                .map(|r| match r {
                    Json::Arr(slots) => slots.clone(),
                    other => vec![other.clone()],
                })
                .collect(),
            _ => Vec::new(),
        };
        QueryResult {
            rows,
            row_count: v.get("row_count").and_then(Json::as_i64).unwrap_or(0) as u64,
            truncated: v
                .get("truncated")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        }
    }

    /// Pipeline a batch: write every request before reading any response.
    ///
    /// The server executes each connection's requests in order and writes
    /// responses back in the same order, so `result[i]` always answers
    /// `batch[i]`. Against the evented front end this collapses N
    /// round-trips into one, which is where the pipelining throughput win
    /// comes from (see DESIGN.md §15).
    ///
    /// Per-request failures (`{"ok":false,...}`) land in the matching
    /// element; transport failures (I/O, malformed frame) abort the whole
    /// call, as the stream position is no longer trustworthy.
    pub fn send_batch(
        &mut self,
        batch: &[BatchItem],
    ) -> Result<Vec<Result<QueryResult, ClientError>>, ClientError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let mut wire = String::new();
        for item in batch {
            wire.push_str(&item.to_line());
            wire.push('\n');
        }
        self.stream.write_all(wire.as_bytes())?;
        let mut results = Vec::with_capacity(batch.len());
        for _ in batch {
            let mut resp = String::new();
            let n = self.reader.read_line(&mut resp)?;
            if n == 0 {
                return Err(ClientError::Protocol("connection closed mid-batch".into()));
            }
            results.push(match Self::parse_frame(&resp) {
                Ok(v) => Ok(Self::parse_query_result(&v)),
                Err(e @ ClientError::Server { .. }) => Err(e),
                Err(fatal) => return Err(fatal),
            });
        }
        Ok(results)
    }

    /// Fetch the server's `STATS` object.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.op("stats")
    }

    /// Fetch the Prometheus text exposition over the query protocol.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let v = self.op("metrics")?;
        v.get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics response missing \"metrics\"".into()))
    }

    /// Fetch the slow-query log; `clear` drains it after reading. The
    /// response carries `entries` (oldest first), `dropped` and
    /// `threshold_us`.
    pub fn slowlog(&mut self, clear: bool) -> Result<Json, ClientError> {
        self.request(obj(vec![
            ("op", Json::Str("slowlog".into())),
            ("clear", Json::Bool(clear)),
        ]))
    }

    /// Debug op: hold an execution slot for `ms` (needs `enable_debug_ops`).
    pub fn sleep(&mut self, ms: u64) -> Result<(), ClientError> {
        self.request(obj(vec![
            ("op", Json::Str("sleep".into())),
            ("ms", Json::Int(ms as i64)),
        ]))
        .map(|_| ())
    }

    /// Polite disconnect.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.op("quit").map(|_| ())
    }

    /// Ask the server to shut down (needs `allow_remote_shutdown`).
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        self.op("shutdown").map(|_| ())
    }
}
