//! Wire protocol: newline-delimited JSON request/response frames.
//!
//! One request per line, one response per line, always in order. Clients
//! may **pipeline**: send up to `PMEMGRAPH_PIPELINE_DEPTH` requests
//! before reading any response — the server executes a connection's
//! requests serially and writes responses back in request order, so the
//! i-th response always answers the i-th request (a session is still a
//! single conversation, like the PostgreSQL simple-query sub-protocol
//! with pipelining). A lock-step client that awaits each response before
//! sending the next remains fully supported. See DESIGN.md §7 for the
//! protocol reference, §15 for pipelining/backpressure, and the mapping
//! onto the paper's architecture.
//!
//! ## Requests
//!
//! ```json
//! {"op":"hello"}
//! {"op":"begin"}
//! {"op":"commit"}
//! {"op":"rollback"}
//! {"op":"prepare","name":"q1","query":"is1"}
//! {"op":"execute","name":"q1","params":[17],"deadline_ms":250}
//! {"op":"query","query":"count nodes Person"}
//! {"op":"stats"}
//! {"op":"metrics"}              // Prometheus exposition as a JSON string
//! {"op":"slowlog"}              // slow-query ring; add "clear":true to drain
//! {"op":"jitcache"}             // expression-tier cache status + PGO profiles
//! {"op":"jitcache","action":"warm"}   // preload disk-cached expressions
//! {"op":"jitcache","action":"clear"}  // drop memory + disk expression caches
//! {"op":"analytics","algo":"pagerank","iters":10,"damping":0.85}
//! {"op":"analytics","algo":"bfs","source":42,"rel_label":"KNOWS"}
//! {"op":"analytics","algo":"wcc","deadline_ms":5000}
//! {"op":"checkpoint"}           // drain the deferred-durability tail
//! {"op":"config"}               // effective PMEMGRAPH_* knobs + live state
//! {"op":"config","sync_mode":"every=64"}   // retune the durability ladder
//! {"op":"ping"}
//! {"op":"quit"}
//! {"op":"shutdown"}            // only honoured when enabled in config
//! {"op":"sleep","ms":50}       // debug op, only when enabled in config
//! ```
//!
//! ## Responses
//!
//! Success: `{"ok":true, ...}` with op-specific fields (`rows`, `stats`,
//! `session`). Failure: `{"ok":false,"error":{"code":"SERVER_BUSY",
//! "message":"...","retryable":true}}`.

use gstore::PVal;
use graphcore::GraphDb;
use gquery::Slot;

use crate::json::{obj, Json};

/// Machine-readable error codes carried in failure responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The worker pool is saturated; retry after a backoff.
    ServerBusy,
    /// The request's deadline elapsed before execution finished.
    DeadlineExceeded,
    /// Malformed frame or arguments.
    BadRequest,
    /// `prepare`/`execute` referenced an unknown statement or query id.
    UnknownQuery,
    /// MVTO conflict aborted the transaction; the client may retry it.
    TxnConflict,
    /// `commit`/`rollback` without an open transaction.
    NoTransaction,
    /// `begin` while a transaction is already open.
    TxnAlreadyOpen,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// Anything else (execution error, internal invariant).
    Internal,
}

impl ErrorCode {
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::ServerBusy => "SERVER_BUSY",
            ErrorCode::DeadlineExceeded => "DEADLINE_EXCEEDED",
            ErrorCode::BadRequest => "BAD_REQUEST",
            ErrorCode::UnknownQuery => "UNKNOWN_QUERY",
            ErrorCode::TxnConflict => "TXN_CONFLICT",
            ErrorCode::NoTransaction => "NO_TRANSACTION",
            ErrorCode::TxnAlreadyOpen => "TXN_ALREADY_OPEN",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::Internal => "INTERNAL",
        }
    }

    /// Whether the client may transparently retry the same request. A
    /// missed deadline is retryable: the server aborted the partial work
    /// (updates rolled back), so re-issuing — ideally with a larger
    /// `deadline_ms` — is safe.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ErrorCode::ServerBusy
                | ErrorCode::TxnConflict
                | ErrorCode::ShuttingDown
                | ErrorCode::DeadlineExceeded
        )
    }

    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "SERVER_BUSY" => ErrorCode::ServerBusy,
            "DEADLINE_EXCEEDED" => ErrorCode::DeadlineExceeded,
            "BAD_REQUEST" => ErrorCode::BadRequest,
            "UNKNOWN_QUERY" => ErrorCode::UnknownQuery,
            "TXN_CONFLICT" => ErrorCode::TxnConflict,
            "NO_TRANSACTION" => ErrorCode::NoTransaction,
            "TXN_ALREADY_OPEN" => ErrorCode::TxnAlreadyOpen,
            "SHUTTING_DOWN" => ErrorCode::ShuttingDown,
            "INTERNAL" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A protocol-level failure: code plus human-readable message.
#[derive(Debug, Clone)]
pub struct ProtoError {
    pub code: ErrorCode,
    pub message: String,
}

impl ProtoError {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            message: message.into(),
        }
    }

    pub fn bad_request(message: impl Into<String>) -> ProtoError {
        ProtoError::new(ErrorCode::BadRequest, message)
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ProtoError {}

/// A parsed request frame.
#[derive(Debug, Clone)]
pub enum Request {
    Hello,
    Begin,
    Commit,
    Rollback,
    Prepare {
        name: String,
        query: String,
    },
    Execute {
        /// Prepared-statement name (`name`) or inline query text (`query`);
        /// exactly one is set.
        name: Option<String>,
        query: Option<String>,
        params: Vec<Json>,
        deadline_ms: Option<u64>,
    },
    Stats,
    /// Run a graph algorithm over the cached CSR snapshot.
    Analytics {
        /// `bfs`, `pagerank` or `wcc`.
        algo: String,
        /// BFS source node id (required for `bfs`).
        source: Option<u64>,
        /// PageRank iterations (default 10).
        iters: Option<u64>,
        /// PageRank damping factor (default 0.85).
        damping: Option<f64>,
        /// Restrict the snapshot to one node label (by name).
        node_label: Option<String>,
        /// Restrict the snapshot to one relationship label (by name).
        rel_label: Option<String>,
        deadline_ms: Option<u64>,
    },
    /// Drain and fence the deferred-durability tail (`SyncMode::EveryN` /
    /// `CheckpointOnly` ingest ends with one of these).
    Checkpoint,
    /// Dump the effective `PMEMGRAPH_*` knobs and live engine state;
    /// optionally retune the durability ladder first.
    Config {
        sync_mode: Option<String>,
    },
    /// Prometheus text exposition over the query protocol (the standalone
    /// exporter serves the same body over plain HTTP).
    Metrics,
    /// Read the slow-query ring; `clear` drains it after reading.
    Slowlog {
        clear: bool,
    },
    /// Inspect or manage the expression tier's code caches:
    /// `status` (default), `warm` or `clear`.
    JitCache {
        action: String,
    },
    Ping,
    Quit,
    Shutdown,
    /// Debug op (test/benchmark only): hold a worker permit for `ms`.
    Sleep {
        ms: u64,
    },
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let v = Json::parse(line.trim())
            .map_err(|e| ProtoError::bad_request(format!("invalid JSON frame: {e}")))?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::bad_request("missing \"op\" field"))?;
        let deadline_ms = v
            .get("deadline_ms")
            .and_then(Json::as_i64)
            .map(|d| d.max(0) as u64);
        Ok(match op {
            "hello" => Request::Hello,
            "begin" => Request::Begin,
            "commit" => Request::Commit,
            "rollback" => Request::Rollback,
            "prepare" => Request::Prepare {
                name: v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ProtoError::bad_request("prepare needs \"name\""))?
                    .to_string(),
                query: v
                    .get("query")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ProtoError::bad_request("prepare needs \"query\""))?
                    .to_string(),
            },
            "execute" | "query" => {
                let name = v.get("name").and_then(Json::as_str).map(str::to_string);
                let query = v.get("query").and_then(Json::as_str).map(str::to_string);
                if name.is_none() && query.is_none() {
                    return Err(ProtoError::bad_request(
                        "execute needs \"name\" or \"query\"",
                    ));
                }
                let params = match v.get("params") {
                    None => Vec::new(),
                    Some(Json::Arr(items)) => items.clone(),
                    Some(_) => {
                        return Err(ProtoError::bad_request("\"params\" must be an array"))
                    }
                };
                Request::Execute {
                    name,
                    query,
                    params,
                    deadline_ms,
                }
            }
            "stats" => Request::Stats,
            "analytics" => Request::Analytics {
                algo: v
                    .get("algo")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ProtoError::bad_request("analytics needs \"algo\""))?
                    .to_string(),
                source: v.get("source").and_then(Json::as_i64).map(|s| s.max(0) as u64),
                iters: v.get("iters").and_then(Json::as_i64).map(|i| i.max(0) as u64),
                damping: v.get("damping").and_then(Json::as_f64),
                node_label: v
                    .get("node_label")
                    .and_then(Json::as_str)
                    .map(str::to_string),
                rel_label: v
                    .get("rel_label")
                    .and_then(Json::as_str)
                    .map(str::to_string),
                deadline_ms,
            },
            "checkpoint" => Request::Checkpoint,
            "config" => Request::Config {
                sync_mode: v
                    .get("sync_mode")
                    .and_then(Json::as_str)
                    .map(str::to_string),
            },
            "metrics" => Request::Metrics,
            "slowlog" => Request::Slowlog {
                clear: v.get("clear").and_then(Json::as_bool).unwrap_or(false),
            },
            "jitcache" => Request::JitCache {
                action: v
                    .get("action")
                    .and_then(Json::as_str)
                    .unwrap_or("status")
                    .to_string(),
            },
            "ping" => Request::Ping,
            "quit" => Request::Quit,
            "shutdown" => Request::Shutdown,
            "sleep" => Request::Sleep {
                ms: v.get("ms").and_then(Json::as_i64).unwrap_or(0).max(0) as u64,
            },
            other => {
                return Err(ProtoError::bad_request(format!("unknown op {other:?}")))
            }
        })
    }
}

/// Encode a success response with extra fields.
pub fn ok_response(fields: Vec<(&str, Json)>) -> String {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    let mut s = String::new();
    obj(all).write(&mut s);
    s
}

/// Encode a failure response.
pub fn err_response(err: &ProtoError) -> String {
    let mut s = String::new();
    obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("code", Json::Str(err.code.as_str().into())),
                ("message", Json::Str(err.message.clone())),
                ("retryable", Json::Bool(err.code.retryable())),
            ]),
        ),
    ])
    .write(&mut s);
    s
}

/// Convert a request parameter into a storage value, interning strings
/// through the server's dictionary. `{"date": ms}` distinguishes LDBC
/// dates from plain integers.
pub fn json_to_pval(db: &GraphDb, v: &Json) -> Result<PVal, ProtoError> {
    Ok(match v {
        Json::Null => PVal::Null,
        Json::Bool(b) => PVal::Bool(*b),
        Json::Int(i) => PVal::Int(*i),
        Json::Float(f) => PVal::Double(*f),
        Json::Str(s) => PVal::Str(db.intern(s).map_err(|e| {
            ProtoError::new(ErrorCode::Internal, format!("intern failed: {e}"))
        })?),
        Json::Obj(_) => match v.get("date").and_then(Json::as_i64) {
            Some(ms) => PVal::Date(ms),
            None => {
                return Err(ProtoError::bad_request(
                    "object parameters must be {\"date\": ms}",
                ))
            }
        },
        Json::Arr(_) => return Err(ProtoError::bad_request("array parameter unsupported")),
    })
}

/// Convert a result slot into JSON, resolving dictionary codes to strings.
pub fn slot_to_json(db: &GraphDb, slot: &Slot) -> Json {
    if let Some(id) = slot.as_node() {
        return obj(vec![("node", Json::Int(id as i64))]);
    }
    if let Some(id) = slot.as_rel() {
        return obj(vec![("rel", Json::Int(id as i64))]);
    }
    match slot.as_pval() {
        Some(PVal::Int(v)) => Json::Int(v),
        Some(PVal::Double(v)) => Json::Float(v),
        Some(PVal::Bool(v)) => Json::Bool(v),
        Some(PVal::Date(v)) => obj(vec![("date", Json::Int(v))]),
        Some(PVal::Str(code)) => Json::Str(db.dict().string_of(code).unwrap_or_default()),
        Some(PVal::Null) | None => Json::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing() {
        assert!(matches!(
            Request::parse("{\"op\":\"begin\"}").unwrap(),
            Request::Begin
        ));
        let r = Request::parse(
            "{\"op\":\"execute\",\"name\":\"q\",\"params\":[1,\"x\"],\"deadline_ms\":50}",
        )
        .unwrap();
        match r {
            Request::Execute {
                name,
                params,
                deadline_ms,
                ..
            } => {
                assert_eq!(name.as_deref(), Some("q"));
                assert_eq!(params.len(), 2);
                assert_eq!(deadline_ms, Some(50));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(
            Request::parse("{\"op\":\"metrics\"}").unwrap(),
            Request::Metrics
        ));
        assert!(matches!(
            Request::parse("{\"op\":\"slowlog\"}").unwrap(),
            Request::Slowlog { clear: false }
        ));
        assert!(matches!(
            Request::parse("{\"op\":\"slowlog\",\"clear\":true}").unwrap(),
            Request::Slowlog { clear: true }
        ));
        match Request::parse("{\"op\":\"jitcache\"}").unwrap() {
            Request::JitCache { action } => assert_eq!(action, "status"),
            other => panic!("wrong parse: {other:?}"),
        }
        match Request::parse("{\"op\":\"jitcache\",\"action\":\"warm\"}").unwrap() {
            Request::JitCache { action } => assert_eq!(action, "warm"),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(Request::parse("{\"op\":\"execute\"}").is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"op\":\"warp\"}").is_err());
    }

    #[test]
    fn analytics_verbs_parse() {
        let r = Request::parse(
            "{\"op\":\"analytics\",\"algo\":\"pagerank\",\"iters\":20,\"damping\":0.9,\
             \"rel_label\":\"KNOWS\",\"deadline_ms\":500}",
        )
        .unwrap();
        match r {
            Request::Analytics {
                algo,
                iters,
                damping,
                rel_label,
                node_label,
                deadline_ms,
                ..
            } => {
                assert_eq!(algo, "pagerank");
                assert_eq!(iters, Some(20));
                assert_eq!(damping, Some(0.9));
                assert_eq!(rel_label.as_deref(), Some("KNOWS"));
                assert_eq!(node_label, None);
                assert_eq!(deadline_ms, Some(500));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match Request::parse("{\"op\":\"analytics\",\"algo\":\"bfs\",\"source\":7}").unwrap() {
            Request::Analytics { algo, source, .. } => {
                assert_eq!(algo, "bfs");
                assert_eq!(source, Some(7));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // algo is mandatory.
        assert!(Request::parse("{\"op\":\"analytics\"}").is_err());
        assert!(matches!(
            Request::parse("{\"op\":\"checkpoint\"}").unwrap(),
            Request::Checkpoint
        ));
        assert!(matches!(
            Request::parse("{\"op\":\"config\"}").unwrap(),
            Request::Config { sync_mode: None }
        ));
        match Request::parse("{\"op\":\"config\",\"sync_mode\":\"every=64\"}").unwrap() {
            Request::Config { sync_mode } => assert_eq!(sync_mode.as_deref(), Some("every=64")),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn error_codes_roundtrip_and_retryability() {
        for code in [
            ErrorCode::ServerBusy,
            ErrorCode::DeadlineExceeded,
            ErrorCode::BadRequest,
            ErrorCode::UnknownQuery,
            ErrorCode::TxnConflict,
            ErrorCode::NoTransaction,
            ErrorCode::TxnAlreadyOpen,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert!(ErrorCode::ServerBusy.retryable());
        assert!(ErrorCode::TxnConflict.retryable());
        assert!(!ErrorCode::BadRequest.retryable());
        assert!(ErrorCode::DeadlineExceeded.retryable());
    }

    #[test]
    fn responses_are_single_line_json() {
        let ok = ok_response(vec![("rows", Json::Arr(vec![]))]);
        assert!(!ok.contains('\n'));
        let parsed = Json::parse(&ok).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));

        let err = err_response(&ProtoError::new(ErrorCode::ServerBusy, "full"));
        let parsed = Json::parse(&err).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        let e = parsed.get("error").unwrap();
        assert_eq!(e.get("code").and_then(Json::as_str), Some("SERVER_BUSY"));
        assert_eq!(e.get("retryable").and_then(Json::as_bool), Some(true));
    }
}
