//! Minimal JSON value, writer and parser for the wire protocol.
//!
//! The workspace deliberately avoids external serialization crates (see
//! DESIGN.md §5 "Dependency policy"); the protocol surface is small enough
//! that a few hundred lines of hand-rolled JSON keep the server
//! self-contained. Numbers are kept as `i64`/`f64`; objects preserve
//! insertion order (they are association vectors, not maps).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize into `out` (compact, no trailing newline).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                out.push_str(&v.to_string());
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Guarantee a numeric token that round-trips as float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(p.pos, "trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Convenience constructor for object literals.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: &'static str,
}

impl JsonError {
    fn new(pos: usize, msg: &'static str) -> JsonError {
        JsonError { pos, msg }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(self.pos, msg))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError::new(self.pos, "invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::new(self.pos, "nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(JsonError::new(self.pos, "expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':', "expected ':'")?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(JsonError::new(self.pos, "expected ',' or '}'")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(JsonError::new(self.pos, "unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new(start, "invalid UTF-8"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or(JsonError::new(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(
                                c.ok_or(JsonError::new(self.pos, "invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(JsonError::new(self.pos - 1, "bad escape")),
                    }
                }
                _ => return Err(JsonError::new(self.pos, "unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::new(self.pos, "truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::new(self.pos, "bad unicode escape"))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| JsonError::new(self.pos, "bad unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new(start, "bad number"))?;
        if is_float {
            s.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| JsonError::new(start, "bad number"))
        } else {
            s.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| JsonError::new(start, "bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        let mut s = String::new();
        v.write(&mut s);
        Json::parse(&s).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Float(1.5),
            Json::Float(-0.25),
            Json::Str("hello".into()),
            Json::Str("esc \" \\ \n \t ü 日本".into()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = obj(vec![
            ("op", Json::Str("execute".into())),
            (
                "params",
                Json::Arr(vec![Json::Int(7), Json::Str("x".into()), Json::Null]),
            ),
            ("nested", obj(vec![("a", Json::Arr(vec![]))])),
        ]);
        assert_eq!(roundtrip(&v), v);
        assert_eq!(v.get("op").and_then(Json::as_str), Some("execute"));
        assert_eq!(
            v.get("params").and_then(Json::as_array).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1],
            Json::Str("é😀".into())
        );
    }

    #[test]
    fn float_formatting_reparses_as_float() {
        let mut s = String::new();
        Json::Float(2.0).write(&mut s);
        assert_eq!(s, "2.0");
        assert_eq!(Json::parse(&s).unwrap(), Json::Float(2.0));
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let s = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&s).is_err());
    }
}
