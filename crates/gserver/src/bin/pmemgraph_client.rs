//! `pmemgraph-client` — scriptable command-line client.
//!
//! Usage: `pmemgraph-client <addr>` then one command per stdin line;
//! responses print one per line on stdout. Lines starting with `{` are
//! sent as raw protocol frames; otherwise a small command language:
//!
//! ```text
//! ping | begin | commit | rollback | stats | metrics | quit | shutdown
//! query <catalog-name-or-adhoc-text>
//! run <name> <param>...          # execute with int/'str'/d:ms params
//! prepare <name> <query-text>
//! slowlog [clear]                # slow-query ring; "clear" drains it
//! sleep <ms>
//! # comment
//! ```

use std::io::BufRead;

use gserver::{Client, Json, Param};

fn parse_param(tok: &str) -> Param {
    if let Some(s) = tok.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')) {
        return Param::Str(s.to_string());
    }
    if let Some(ms) = tok.strip_prefix("d:").and_then(|s| s.parse().ok()) {
        return Param::Date(ms);
    }
    match tok {
        "true" => return Param::Bool(true),
        "false" => return Param::Bool(false),
        "null" => return Param::Null,
        _ => {}
    }
    if let Ok(i) = tok.parse::<i64>() {
        return Param::Int(i);
    }
    if let Ok(f) = tok.parse::<f64>() {
        return Param::Float(f);
    }
    Param::Str(tok.to_string())
}

fn show(result: Result<Json, gserver::ClientError>) {
    match result {
        Ok(v) => {
            let mut s = String::new();
            v.write(&mut s);
            println!("{s}");
        }
        Err(e) => println!("error: {e}"),
    }
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7687".into());
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("connected to {addr} (session {})", client.session_id());

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('{') {
            match client.raw_request(line) {
                Ok(resp) => println!("{resp}"),
                Err(e) => {
                    println!("error: {e}");
                    break;
                }
            }
            continue;
        }
        let mut toks = line.split_whitespace();
        let cmd = toks.next().unwrap_or("");
        match cmd {
            "ping" => match client.ping() {
                Ok(()) => println!("pong"),
                Err(e) => println!("error: {e}"),
            },
            "begin" => match client.begin() {
                Ok(id) => println!("txn {id}"),
                Err(e) => println!("error: {e}"),
            },
            "commit" => match client.commit() {
                Ok(()) => println!("committed"),
                Err(e) => println!("error: {e}"),
            },
            "rollback" => match client.rollback() {
                Ok(()) => println!("rolled back"),
                Err(e) => println!("error: {e}"),
            },
            "stats" => {
                show(client.stats());
            }
            "metrics" => match client.metrics_text() {
                Ok(text) => print!("{text}"),
                Err(e) => println!("error: {e}"),
            },
            "slowlog" => {
                let clear = toks.next() == Some("clear");
                show(client.slowlog(clear));
            }
            "prepare" => {
                let name = toks.next().unwrap_or("");
                let query: Vec<&str> = toks.collect();
                match client.prepare(name, &query.join(" ")) {
                    Ok(n) => println!("prepared {name} ({n} params)"),
                    Err(e) => println!("error: {e}"),
                }
            }
            "run" => {
                let name = toks.next().unwrap_or("");
                let params: Vec<Param> = toks.map(parse_param).collect();
                match client.execute(name, &params) {
                    Ok(r) => print_rows(&r),
                    Err(e) => println!("error: {e}"),
                }
            }
            "query" => {
                let text: Vec<&str> = toks.collect();
                match client.query(&text.join(" "), &[]) {
                    Ok(r) => print_rows(&r),
                    Err(e) => println!("error: {e}"),
                }
            }
            "sleep" => {
                let ms = toks.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                match client.sleep(ms) {
                    Ok(()) => println!("slept {ms}ms"),
                    Err(e) => println!("error: {e}"),
                }
            }
            "quit" => {
                match client.quit() {
                    Ok(()) => println!("bye"),
                    Err(e) => println!("error: {e}"),
                }
                return;
            }
            "shutdown" => {
                match client.shutdown_server() {
                    Ok(()) => println!("server shutting down"),
                    Err(e) => println!("error: {e}"),
                }
                return;
            }
            other => println!("unknown command {other:?}"),
        }
    }
}

fn print_rows(r: &gserver::QueryResult) {
    for row in &r.rows {
        let mut s = String::new();
        Json::Arr(row.clone()).write(&mut s);
        println!("{s}");
    }
    println!(
        "({} row(s){})",
        r.row_count,
        if r.truncated { ", truncated" } else { "" }
    );
}
