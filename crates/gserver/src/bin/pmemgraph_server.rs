//! `pmemgraph-server` — stand-alone query server over a generated SNB
//! graph.
//!
//! Configuration is environment-driven (container-friendly):
//!
//! | variable          | default          | meaning                          |
//! |-------------------|------------------|----------------------------------|
//! | `ADDR`            | `127.0.0.1:7687` | bind address (`:0` = ephemeral)  |
//! | `SCALE`           | `small`          | `tiny` \| `small` \| `bench`     |
//! | `SEED`            | `42`             | data-generator seed              |
//! | `PMEM_PATH`       | *(unset = DRAM)* | file-backed persistent pool      |
//! | `POOL_MB`         | `1024`           | pool size in MiB                 |
//! | `WORKERS`         | `4`              | execution slots                  |
//! | `MAX_SESSIONS`    | `PMEMGRAPH_MAX_CONNS` (1024) | concurrent connections |
//! | `IDLE_TIMEOUT_MS` | `60000`          | session idle kill                |
//! | `DEADLINE_MS`     | `5000`           | default per-request deadline     |
//! | `EXEC_THREADS`    | `2`              | morsel threads per query         |
//! | `ALLOW_SHUTDOWN`  | `0`              | honour the remote `shutdown` op  |
//! | `DEBUG_OPS`       | `0`              | honour the `sleep` debug op      |
//!
//! Network front end and observability (read by `ServerConfig::default()`):
//!
//! | variable                   | default     | meaning                            |
//! |----------------------------|-------------|------------------------------------|
//! | `PMEMGRAPH_NET_MODE`       | `evented`   | `evented` (epoll reactor) \| `threaded` (thread per connection) |
//! | `PMEMGRAPH_MAX_CONNS`      | `1024`      | connection limit (`MAX_SESSIONS` overrides) |
//! | `PMEMGRAPH_PIPELINE_DEPTH` | `32`        | per-connection in-flight request cap |
//! | `PMEMGRAPH_NET_WORKERS`    | `0` (auto)  | evented request-execution threads  |
//! | `PMEMGRAPH_METRICS_ADDR`   | *(unset)*   | standalone Prometheus scrape port  |
//! | `PMEMGRAPH_SLOW_QUERY_US`  | *(disabled)*| slow-query capture threshold in µs |
//!
//! Prints `listening on <addr>` once ready (plus `metrics on <addr>` when
//! an exporter is configured); exits cleanly after a remote `shutdown`
//! (when enabled).

use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

use gjit::JitEngine;
use graphcore::DbOptions;
use gserver::{serve, ServerConfig};
use ldbc::SnbParams;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_flag(key: &str) -> bool {
    matches!(
        std::env::var(key).as_deref(),
        Ok("1") | Ok("true") | Ok("yes")
    )
}

fn main() {
    let seed = env_u64("SEED", 42);
    let params = match std::env::var("SCALE").as_deref() {
        Ok("tiny") => SnbParams::tiny(seed),
        Ok("bench") => SnbParams::bench(seed),
        _ => SnbParams::small(seed),
    };
    let pool_bytes = (env_u64("POOL_MB", 1024) as usize) << 20;
    let opts = match std::env::var("PMEM_PATH") {
        Ok(path) => DbOptions::pmem(&path, pool_bytes),
        Err(_) => DbOptions::dram(pool_bytes),
    };

    eprintln!("generating SNB graph ({} persons)...", params.persons);
    let snb = Arc::new(ldbc::generate(&params, opts).expect("generate graph"));
    eprintln!(
        "loaded: {} nodes, {} rels",
        snb.db.node_count(),
        snb.db.rel_count()
    );
    let engine = Arc::new(JitEngine::new());
    // A file-backed pool implies a stable home for the expression tier's
    // on-disk code cache ({PMEM_PATH}.jitcache): compiled residual
    // predicates survive restart alongside the graph itself.
    if let Ok(path) = std::env::var("PMEM_PATH") {
        engine.attach_disk_cache(std::path::Path::new(&path));
    }

    let config = ServerConfig {
        addr: std::env::var("ADDR").unwrap_or_else(|_| "127.0.0.1:7687".into()),
        workers: env_u64("WORKERS", 4) as usize,
        max_sessions: env_u64("MAX_SESSIONS", gconfig::max_conns()) as usize,
        idle_timeout: Duration::from_millis(env_u64("IDLE_TIMEOUT_MS", 60_000)),
        default_deadline: Duration::from_millis(env_u64("DEADLINE_MS", 5_000)),
        exec_threads: env_u64("EXEC_THREADS", 2) as usize,
        allow_remote_shutdown: env_flag("ALLOW_SHUTDOWN"),
        enable_debug_ops: env_flag("DEBUG_OPS"),
        ..ServerConfig::default()
    };

    let handle = serve(snb, engine, config).expect("bind server");
    println!(
        "listening on {} (net mode: {})",
        handle.local_addr(),
        handle.net_mode().as_str()
    );
    if let Some(maddr) = handle.metrics_addr() {
        println!("metrics on {maddr}");
    }
    std::io::stdout().flush().ok();

    handle.wait();
    println!("clean shutdown");
}
