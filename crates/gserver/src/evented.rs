//! The evented network front end (DESIGN.md §15): one reactor thread owns
//! every socket behind an epoll instance, and a fixed pool of net workers
//! executes decoded requests.
//!
//! Division of labour:
//!
//! * **Reactor** (`gserver-reactor`) — accepts, reads, frames newline-JSON
//!   into request lines, writes response bytes, and is the only thread
//!   that touches the poller or a connection's buffers. A connection here
//!   is a state machine: read buffer, write buffer + offset, current
//!   interest set, paused/eof/closing flags.
//! * **Net workers** (`gserver-net-N`, `PMEMGRAPH_NET_WORKERS`) — pull a
//!   connection's work cell off the ready queue, pop one request line at
//!   a time, run it through the same `process_line` the threaded front
//!   end uses, and push the response frame back. A cell is scheduled on
//!   at most one worker at a time and requests pop in FIFO order, so
//!   **pipelined responses keep request order** and the session's open
//!   transaction has exactly one owner.
//!
//! Backpressure never says `SERVER_BUSY`: a connection with
//! `pipeline_depth` undone requests — or any connection while the global
//! in-flight count sits above the watermark — simply stops being *read*.
//! Its socket buffer fills, TCP flow control pushes back on the client,
//! and read interest resumes once responses drain. The only remaining
//! busy-rejections are the session-table bound at accept and the
//! admission semaphore around execution, both of which mean the *engine*
//! (not the network layer) is saturated.
//!
//! Transaction lifetime: a session's open `GraphTxn<'db>` borrows the
//! database, but here it must live in heap state that hops between
//! threads. The borrow is transmuted to `'static` when the state cell is
//! created. Safety rests on a drop-ordering invariant: every `ConnState`
//! is dropped either by a net worker or by the reactor during teardown —
//! both threads hold an `Arc` of the server's shared state, which owns
//! the `Arc<SnbDb>` the borrow points into — and `ServerHandle::join_all`
//! joins those threads before the last `Arc` can unwind. No `ConnState`
//! outlives the database.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use graphcore::GraphDb;
use parking_lot::{Condvar, Mutex};

use crate::reactor::{Event, Interest, Poller, Waker, TOKEN_FIRST_CONN, TOKEN_LISTENER, TOKEN_WAKER};
use crate::server::{
    classify_accept_error, greeting, next_backoff, process_line, session_full_response,
    AcceptError, ConnState, Flow, Shared, ACCEPT_BACKOFF_START, MAX_LINE,
};

/// Abort any transaction still open in a dropped session state — the
/// evented analogue of the threaded loop's end-of-connection rollback.
fn drop_state(shared: &Shared, mut state: ConnState<'_>) {
    if let Some(txn) = state.txn.take() {
        txn.abort();
        shared
            .stats
            .disconnect_rollbacks
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Reactor poll cadence: how stale the stop flag can get while idle.
const POLL_TICK: Duration = Duration::from_millis(100);
/// Faster cadence while draining, so shutdown converges quickly.
const DRAIN_TICK: Duration = Duration::from_millis(10);

/// Evented-mode coordination shared by the reactor, the net workers and
/// `ServerHandle`/`request_shutdown`.
pub(crate) struct NetShared {
    pub(crate) poller: Poller,
    waker: Waker,
    /// Work cells with decoded-but-unscheduled requests.
    ready: Mutex<VecDeque<Arc<ConnWork>>>,
    ready_cv: Condvar,
    /// Tokens with freshly produced response frames, for the reactor.
    flush: Mutex<Vec<u64>>,
    /// Set by the reactor after teardown; workers exit once the ready
    /// queue is empty and this is up.
    done: AtomicBool,
}

impl NetShared {
    pub(crate) fn new() -> std::io::Result<NetShared> {
        let poller = Poller::new()?;
        let waker = Waker::new(&poller, TOKEN_WAKER)?;
        Ok(NetShared {
            poller,
            waker,
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            flush: Mutex::new(Vec::new()),
            done: AtomicBool::new(false),
        })
    }

    /// Nudge the reactor out of `epoll_wait` and every worker out of its
    /// condvar (shutdown, or responses ready to flush).
    pub(crate) fn wake_all(&self) {
        self.waker.wake();
        self.ready_cv.notify_all();
    }

    fn notify_flush(&self, token: u64) {
        let wake = {
            let mut f = self.flush.lock();
            f.push(token);
            f.len() == 1
        };
        // One eventfd write per reactor round, not per response: the
        // reactor drains the whole flush list each wakeup, so only the
        // transition from empty needs a nudge.
        if wake {
            self.waker.wake();
        }
    }
}

/// Worker-visible half of a connection. `inner` is the only lock shared
/// between the reactor and workers, held for queue surgery only — never
/// across request execution or socket I/O.
pub(crate) struct ConnWork {
    token: u64,
    sid: u64,
    inner: Mutex<WorkInner>,
}

struct WorkInner {
    /// Decoded request lines awaiting execution (FIFO).
    pending: VecDeque<String>,
    /// Response frames awaiting the reactor's write path (FIFO).
    responses: VecDeque<String>,
    /// Session state; `None` exactly while a worker is executing one of
    /// this connection's requests.
    state: Option<ConnState<'static>>,
    /// In the ready queue or on a worker right now.
    scheduled: bool,
    /// The reactor tore the connection down; whoever holds the state
    /// drops it (aborting any open transaction).
    closed: bool,
    /// A processed request asked to close (quit/shutdown): flush, then
    /// close.
    close_after: bool,
}

// Compile-time proof the cross-thread state is actually sendable.
fn _assert_send<T: Send>() {}
#[allow(dead_code)]
fn _assertions() {
    _assert_send::<ConnState<'static>>();
    _assert_send::<Arc<ConnWork>>();
}

/// Reactor-private connection state machine.
struct Conn {
    stream: TcpStream,
    sid: u64,
    /// Unparsed input bytes (tail may be a partial line).
    rbuf: Vec<u8>,
    /// Outgoing bytes; `wpos` is how much of it is already written.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Read interest withdrawn for backpressure.
    paused: bool,
    /// Peer finished sending (EOF seen).
    eof: bool,
    /// Close once the write buffer drains.
    closing: bool,
    work: Arc<ConnWork>,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.wpos >= self.wbuf.len()
    }

    /// Requests decoded but not yet answered (queued + executing).
    fn inflight(&self) -> usize {
        let g = self.work.inner.lock();
        g.pending.len() + usize::from(g.state.is_none())
    }
}

/// Spawn the reactor and the net-worker pool. Returns the reactor handle
/// (the `accept` slot of `ServerHandle`) plus the worker handles.
pub(crate) fn spawn(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> std::io::Result<(JoinHandle<()>, Vec<JoinHandle<()>>)> {
    let net = shared.net.clone().expect("evented spawn without NetShared");
    let n_workers = shared.config.net_workers_effective();
    let mut workers = Vec::with_capacity(n_workers);
    for i in 0..n_workers {
        let shared = shared.clone();
        let net = net.clone();
        workers.push(
            thread::Builder::new()
                .name(format!("gserver-net-{i}"))
                .spawn(move || worker_loop(shared, net))?,
        );
    }
    let reactor = {
        let shared = shared.clone();
        thread::Builder::new()
            .name("gserver-reactor".into())
            .spawn(move || reactor_loop(listener, shared, net))?
    };
    Ok((reactor, workers))
}

// ---------------------------------------------------------------------
// Net workers
// ---------------------------------------------------------------------

fn worker_loop(shared: Arc<Shared>, net: Arc<NetShared>) {
    // SAFETY: see the module docs — the borrow is reached through
    // `Arc<Shared>` (kept alive by this thread), and every `ConnState`
    // holding a `GraphTxn<'static>` is dropped before the server's
    // threads are joined.
    let db: &'static GraphDb = unsafe { &*Arc::as_ptr(&shared.snb.db) };
    loop {
        let work = {
            let mut q = net.ready.lock();
            loop {
                if let Some(w) = q.pop_front() {
                    break w;
                }
                if net.done.load(Ordering::SeqCst) {
                    return;
                }
                net.ready_cv.wait(&mut q);
            }
        };
        run_cell(&shared, &net, db, &work);
    }
}

/// Drain one connection's pending queue: serial FIFO execution keeps
/// responses in request order and the txn single-owner.
fn run_cell(shared: &Shared, net: &NetShared, db: &'static GraphDb, work: &ConnWork) {
    loop {
        let (line, mut state) = {
            let mut g = work.inner.lock();
            if g.closed {
                let st = g.state.take();
                g.scheduled = false;
                drop(g);
                if let Some(st) = st {
                    drop_state(shared, st);
                }
                return;
            }
            let Some(line) = g.pending.pop_front() else {
                g.scheduled = false;
                return;
            };
            let Some(state) = g.state.take() else {
                // Serial ownership makes this unreachable; put the line
                // back rather than corrupt order if it ever isn't.
                g.pending.push_front(line);
                g.scheduled = false;
                return;
            };
            (line, state)
        };

        let (response, flow) = process_line(shared, db, work.sid, &mut state, &line);

        let mut g = work.inner.lock();
        shared.stats.net_inflight.fetch_sub(1, Ordering::Relaxed);
        let first_response = g.responses.is_empty();
        g.responses.push_back(response);
        if matches!(flow, Flow::Close) {
            g.close_after = true;
            // Parity with the threaded loop: input after quit is unread.
            let dropped = g.pending.len() as u64;
            g.pending.clear();
            if dropped > 0 {
                shared.stats.net_inflight.fetch_sub(dropped, Ordering::Relaxed);
            }
        }
        if g.closed {
            g.scheduled = false;
            drop(g);
            drop_state(shared, state);
            return;
        }
        g.state = Some(state);
        drop(g);
        // A token whose responses queue was already non-empty is already
        // on the flush list (or being drained this very round — in which
        // case that drain takes this response too).
        if first_response {
            net.notify_flush(work.token);
        }
    }
}

// ---------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------

/// Publishes `done` + wakes everyone even if the reactor unwinds, so
/// workers can never hang on the condvar.
struct DoneGuard(Arc<NetShared>);

impl Drop for DoneGuard {
    fn drop(&mut self) {
        self.0.done.store(true, Ordering::SeqCst);
        self.0.wake_all();
    }
}

fn reactor_loop(listener: TcpListener, shared: Arc<Shared>, net: Arc<NetShared>) {
    let _done = DoneGuard(net.clone());
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut events: Vec<Event> = Vec::new();
    let mut listener = Some(listener);
    let mut accept_backoff = ACCEPT_BACKOFF_START;
    let mut drain_deadline: Option<Instant> = None;
    let mut global_paused = false;

    if let Some(l) = &listener {
        if net
            .poller
            .register(l.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .is_err()
        {
            return;
        }
    }

    loop {
        let tick = if drain_deadline.is_some() { DRAIN_TICK } else { POLL_TICK };
        shared.stats.epoll_waits.fetch_add(1, Ordering::Relaxed);
        if net.poller.wait(&mut events, tick).is_err() {
            break;
        }

        for &ev in &events {
            match ev.token {
                TOKEN_LISTENER => {
                    if drain_deadline.is_none() {
                        if let Some(l) = &listener {
                            accept_ready(
                                l,
                                &shared,
                                &net,
                                &mut conns,
                                &mut next_token,
                                &mut accept_backoff,
                            );
                        }
                    }
                }
                TOKEN_WAKER => {
                    net.waker.drain();
                    shared.stats.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
                }
                token => {
                    let mut close = false;
                    if let Some(conn) = conns.get_mut(&token) {
                        if ev.writable && !try_write(conn, &net) {
                            close = true;
                        }
                        if !close
                            && ev.readable
                            && !on_readable(conn, &shared, &net, &mut global_paused)
                        {
                            close = true;
                        }
                        if !close && conn_should_close(conn) {
                            close = true;
                        }
                    }
                    if close {
                        close_conn(&mut conns, &shared, &net, token);
                    }
                }
            }
        }

        flush_responses(&mut conns, &shared, &net);

        // Global backpressure release: once the in-flight queue halves,
        // resume reads on every connection paused only for the watermark.
        if global_paused {
            let inflight = shared.stats.net_inflight.load(Ordering::Relaxed);
            if inflight < shared.config.global_inflight_high() / 2 {
                global_paused = false;
                for conn in conns.values_mut() {
                    maybe_unpause(conn, &shared, &net, global_paused);
                }
            }
        }

        if drain_deadline.is_none() && shared.stop.load(Ordering::SeqCst) {
            // Drain: stop accepting (close the listen socket so new
            // connects are refused), finish decoded requests, flush, then
            // tear down. Idle connections don't prolong the window — the
            // threaded front end kills them within one read tick too.
            drain_deadline = Some(Instant::now() + shared.config.drain_timeout);
            if let Some(l) = listener.take() {
                let _ = net.poller.deregister(l.as_raw_fd());
            }
        }
        if let Some(deadline) = drain_deadline {
            let busy = conns.values().any(|c| {
                if !c.flushed() {
                    return true;
                }
                let g = c.work.inner.lock();
                !g.pending.is_empty() || !g.responses.is_empty() || g.state.is_none()
            });
            if !busy || Instant::now() >= deadline {
                break;
            }
        }
    }

    let tokens: Vec<u64> = conns.keys().copied().collect();
    for t in tokens {
        close_conn(&mut conns, &shared, &net, t);
    }
    // DoneGuard publishes `done` and wakes the workers.
}

fn accept_ready(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    net: &Arc<NetShared>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    backoff: &mut Duration,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                *backoff = ACCEPT_BACKOFF_START;
                register_conn(stream, shared, net, conns, next_token);
            }
            Err(e) => match classify_accept_error(&e) {
                AcceptError::Retry => break,
                AcceptError::PeerAborted => {
                    shared.stats.accepts_failed.fetch_add(1, Ordering::Relaxed);
                }
                AcceptError::Exhausted => {
                    shared.stats.accepts_failed.fetch_add(1, Ordering::Relaxed);
                    // Bounded backoff on the reactor itself: with zero fd
                    // headroom there is nothing better to do than yield.
                    thread::sleep(*backoff);
                    *backoff = next_backoff(*backoff);
                    break;
                }
            },
        }
    }
}

fn register_conn(
    stream: TcpStream,
    shared: &Arc<Shared>,
    net: &Arc<NetShared>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let Ok(kill_handle) = stream.try_clone() else {
        return;
    };
    let Some(sid) = shared
        .sessions
        .try_register(kill_handle, shared.config.max_sessions)
    else {
        // Best effort: the rejection frame usually fits the socket buffer.
        let _ = (&stream).write_all(session_full_response().as_bytes());
        let _ = (&stream).write_all(b"\n");
        return;
    };

    let token = *next_token;
    *next_token += 1;
    let mut wbuf = greeting(shared, sid).into_bytes();
    wbuf.push(b'\n');
    let mut conn = Conn {
        stream,
        sid,
        rbuf: Vec::new(),
        wbuf,
        wpos: 0,
        interest: Interest::NONE,
        paused: false,
        eof: false,
        closing: false,
        work: Arc::new(ConnWork {
            token,
            sid,
            inner: Mutex::new(WorkInner {
                pending: VecDeque::new(),
                responses: VecDeque::new(),
                state: Some(ConnState::new()),
                scheduled: false,
                closed: false,
                close_after: false,
            }),
        }),
    };
    if net
        .poller
        .register(conn.stream.as_raw_fd(), token, Interest::READ)
        .is_err()
    {
        shared.sessions.deregister(sid);
        return;
    }
    conn.interest = Interest::READ;
    shared.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
    shared.stats.open_conns.fetch_add(1, Ordering::Relaxed);
    if !try_write(&mut conn, net) {
        // Greeting failed outright (peer already gone).
        shared.sessions.deregister(sid);
        shared.stats.open_conns.fetch_sub(1, Ordering::Relaxed);
        let _ = net.poller.deregister(conn.stream.as_raw_fd());
        return;
    }
    conns.insert(token, conn);
}

/// Write as much of `wbuf` as the socket takes, then fix up interest.
/// Returns false on a dead socket.
fn try_write(conn: &mut Conn, net: &NetShared) -> bool {
    while conn.wpos < conn.wbuf.len() {
        match (&conn.stream).write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return false,
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.flushed() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    update_interest(conn, net);
    true
}

/// Reconcile the poller registration with what the state machine wants:
/// read unless paused/eof/closing, write while bytes are buffered.
fn update_interest(conn: &mut Conn, net: &NetShared) {
    let want = Interest {
        read: !conn.paused && !conn.eof && !conn.closing,
        write: !conn.flushed(),
    };
    if want != conn.interest
        && net
            .poller
            .reregister(conn.stream.as_raw_fd(), conn.work.token, want)
            .is_ok()
    {
        conn.interest = want;
    }
}

/// Drain the socket into `rbuf`, frame complete lines into the work cell,
/// apply backpressure. Returns false on a dead socket or protocol abuse.
fn on_readable(
    conn: &mut Conn,
    shared: &Arc<Shared>,
    net: &Arc<NetShared>,
    global_paused: &mut bool,
) -> bool {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match (&conn.stream).read(&mut buf) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&buf[..n]);
                // Fairness bound: a firehose client yields the reactor
                // after ~1 MiB; level-triggered epoll re-reports it.
                if conn.rbuf.len() >= MAX_LINE {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }

    decode_lines(conn, shared, net);

    // A single line larger than MAX_LINE is a protocol error, exactly as
    // in the threaded front end.
    if conn.rbuf.len() > MAX_LINE {
        return false;
    }
    // EOF with a final unterminated line: still a request (parity with
    // the threaded reader).
    if conn.eof && !conn.rbuf.is_empty() {
        let tail = std::mem::take(&mut conn.rbuf);
        let line = String::from_utf8_lossy(&tail).into_owned();
        if !line.trim().is_empty() {
            enqueue_request(conn, shared, net, line);
        }
    }

    // Backpressure: pause read interest instead of erroring. Resumed in
    // `flush_responses` (per-connection cap) or the reactor tick (global
    // watermark).
    if !conn.paused && !conn.eof {
        let global = shared.stats.net_inflight.load(Ordering::Relaxed)
            >= shared.config.global_inflight_high();
        if global || conn.inflight() >= shared.config.pipeline_depth.max(1) {
            conn.paused = true;
            *global_paused |= global;
            shared.stats.read_pauses.fetch_add(1, Ordering::Relaxed);
            update_interest(conn, net);
        }
    }
    true
}

/// Split complete lines out of `rbuf` and hand them to the work cell.
fn decode_lines(conn: &mut Conn, shared: &Arc<Shared>, net: &Arc<NetShared>) {
    let mut start = 0;
    while let Some(pos) = conn.rbuf[start..].iter().position(|&b| b == b'\n') {
        let end = start + pos;
        let line = String::from_utf8_lossy(&conn.rbuf[start..end]).into_owned();
        start = end + 1;
        if line.trim().is_empty() {
            continue;
        }
        enqueue_request(conn, shared, net, line);
    }
    if start > 0 {
        conn.rbuf.drain(..start);
    }
}

fn enqueue_request(conn: &mut Conn, shared: &Arc<Shared>, net: &Arc<NetShared>, line: String) {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    shared.sessions.touch(conn.sid);
    shared.stats.net_inflight.fetch_add(1, Ordering::Relaxed);
    let schedule = {
        let mut g = conn.work.inner.lock();
        g.pending.push_back(line);
        let depth = g.pending.len() + usize::from(g.state.is_none());
        shared.pipeline_depth.observe_us(depth as u64);
        let schedule = !g.scheduled && !g.closed;
        if schedule {
            g.scheduled = true;
        }
        schedule
    };
    if schedule {
        net.ready.lock().push_back(conn.work.clone());
        net.ready_cv.notify_one();
    }
}

/// Move finished response frames into write buffers and push them out.
fn flush_responses(conns: &mut HashMap<u64, Conn>, shared: &Arc<Shared>, net: &Arc<NetShared>) {
    let tokens: Vec<u64> = std::mem::take(&mut *net.flush.lock());
    for token in tokens {
        let mut close = false;
        if let Some(conn) = conns.get_mut(&token) {
            {
                let mut g = conn.work.inner.lock();
                while let Some(r) = g.responses.pop_front() {
                    conn.wbuf.extend_from_slice(r.as_bytes());
                    conn.wbuf.push(b'\n');
                }
                if g.close_after {
                    conn.closing = true;
                }
            }
            if !try_write(conn, net) || conn_should_close(conn) {
                close = true;
            } else {
                maybe_unpause(conn, shared, net, false);
            }
        }
        if close {
            close_conn(conns, shared, net, token);
        }
    }
}

/// Resume read interest once the connection is back under its pipeline
/// cap (and the global watermark, unless the caller is the global-release
/// sweep itself, which passes `global_still_paused = false`).
fn maybe_unpause(conn: &mut Conn, shared: &Arc<Shared>, net: &Arc<NetShared>, _global_sweep: bool) {
    if !conn.paused {
        return;
    }
    let global_ok = shared.stats.net_inflight.load(Ordering::Relaxed)
        < shared.config.global_inflight_high();
    if global_ok && conn.inflight() < shared.config.pipeline_depth.max(1) {
        conn.paused = false;
        update_interest(conn, net);
    }
}

fn conn_should_close(conn: &Conn) -> bool {
    if conn.closing && conn.flushed() {
        return true;
    }
    if conn.eof && conn.flushed() {
        let g = conn.work.inner.lock();
        return g.pending.is_empty() && g.responses.is_empty() && g.state.is_some();
    }
    false
}

/// Tear one connection down: deregister, mark the work cell closed, drop
/// the session state (aborting any open transaction) if no worker holds
/// it, release the session slot. The socket closes when `Conn` drops.
fn close_conn(
    conns: &mut HashMap<u64, Conn>,
    shared: &Arc<Shared>,
    net: &Arc<NetShared>,
    token: u64,
) {
    let Some(conn) = conns.remove(&token) else {
        return;
    };
    let _ = net.poller.deregister(conn.stream.as_raw_fd());
    let state = {
        let mut g = conn.work.inner.lock();
        g.closed = true;
        let dropped = g.pending.len() as u64;
        g.pending.clear();
        g.responses.clear();
        if dropped > 0 {
            shared.stats.net_inflight.fetch_sub(dropped, Ordering::Relaxed);
        }
        g.state.take()
    };
    if let Some(st) = state {
        drop_state(shared, st);
    }
    shared.sessions.deregister(conn.sid);
    shared.stats.open_conns.fetch_sub(1, Ordering::Relaxed);
}
