//! The query server: accept path, per-connection sessions, admission
//! control, request dispatch, maintenance, graceful shutdown.
//!
//! Two network front ends share everything below the framing layer
//! (`PMEMGRAPH_NET_MODE`, DESIGN.md §15):
//!
//! * **evented** (default on Linux) — an epoll reactor owns every socket
//!   as a non-blocking state machine and a fixed pool of net workers
//!   executes decoded requests from per-connection queues, one at a time
//!   per connection so pipelined responses stay in order. See
//!   [`crate::evented`].
//! * **threaded** — thread per connection with blocking reads; the
//!   fallback on non-Linux targets and the baseline the async bench
//!   gates against.
//!
//! In both modes a session's open transaction is a `GraphTxn` borrowing
//! the shared database, owned by exactly one thread at a time — dropping
//! the connection's state rolls back any uncommitted write transaction,
//! which makes client crash, idle-timeout kill and server shutdown one
//! code path (see DESIGN.md §7).
//!
//! Concurrency is bounded three ways:
//!
//! * the **session table** caps concurrent connections (`max_sessions`);
//! * the **worker pool** caps concurrent query executions (`workers`) —
//!   a counting semaphore, not a queue. A request that cannot get an
//!   execution slot within `admission_wait` is rejected with a retryable
//!   `SERVER_BUSY`, so overload degrades into fast rejections instead of
//!   unbounded queueing;
//! * in evented mode, **read-interest backpressure**: a connection with
//!   `pipeline_depth` requests in flight (or a globally saturated request
//!   queue) stops being *read* until responses drain, so a pipelining
//!   client is flow-controlled by TCP instead of being errored at.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ganalytics::{algo, CsrSnapshot, SnapshotCache, SnapshotSpec};
use gjit::JitEngine;
use gobs::{Exporter, Histogram, Registry, SlowEntry, SlowLog, Snapshot};
use gquery::{ExecCtx, ExecProfile, QueryError};
use graphcore::{GraphDb, GraphError, GraphTxn};
use gtxn::{SyncMode, TxnError};
use ldbc::{Mode, QuerySpec, SnbDb};
use parking_lot::{Condvar, Mutex};

use crate::catalog::{Catalog, NamedQuery};
use crate::json::{obj, Json};
use crate::proto::{
    err_response, json_to_pval, ok_response, slot_to_json, ErrorCode, ProtoError, Request,
};
use crate::session::SessionTable;

/// Longest accepted request line (1 MiB) — a runaway frame is a protocol
/// error, not an allocation.
pub(crate) const MAX_LINE: usize = 1 << 20;

/// How often blocked reads wake up to check the stop flag.
const READ_TICK: Duration = Duration::from_millis(100);

/// Which network front end serves connections (`PMEMGRAPH_NET_MODE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetMode {
    /// Thread per connection, blocking reads.
    Threaded,
    /// Epoll reactor + fixed net-worker pool (Linux only).
    Evented,
}

impl NetMode {
    /// Parse the knob; anything unrecognized keeps the default.
    pub fn from_env() -> NetMode {
        match gconfig::net_mode().trim().to_ascii_lowercase().as_str() {
            "threaded" | "thread" | "blocking" => NetMode::Threaded,
            _ => NetMode::Evented,
        }
    }

    /// The mode that will actually run: evented needs epoll.
    pub fn resolve(self) -> NetMode {
        if self == NetMode::Evented && !crate::reactor::supported() {
            NetMode::Threaded
        } else {
            self
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            NetMode::Threaded => "threaded",
            NetMode::Evented => "evented",
        }
    }
}

/// Server tuning knobs. `Default` is sized for tests and small
/// deployments; the binary overrides from the environment.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Concurrent query-execution slots (admission-control semaphore).
    pub workers: usize,
    /// Maximum concurrent sessions; further connects get `SERVER_BUSY`.
    /// `Default` reads `PMEMGRAPH_MAX_CONNS`.
    pub max_sessions: usize,
    /// Sessions idle longer than this are force-closed (open transactions
    /// roll back).
    pub idle_timeout: Duration,
    /// Cadence of the maintenance tick (idle sweep + storage reclamation).
    pub maintenance_interval: Duration,
    /// Deadline applied when a request doesn't carry `deadline_ms`.
    pub default_deadline: Duration,
    /// How long a request may wait for an execution slot before being
    /// rejected with `SERVER_BUSY`.
    pub admission_wait: Duration,
    /// Morsel threads for adaptive execution of scan-headed plans.
    pub exec_threads: usize,
    /// Rows returned per response; larger results are truncated.
    pub max_result_rows: usize,
    /// How long shutdown waits for in-flight sessions before force-closing.
    pub drain_timeout: Duration,
    /// Honour the `shutdown` op (CI smoke / embedded use).
    pub allow_remote_shutdown: bool,
    /// Honour the `sleep` debug op (load tests).
    pub enable_debug_ops: bool,
    /// Bind address for the standalone Prometheus exporter (`None` = no
    /// exporter; the `METRICS` verb works either way). `Default` reads
    /// `PMEMGRAPH_METRICS_ADDR`.
    pub metrics_addr: Option<String>,
    /// Slow-query capture threshold in µs; `u64::MAX` disables capture.
    /// `Default` reads `PMEMGRAPH_SLOW_QUERY_US`.
    pub slow_query_us: u64,
    /// Bound on the slow-query ring (oldest entries evicted first).
    pub slowlog_capacity: usize,
    /// Network front end (`PMEMGRAPH_NET_MODE`); `serve` resolves
    /// `Evented` down to `Threaded` on targets without epoll.
    pub net_mode: NetMode,
    /// Evented-mode request-processing threads (`PMEMGRAPH_NET_WORKERS`;
    /// 0 = auto: `max(workers, 4)`).
    pub net_workers: usize,
    /// Per-connection in-flight request cap (`PMEMGRAPH_PIPELINE_DEPTH`).
    /// Past it the reactor pauses the socket's read interest.
    pub pipeline_depth: usize,
}

impl ServerConfig {
    /// Net-worker thread count with the auto default applied.
    pub fn net_workers_effective(&self) -> usize {
        if self.net_workers == 0 {
            self.workers.max(4)
        } else {
            self.net_workers
        }
    }

    /// Global decoded-request watermark: above it the reactor pauses read
    /// interest on the offending connections; reads resume below half of
    /// it. Sized so every net worker can stay busy through a full
    /// per-connection pipeline without the queue growing unboundedly.
    pub(crate) fn global_inflight_high(&self) -> u64 {
        (self.net_workers_effective() as u64 * self.pipeline_depth.max(1) as u64).max(64) * 2
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_sessions: gconfig::max_conns() as usize,
            idle_timeout: Duration::from_secs(60),
            maintenance_interval: Duration::from_millis(500),
            default_deadline: Duration::from_secs(5),
            admission_wait: Duration::from_millis(100),
            exec_threads: 2,
            max_result_rows: 1024,
            drain_timeout: Duration::from_secs(5),
            allow_remote_shutdown: false,
            enable_debug_ops: false,
            metrics_addr: gconfig::metrics_addr(),
            slow_query_us: gconfig::slow_query_us(),
            slowlog_capacity: 128,
            net_mode: NetMode::from_env(),
            net_workers: gconfig::net_workers() as usize,
            pipeline_depth: gconfig::pipeline_depth() as usize,
        }
    }
}

/// Server-level counters (monotonic; exposed through `STATS`).
#[derive(Debug, Default)]
pub struct ServerStats {
    pub requests: AtomicU64,
    pub admitted: AtomicU64,
    pub rejected: AtomicU64,
    pub errors: AtomicU64,
    pub deadline_misses: AtomicU64,
    pub sessions_opened: AtomicU64,
    pub sessions_expired: AtomicU64,
    pub disconnect_rollbacks: AtomicU64,
    pub maintenance_runs: AtomicU64,
    pub reclaimed_slots: AtomicU64,
    pub vacuumed_props: AtomicU64,
    /// Morsels executed by the AOT interpreter, across all requests.
    pub interpreted_morsels: AtomicU64,
    /// Morsels executed as JIT-compiled code, across all requests.
    pub compiled_morsels: AtomicU64,
    /// Chunks skipped by zone-map predicate pushdown, across all requests.
    pub chunks_pruned: AtomicU64,
    /// Morsels that scanned through the MVTO single-version fast path.
    pub fast_path_morsels: AtomicU64,
    /// Rows surviving chunk pruning whose residual filters ran through
    /// the AST interpreter.
    pub residual_rows_interp: AtomicU64,
    /// Rows surviving chunk pruning whose residual filters ran as a
    /// compiled expression (the gjit expression tier).
    pub residual_rows_compiled: AtomicU64,
    /// Requests whose profile recorded a fallback from the mode's fast
    /// path (update plan, non-morsel access path, or JIT-unsupported).
    pub fallback_total: AtomicU64,
    /// Connections currently open (gauge semantics; both net modes).
    pub open_conns: AtomicU64,
    /// `accept()` failures other than would-block (EMFILE/ECONNABORTED
    /// and friends) — each one retried with bounded backoff.
    pub accepts_failed: AtomicU64,
    /// Eventfd nudges delivered to a parked reactor (evented mode).
    pub reactor_wakeups: AtomicU64,
    /// `epoll_wait` calls made by the reactor (evented mode).
    pub epoll_waits: AtomicU64,
    /// Times a connection's read interest was paused for backpressure
    /// (per-connection pipeline cap or the global inflight watermark).
    pub read_pauses: AtomicU64,
    /// Decoded requests not yet answered (gauge; evented mode).
    pub net_inflight: AtomicU64,
}

// ---------------------------------------------------------------------
// Worker pool: a counting semaphore with timed acquire.
// ---------------------------------------------------------------------

struct WorkerPool {
    slots: Mutex<usize>,
    cv: Condvar,
}

/// RAII execution slot; releasing wakes one waiter.
struct Permit {
    pool: Arc<WorkerPool>,
}

impl WorkerPool {
    fn new(n: usize) -> Arc<WorkerPool> {
        Arc::new(WorkerPool {
            slots: Mutex::new(n),
            cv: Condvar::new(),
        })
    }

    /// Acquire a slot, waiting at most `wait`; `None` means saturated.
    fn try_acquire(self: &Arc<WorkerPool>, wait: Duration) -> Option<Permit> {
        let deadline = Instant::now() + wait;
        let mut slots = self.slots.lock();
        loop {
            if *slots > 0 {
                *slots -= 1;
                return Some(Permit { pool: self.clone() });
            }
            if self.cv.wait_until(&mut slots, deadline).timed_out() {
                if *slots > 0 {
                    *slots -= 1;
                    return Some(Permit { pool: self.clone() });
                }
                return None;
            }
        }
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        *self.pool.slots.lock() += 1;
        self.pool.cv.notify_one();
    }
}

// ---------------------------------------------------------------------
// Shared server state
// ---------------------------------------------------------------------

pub(crate) struct Shared {
    pub(crate) snb: Arc<SnbDb>,
    engine: Arc<JitEngine>,
    pub(crate) catalog: Catalog,
    pub(crate) config: ServerConfig,
    // Arc so registry fn-metrics can capture the stat owners without
    // referencing `Shared` itself (which owns the registry).
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) sessions: Arc<SessionTable>,
    /// Per-server metric registry (fn-metrics over the cells above plus
    /// the request histogram); `STATS`/`METRICS`/the exporter snapshot it.
    registry: Registry,
    request_us: Histogram,
    /// In-flight requests per connection, observed as each request is
    /// decoded (threaded mode always observes 1: no pipelined buffering).
    pub(crate) pipeline_depth: Histogram,
    slowlog: Arc<SlowLog>,
    pool: Arc<WorkerPool>,
    /// Epoch-validated CSR snapshots backing the `ANALYTICS` verb.
    analytics: SnapshotCache,
    pub(crate) stop: AtomicBool,
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// Evented-mode coordination (ready queue, waker); `None` when the
    /// resolved net mode is threaded.
    pub(crate) net: Option<Arc<crate::evented::NetShared>>,
}

/// Handle to a running server. `wait()` blocks until the server stops
/// (via [`ServerHandle::request_shutdown`] from a clone-free context — the
/// stats/addr accessors — or a remote `shutdown` op), then joins every
/// thread. Dropping the handle stops the server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// Threaded mode: the accept thread. Evented mode: the reactor thread
    /// (which owns the listener and performs the drain itself).
    accept: Option<JoinHandle<()>>,
    /// Evented-mode net workers.
    workers: Vec<JoinHandle<()>>,
    maint: Option<JoinHandle<()>>,
    exporter: Option<Exporter>,
}

impl ServerHandle {
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Bound address of the standalone metrics exporter, when one was
    /// configured (useful with port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.exporter.as_ref().map(Exporter::local_addr)
    }

    pub fn active_sessions(&self) -> usize {
        self.shared.sessions.active_count()
    }

    /// The network front end actually serving (post-`resolve`).
    pub fn net_mode(&self) -> NetMode {
        self.shared.config.net_mode
    }

    /// Ask the server to stop; returns immediately.
    pub fn request_shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(net) = &self.shared.net {
            net.wake_all();
        }
    }

    /// Block until the server stops, then drain in-flight sessions and
    /// join all threads.
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Stop and drain: `request_shutdown` + `wait`.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.wait();
    }

    fn join_all(&mut self) {
        // The accept join doubles as "block until shutdown is requested"
        // (`wait()` parks here with the stop flag still clear), so the
        // exporter must outlive it — scrapes keep working while the
        // server runs. It goes down first once shutdown actually starts:
        // its render closure holds `Shared`, and scrapes of a
        // half-drained server are useless anyway.
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        drop(self.exporter.take());
        // Threaded mode: connection threads notice the stop flag within
        // one READ_TICK and finish their in-flight request first;
        // force-close whatever is still around after the drain window.
        // (Evented mode drains inside the reactor thread joined above —
        // `conns` is empty, so this loop exits immediately.)
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        loop {
            if self.shared.conns.lock().iter().all(JoinHandle::is_finished) {
                break;
            }
            if Instant::now() >= deadline {
                self.shared.sessions.shutdown_all();
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.conns.lock());
        for h in handles {
            let _ = h.join();
        }
        // Net workers exit once the reactor has published its done flag
        // and the ready queue is empty; it already has by this point.
        if let Some(net) = &self.shared.net {
            net.wake_all();
        }
        for h in std::mem::take(&mut self.workers) {
            let _ = h.join();
        }
        if let Some(h) = self.maint.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.request_shutdown();
        self.join_all();
    }
}

/// Start the server. Returns once the listener is bound; all work happens
/// on background threads.
pub fn serve(
    snb: Arc<SnbDb>,
    engine: Arc<JitEngine>,
    mut config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    // Resolve the net mode up front so metrics, STATS and the actual
    // front end all agree. A reactor that cannot be built (no epoll, fd
    // exhaustion) downgrades to threaded instead of failing startup.
    config.net_mode = config.net_mode.resolve();
    let net = match config.net_mode {
        NetMode::Evented => match crate::evented::NetShared::new() {
            Ok(n) => Some(Arc::new(n)),
            Err(e) => {
                eprintln!("gserver: evented front end unavailable ({e}); falling back to threaded");
                config.net_mode = NetMode::Threaded;
                None
            }
        },
        NetMode::Threaded => None,
    };

    let catalog = Catalog::new(&snb.codes);
    let pool = WorkerPool::new(config.workers);
    let stats = Arc::new(ServerStats::default());
    let sessions = Arc::new(SessionTable::new());
    let slowlog = Arc::new(SlowLog::new(config.slowlog_capacity, config.slow_query_us));
    // A metrics consumer now exists, so turn on the span sites in
    // gtxn/gjit/gquery (they pay one relaxed load each until this).
    gobs::set_spans_enabled(true);
    let (registry, request_us, pipeline_depth) =
        crate::metrics::build_registry(&stats, &sessions, &snb, &engine, &config, &slowlog);
    let shared = Arc::new(Shared {
        snb,
        engine,
        catalog,
        config,
        stats,
        sessions,
        registry,
        request_us,
        pipeline_depth,
        slowlog,
        pool,
        analytics: SnapshotCache::new(),
        stop: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
        net,
    });

    // Bind the standalone exporter before spawning any server thread so a
    // bad PMEMGRAPH_METRICS_ADDR fails the whole startup cleanly.
    let exporter = match shared.config.metrics_addr.clone() {
        Some(maddr) => {
            let sh = shared.clone();
            Some(Exporter::serve(
                &maddr,
                Arc::new(move || exposition(&sh)),
            )?)
        }
        None => None,
    };

    let (accept, workers) = match shared.config.net_mode {
        NetMode::Threaded => {
            let shared = shared.clone();
            let h = thread::Builder::new()
                .name("gserver-accept".into())
                .spawn(move || accept_loop(listener, shared))?;
            (h, Vec::new())
        }
        NetMode::Evented => crate::evented::spawn(listener, shared.clone())?,
    };
    let maint = {
        let shared = shared.clone();
        thread::Builder::new()
            .name("gserver-maint".into())
            .spawn(move || maintenance_loop(shared))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
        maint: Some(maint),
        exporter,
    })
}

/// Render the Prometheus exposition: the process-global registry (span
/// histograms recorded inside the engine crates) merged with this
/// server's registry.
fn exposition(shared: &Shared) -> String {
    gobs::render(&Snapshot::collect(&[gobs::global(), &shared.registry]))
}

// ---------------------------------------------------------------------
// Accept + maintenance threads
// ---------------------------------------------------------------------

/// How a failed `accept()` should be handled. Shared by both front ends
/// so EMFILE/ECONNABORTED get the same counted, bounded-backoff treatment
/// everywhere (they used to fall through a generic match and silently
/// sleep).
pub(crate) enum AcceptError {
    /// No pending connection (or EINTR): not a failure.
    Retry,
    /// The *peer* aborted before we accepted (ECONNABORTED): count it and
    /// immediately try the next pending connection.
    PeerAborted,
    /// Transient local exhaustion (EMFILE/ENFILE out of fds, ENOBUFS/
    /// ENOMEM): count it and back off — retrying instantly would spin.
    Exhausted,
}

pub(crate) fn classify_accept_error(e: &std::io::Error) -> AcceptError {
    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) {
        return AcceptError::Retry;
    }
    if e.kind() == ErrorKind::ConnectionAborted {
        return AcceptError::PeerAborted;
    }
    // EMFILE/ENFILE/ENOBUFS/ENOMEM and anything else unexpected: resource
    // exhaustion is the only accept failure left that isn't per-peer, and
    // the safe treatment for an unknown error is the same counted backoff.
    AcceptError::Exhausted
}

/// Exponential accept backoff, bounded to 100ms so an fd-exhausted server
/// keeps probing for headroom instead of wedging.
pub(crate) fn next_backoff(cur: Duration) -> Duration {
    (cur * 2).min(Duration::from_millis(100))
}

pub(crate) const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut backoff = ACCEPT_BACKOFF_START;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                backoff = ACCEPT_BACKOFF_START;
                let sh = shared.clone();
                let spawned = thread::Builder::new()
                    .name("gserver-conn".into())
                    .spawn(move || handle_conn(stream, sh));
                if let Ok(h) = spawned {
                    let mut conns = shared.conns.lock();
                    conns.retain(|h| !h.is_finished());
                    conns.push(h);
                }
            }
            Err(e) => match classify_accept_error(&e) {
                AcceptError::Retry => {
                    if e.kind() == ErrorKind::WouldBlock {
                        thread::sleep(Duration::from_millis(10));
                    }
                }
                AcceptError::PeerAborted => {
                    shared.stats.accepts_failed.fetch_add(1, Ordering::Relaxed);
                }
                AcceptError::Exhausted => {
                    shared.stats.accepts_failed.fetch_add(1, Ordering::Relaxed);
                    thread::sleep(backoff);
                    backoff = next_backoff(backoff);
                }
            },
        }
    }
}

/// Background maintenance (satellite of the paper's GC design, §5.2):
/// sweep idle sessions, then reclaim storage — deferred node/rel slots
/// past the MVTO horizon, and superseded property chains when the engine
/// is fully quiesced (`vacuum_props` self-gates on active transactions
/// and live version chains).
fn maintenance_loop(shared: Arc<Shared>) {
    let mut last = Instant::now();
    while !shared.stop.load(Ordering::SeqCst) {
        thread::sleep(Duration::from_millis(20));
        if last.elapsed() < shared.config.maintenance_interval {
            continue;
        }
        last = Instant::now();
        let expired = shared.sessions.sweep_idle(shared.config.idle_timeout);
        shared
            .stats
            .sessions_expired
            .fetch_add(expired as u64, Ordering::Relaxed);
        let reclaimed = shared.snb.db.reclaim_deleted();
        let vacuumed = shared.snb.db.vacuum_props();
        shared
            .stats
            .reclaimed_slots
            .fetch_add(reclaimed as u64, Ordering::Relaxed);
        shared
            .stats
            .vacuumed_props
            .fetch_add(vacuumed as u64, Ordering::Relaxed);
        shared.stats.maintenance_runs.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

/// Per-connection state: the open transaction (if any) and this session's
/// prepared statements. In threaded mode it lives on the connection
/// thread's stack; in evented mode it is parked in the connection's work
/// cell between requests and checked out by exactly one net worker at a
/// time (see [`crate::evented`]).
pub(crate) struct ConnState<'db> {
    pub(crate) txn: Option<GraphTxn<'db>>,
    pub(crate) prepared: HashMap<String, Arc<NamedQuery>>,
}

impl<'db> ConnState<'db> {
    pub(crate) fn new() -> ConnState<'db> {
        ConnState {
            txn: None,
            prepared: HashMap::new(),
        }
    }
}

pub(crate) enum Flow {
    Continue,
    Close,
}

/// The greeting frame both front ends write on accept.
pub(crate) fn greeting(shared: &Shared, sid: u64) -> String {
    ok_response(vec![
        ("server", Json::Str("pmemgraph".into())),
        ("session", Json::Int(sid as i64)),
        ("queries", Json::Int(shared.catalog.len() as i64)),
    ])
}

pub(crate) fn session_full_response() -> String {
    err_response(&ProtoError::new(
        ErrorCode::ServerBusy,
        "session table full",
    ))
}

/// Parse + dispatch one request line. The single entry point both front
/// ends feed decoded frames through, so protocol semantics cannot drift
/// between net modes.
pub(crate) fn process_line<'db>(
    shared: &Shared,
    db: &'db GraphDb,
    sid: u64,
    state: &mut ConnState<'db>,
    line: &str,
) -> (String, Flow) {
    match Request::parse(line) {
        Ok(req) => dispatch(shared, db, sid, state, req),
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            (err_response(&e), Flow::Continue)
        }
    }
}

fn handle_conn(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(kill_handle) = stream.try_clone() else {
        return;
    };
    let Some(sid) = shared
        .sessions
        .try_register(kill_handle, shared.config.max_sessions)
    else {
        let _ = writeln!(&stream, "{}", session_full_response());
        return;
    };
    shared.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
    shared.stats.open_conns.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = writeln!(&stream, "{}", greeting(&shared, sid));

    let db = &shared.snb.db;
    let mut state = ConnState::new();
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();

    loop {
        line.clear();
        match read_request_line(&mut reader, &mut line, &shared.stop) {
            ReadOutcome::Line => {}
            ReadOutcome::Eof | ReadOutcome::Stopped => break,
        }
        if line.trim().is_empty() {
            continue;
        }
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        // Blocking front end: exactly one request in flight per
        // connection, by construction.
        shared.pipeline_depth.observe_us(1);
        shared.sessions.touch(sid);
        let (response, flow) = process_line(&shared, db, sid, &mut state, &line);
        if writeln!(&stream, "{response}").is_err() {
            break;
        }
        if matches!(flow, Flow::Close) {
            break;
        }
    }

    // Disconnect cleanup — the rollback-on-disconnect guarantee. Explicit
    // abort (rather than relying on Drop) so the path is auditable and
    // counted.
    if let Some(txn) = state.txn.take() {
        txn.abort();
        shared
            .stats
            .disconnect_rollbacks
            .fetch_add(1, Ordering::Relaxed);
    }
    shared.stats.open_conns.fetch_sub(1, Ordering::Relaxed);
    shared.sessions.deregister(sid);
}

enum ReadOutcome {
    Line,
    Eof,
    Stopped,
}

/// Read one `\n`-terminated request line, preserving partial data across
/// read-timeout ticks so the stop flag is observed even on an idle
/// connection.
fn read_request_line(
    reader: &mut BufReader<&TcpStream>,
    line: &mut String,
    stop: &AtomicBool,
) -> ReadOutcome {
    loop {
        match reader.read_line(line) {
            Ok(0) => {
                // EOF; a final unterminated line is still a request.
                return if line.trim().is_empty() {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Line
                };
            }
            Ok(_) if line.ends_with('\n') => return ReadOutcome::Line,
            Ok(_) => {} // partial (no newline yet): keep reading
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return ReadOutcome::Stopped;
                }
                if line.len() > MAX_LINE {
                    return ReadOutcome::Eof;
                }
            }
            Err(_) => return ReadOutcome::Eof, // reset / forced close
        }
    }
}

fn dispatch<'db>(
    shared: &Shared,
    db: &'db GraphDb,
    sid: u64,
    state: &mut ConnState<'db>,
    req: Request,
) -> (String, Flow) {
    let result: Result<(String, Flow), ProtoError> = match req {
        Request::Hello => Ok((
            ok_response(vec![
                ("server", Json::Str("pmemgraph".into())),
                ("session", Json::Int(sid as i64)),
                ("queries", Json::Int(shared.catalog.len() as i64)),
            ]),
            Flow::Continue,
        )),
        Request::Ping => Ok((ok_response(vec![]), Flow::Continue)),
        Request::Quit => Ok((ok_response(vec![]), Flow::Close)),
        Request::Begin => do_begin(shared, db, sid, state),
        Request::Commit => do_commit(shared, sid, state),
        Request::Rollback => do_rollback(shared, sid, state),
        Request::Prepare { name, query } => {
            shared.catalog.resolve(db, &query).map(|q| {
                let n_params = q.n_params;
                state.prepared.insert(name, q);
                (
                    ok_response(vec![("params", Json::Int(n_params as i64))]),
                    Flow::Continue,
                )
            })
        }
        Request::Execute {
            name,
            query,
            params,
            deadline_ms,
        } => do_execute(shared, db, state, name, query, &params, deadline_ms)
            .map(|resp| (resp, Flow::Continue)),
        Request::Stats => Ok((stats_response(shared), Flow::Continue)),
        Request::Analytics {
            algo,
            source,
            iters,
            damping,
            node_label,
            rel_label,
            deadline_ms,
        } => do_analytics(
            shared,
            db,
            &algo,
            source,
            iters,
            damping,
            node_label.as_deref(),
            rel_label.as_deref(),
            deadline_ms,
        )
        .map(|resp| (resp, Flow::Continue)),
        Request::Checkpoint => do_checkpoint(shared, db).map(|resp| (resp, Flow::Continue)),
        Request::Config { sync_mode } => {
            do_config(shared, db, sync_mode.as_deref()).map(|resp| (resp, Flow::Continue))
        }
        Request::Metrics => Ok((
            ok_response(vec![("metrics", Json::Str(exposition(shared)))]),
            Flow::Continue,
        )),
        Request::Slowlog { clear } => Ok((slowlog_response(shared, clear), Flow::Continue)),
        Request::JitCache { action } => {
            do_jitcache(shared, &action).map(|resp| (resp, Flow::Continue))
        }
        Request::Shutdown => {
            if shared.config.allow_remote_shutdown {
                shared.stop.store(true, Ordering::SeqCst);
                Ok((ok_response(vec![]), Flow::Close))
            } else {
                Err(ProtoError::bad_request("remote shutdown is disabled"))
            }
        }
        Request::Sleep { ms } => do_sleep(shared, ms),
    };
    match result {
        Ok(out) => out,
        Err(e) => {
            if e.code == ErrorCode::DeadlineExceeded {
                shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
            }
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            (err_response(&e), Flow::Continue)
        }
    }
}

fn do_begin<'db>(
    shared: &Shared,
    db: &'db GraphDb,
    sid: u64,
    state: &mut ConnState<'db>,
) -> Result<(String, Flow), ProtoError> {
    if state.txn.is_some() {
        return Err(ProtoError::new(
            ErrorCode::TxnAlreadyOpen,
            "a transaction is already open on this session",
        ));
    }
    if shared.stop.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorCode::ShuttingDown,
            "server is draining",
        ));
    }
    let txn = db.begin();
    let id = txn.id();
    state.txn = Some(txn);
    shared.sessions.set_in_txn(sid, true);
    Ok((
        ok_response(vec![("txn", Json::Int(id as i64))]),
        Flow::Continue,
    ))
}

fn do_commit(
    shared: &Shared,
    sid: u64,
    state: &mut ConnState<'_>,
) -> Result<(String, Flow), ProtoError> {
    let txn = state.txn.take().ok_or_else(|| {
        ProtoError::new(ErrorCode::NoTransaction, "no open transaction")
    })?;
    shared.sessions.set_in_txn(sid, false);
    txn.commit().map_err(graph_err)?;
    Ok((ok_response(vec![]), Flow::Continue))
}

fn do_rollback(
    shared: &Shared,
    sid: u64,
    state: &mut ConnState<'_>,
) -> Result<(String, Flow), ProtoError> {
    let txn = state.txn.take().ok_or_else(|| {
        ProtoError::new(ErrorCode::NoTransaction, "no open transaction")
    })?;
    shared.sessions.set_in_txn(sid, false);
    txn.abort();
    Ok((ok_response(vec![]), Flow::Continue))
}

fn do_execute(
    shared: &Shared,
    db: &GraphDb,
    state: &mut ConnState<'_>,
    name: Option<String>,
    query: Option<String>,
    params_json: &[Json],
    deadline_ms: Option<u64>,
) -> Result<String, ProtoError> {
    let start = Instant::now();
    let q: Arc<NamedQuery> = match (&name, &query) {
        (Some(n), _) => state.prepared.get(n).cloned().ok_or_else(|| {
            ProtoError::new(
                ErrorCode::UnknownQuery,
                format!("no prepared statement named {n:?}"),
            )
        })?,
        (None, Some(text)) => shared.catalog.resolve(db, text)?,
        (None, None) => unreachable!("parser guarantees name or query"),
    };
    let mut params = Vec::with_capacity(params_json.len());
    for p in params_json {
        params.push(json_to_pval(db, p)?);
    }
    if params.len() < q.n_params {
        return Err(ProtoError::bad_request(format!(
            "query {:?} needs {} parameter(s), got {}",
            q.spec.name,
            q.n_params,
            params.len()
        )));
    }
    // Clamp client-supplied deadlines to an hour so a bogus u64 cannot
    // overflow Instant arithmetic.
    let deadline = start
        + deadline_ms
            .map(|ms| Duration::from_millis(ms.min(3_600_000)))
            .unwrap_or(shared.config.default_deadline);

    if shared.stop.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorCode::ShuttingDown,
            "server is draining",
        ));
    }

    // Admission control: a bounded wait for an execution slot, clipped to
    // the request deadline. Saturation is an immediate, retryable error.
    let wait = shared
        .config
        .admission_wait
        .min(deadline.saturating_duration_since(Instant::now()));
    let Some(_permit) = shared.pool.try_acquire(wait) else {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        return Err(ProtoError::new(
            ErrorCode::ServerBusy,
            "worker pool saturated",
        ));
    };
    shared.stats.admitted.fetch_add(1, Ordering::Relaxed);

    let threads = shared.config.exec_threads.max(1);
    let (rows, profile, match_plan) = if let Some(pg) = &q.pattern {
        // MATCH: plan per request (the cost model prices zone-map survival
        // against the actual parameter values, and PGO observations from
        // earlier runs reprice mis-estimated segments), then execute the
        // chosen pipelines adaptively. Patterns read their own snapshot.
        if state.txn.is_some() {
            return Err(ProtoError::bad_request(
                "match queries run autocommit only (not inside an open transaction)",
            ));
        }
        let stats = gmatch::DbStats(db);
        let mp = gmatch::plan(
            pg,
            &stats,
            &params,
            Some(shared.engine.pgo()),
            gmatch::PlanChoice::Best,
        )
        .map_err(|e| ProtoError::bad_request(format!("match: {e}")))?;
        let backend = gmatch::Backend::Adaptive(&shared.engine, threads);
        let (rows, profile) = gmatch::execute_match(&mp, db, backend, &params)
            .map_err(|e| ProtoError::new(ErrorCode::Internal, format!("match: {e}")))?;
        (rows, profile, Some(mp.summary))
    } else {
        let mode = Mode::Adaptive(&shared.engine, threads);
        let (rows, profile) = match state.txn.as_mut() {
            Some(txn) => run_steps(&q.spec, txn, &params, &mode, deadline)?,
            None => {
                // Autocommit: reads commit trivially, updates commit here;
                // an error (including a missed deadline) drops the
                // transaction, aborting any partial writes.
                let mut txn = db.begin();
                let out = run_steps(&q.spec, &mut txn, &params, &mode, deadline)?;
                if q.is_update {
                    txn.commit().map_err(graph_err)?;
                }
                out
            }
        };
        (rows, profile, None)
    };
    shared
        .stats
        .interpreted_morsels
        .fetch_add(profile.interpreted_morsels, Ordering::Relaxed);
    shared
        .stats
        .compiled_morsels
        .fetch_add(profile.compiled_morsels, Ordering::Relaxed);
    shared
        .stats
        .chunks_pruned
        .fetch_add(profile.chunks_pruned, Ordering::Relaxed);
    shared
        .stats
        .fast_path_morsels
        .fetch_add(profile.fast_path_morsels, Ordering::Relaxed);
    shared
        .stats
        .residual_rows_interp
        .fetch_add(profile.residual_rows_interp, Ordering::Relaxed);
    shared
        .stats
        .residual_rows_compiled
        .fetch_add(profile.residual_rows_compiled, Ordering::Relaxed);
    if profile.fallback.is_some() {
        shared.stats.fallback_total.fetch_add(1, Ordering::Relaxed);
    }

    let total = rows.len();
    let cap = shared.config.max_result_rows;
    let jrows: Vec<Json> = rows
        .iter()
        .take(cap)
        .map(|row| Json::Arr(row.iter().map(|s| slot_to_json(db, s)).collect()))
        .collect();

    let elapsed_us =
        gobs::saturating_elapsed(start).as_micros().min(u64::MAX as u128) as u64;
    shared.request_us.observe_us(elapsed_us);
    shared.slowlog.maybe_record(elapsed_us, || {
        slow_entry(
            &q,
            name.as_deref(),
            query.as_deref(),
            match_plan.as_deref(),
            elapsed_us,
            &profile,
        )
    });

    Ok(ok_response(vec![
        ("rows", Json::Arr(jrows)),
        ("row_count", Json::Int(total as i64)),
        ("truncated", Json::Bool(total > cap)),
        ("elapsed_us", Json::Int(elapsed_us.min(i64::MAX as u64) as i64)),
        ("profile", profile_json(&profile)),
    ]))
}

/// Capture one slow query: what the client asked for, the operator chain
/// of every pipeline step, and the full execution profile. Built only for
/// requests already past the threshold (the closure in `maybe_record`).
fn slow_entry(
    q: &NamedQuery,
    name: Option<&str>,
    query: Option<&str>,
    match_plan: Option<&str>,
    elapsed_us: u64,
    profile: &ExecProfile,
) -> SlowEntry {
    let at_unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0);
    // MATCH queries report the planner's chosen order + access paths;
    // everything else reports the fixed operator chain of its steps.
    let plan = match match_plan {
        Some(s) => s.to_string(),
        None => q
            .spec
            .steps
            .iter()
            .map(|s| s.plan.summary())
            .collect::<Vec<_>>()
            .join("; "),
    };
    SlowEntry {
        at_unix_ms,
        query: query.or(name).unwrap_or(q.spec.name).to_string(),
        plan,
        mode: profile.mode.map(|m| m.as_str().to_string()),
        elapsed_us,
        rows: profile.rows,
        morsels: profile.morsels,
        interpreted_morsels: profile.interpreted_morsels,
        compiled_morsels: profile.compiled_morsels,
        chunks_pruned: profile.chunks_pruned,
        fast_path_morsels: profile.fast_path_morsels,
        residual_rows_interp: profile.residual_rows_interp,
        residual_rows_compiled: profile.residual_rows_compiled,
        fallback: profile.fallback.map(|f| f.as_str().to_string()),
        segments: profile
            .segments
            .iter()
            .map(|(n, d)| ((*n).to_string(), d.as_micros().min(u64::MAX as u128) as u64))
            .collect(),
    }
}

/// Response metadata for the per-query [`ExecProfile`].
fn profile_json(p: &ExecProfile) -> Json {
    obj(vec![
        (
            "mode",
            p.mode
                .map_or(Json::Null, |m| Json::Str(m.as_str().into())),
        ),
        ("morsels", Json::Int(p.morsels as i64)),
        ("interpreted_morsels", Json::Int(p.interpreted_morsels as i64)),
        ("compiled_morsels", Json::Int(p.compiled_morsels as i64)),
        ("rows", Json::Int(p.rows as i64)),
        ("chunks_pruned", Json::Int(p.chunks_pruned as i64)),
        ("fast_path_morsels", Json::Int(p.fast_path_morsels as i64)),
        ("residual_rows", Json::Int(p.residual_rows() as i64)),
        (
            "residual_rows_interp",
            Json::Int(p.residual_rows_interp as i64),
        ),
        (
            "residual_rows_compiled",
            Json::Int(p.residual_rows_compiled as i64),
        ),
        (
            "fallback",
            p.fallback
                .map_or(Json::Null, |f| Json::Str(f.as_str().into())),
        ),
        (
            "segments",
            Json::Arr(
                p.segments
                    .iter()
                    .map(|(name, d)| {
                        obj(vec![
                            ("name", Json::Str((*name).into())),
                            ("us", Json::Int(d.as_micros() as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "expansions",
            Json::Arr(
                p.expansions
                    .iter()
                    .map(|(desc, rows_in, rows_out)| {
                        obj(vec![
                            ("segment", Json::Str(desc.clone())),
                            ("rows_in", Json::Int((*rows_in).min(i64::MAX as u64) as i64)),
                            ("rows_out", Json::Int((*rows_out).min(i64::MAX as u64) as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The [`ldbc::run_spec_txn`] loop under an [`ExecCtx`] carrying the
/// request deadline, so expiry is observed *inside* plan execution (per
/// morsel / result batch), not just between pipeline steps. Each step's
/// profile is absorbed into one aggregate — including the profile of a
/// step that fails, so partial work is still accounted. A final check
/// reports a result that arrives late as missed, not returned.
fn run_steps(
    spec: &QuerySpec,
    txn: &mut GraphTxn<'_>,
    params: &[gstore::PVal],
    mode: &Mode<'_>,
    deadline: Instant,
) -> Result<(Vec<gquery::Row>, ExecProfile), ProtoError> {
    let mut rows: Vec<gquery::Row> = Vec::new();
    let mut profile = ExecProfile::default();
    let mut cur_params = params.to_vec();
    for step in &spec.steps {
        if let Some(col) = step.feed_col {
            let Some(first) = rows.first() else {
                return Ok((Vec::new(), profile));
            };
            cur_params.push(ldbc::slot_to_pval(&first[col]));
        }
        let mut ctx = ExecCtx::new(&cur_params).with_deadline(deadline);
        let step_rows = ldbc::run_plan_ctx(&step.plan, txn, &mut ctx, mode);
        profile.absorb(std::mem::take(&mut ctx.profile));
        rows = step_rows.map_err(query_err)?;
    }
    if Instant::now() >= deadline {
        return Err(deadline_err());
    }
    Ok((rows, profile))
}

fn deadline_err() -> ProtoError {
    ProtoError::new(
        ErrorCode::DeadlineExceeded,
        "request deadline elapsed during execution",
    )
}

fn query_err(e: QueryError) -> ProtoError {
    match &e {
        QueryError::Graph(GraphError::Txn(TxnError::Locked | TxnError::WriteConflict)) => {
            ProtoError::new(ErrorCode::TxnConflict, e.to_string())
        }
        QueryError::DeadlineExceeded => {
            ProtoError::new(ErrorCode::DeadlineExceeded, e.to_string())
        }
        _ => ProtoError::new(ErrorCode::Internal, e.to_string()),
    }
}

fn graph_err(e: GraphError) -> ProtoError {
    match &e {
        GraphError::Txn(TxnError::Locked | TxnError::WriteConflict) => {
            ProtoError::new(ErrorCode::TxnConflict, e.to_string())
        }
        _ => ProtoError::new(ErrorCode::Internal, e.to_string()),
    }
}

fn do_sleep(shared: &Shared, ms: u64) -> Result<(String, Flow), ProtoError> {
    if !shared.config.enable_debug_ops {
        return Err(ProtoError::bad_request("debug ops are disabled"));
    }
    let Some(_permit) = shared.pool.try_acquire(shared.config.admission_wait) else {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        return Err(ProtoError::new(
            ErrorCode::ServerBusy,
            "worker pool saturated",
        ));
    };
    shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
    let until = Instant::now() + Duration::from_millis(ms.min(60_000));
    loop {
        let left = until.saturating_duration_since(Instant::now());
        if left.is_zero() || shared.stop.load(Ordering::SeqCst) {
            break;
        }
        thread::sleep(left.min(Duration::from_millis(5)));
    }
    Ok((
        ok_response(vec![("slept_ms", Json::Int(ms as i64))]),
        Flow::Continue,
    ))
}

/// Resolve an optional label name to its dictionary code without
/// interning: an unknown label is a client mistake, not a new dictionary
/// entry.
fn label_code(db: &GraphDb, kind: &str, name: Option<&str>) -> Result<Option<u32>, ProtoError> {
    match name {
        None => Ok(None),
        Some(s) => db.dict().code_of(s).map(Some).ok_or_else(|| {
            ProtoError::bad_request(format!("unknown {kind} label {s:?}"))
        }),
    }
}

/// The `ANALYTICS` verb: get (or build) the CSR snapshot for the requested
/// labels, run one kernel over it on the morsel scheduler, and return a
/// summary plus snapshot provenance. Runs under an execution permit and
/// the request deadline like any query.
#[allow(clippy::too_many_arguments)]
fn do_analytics(
    shared: &Shared,
    db: &GraphDb,
    algo_name: &str,
    source: Option<u64>,
    iters: Option<u64>,
    damping: Option<f64>,
    node_label: Option<&str>,
    rel_label: Option<&str>,
    deadline_ms: Option<u64>,
) -> Result<String, ProtoError> {
    let start = Instant::now();
    let deadline = start
        + deadline_ms
            .map(|ms| Duration::from_millis(ms.min(3_600_000)))
            .unwrap_or(shared.config.default_deadline);
    if shared.stop.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorCode::ShuttingDown,
            "server is draining",
        ));
    }
    let spec = SnapshotSpec {
        node_label: label_code(db, "node", node_label)?,
        rel_label: label_code(db, "relationship", rel_label)?,
        node_props: Vec::new(),
    };

    let wait = shared
        .config
        .admission_wait
        .min(deadline.saturating_duration_since(Instant::now()));
    let Some(_permit) = shared.pool.try_acquire(wait) else {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        return Err(ProtoError::new(
            ErrorCode::ServerBusy,
            "worker pool saturated",
        ));
    };
    shared.stats.admitted.fetch_add(1, Ordering::Relaxed);

    // Reuse a current snapshot when one exists; a build racing a commit
    // can abort with a retryable conflict like any MVTO reader.
    let (snap, reused) = match shared.analytics.get_if_current(db, &spec) {
        Some(s) => (s, true),
        None => (
            shared.analytics.get_or_build(db, &spec).map_err(graph_err)?,
            false,
        ),
    };

    let workers = shared.config.exec_threads.max(1);
    let ctx = ExecCtx::new(&[]).with_deadline(deadline);
    let result = match algo_name {
        "bfs" => {
            let src = source.ok_or_else(|| ProtoError::bad_request("bfs needs \"source\""))?;
            let depth = algo::bfs(&snap, src, workers, &ctx).map_err(query_err)?;
            let reached = depth.iter().filter(|&&d| d != algo::UNREACHED).count();
            let max_depth = depth
                .iter()
                .filter(|&&d| d != algo::UNREACHED)
                .max()
                .copied()
                .unwrap_or(0);
            obj(vec![
                ("source", Json::Int(src as i64)),
                ("reached", Json::Int(reached as i64)),
                ("max_depth", Json::Int(max_depth as i64)),
            ])
        }
        "pagerank" => {
            let iters = iters.unwrap_or(10).clamp(1, 10_000) as usize;
            let d = damping.unwrap_or(0.85).clamp(0.0, 1.0);
            let rank = algo::pagerank(&snap, iters, d, workers, &ctx).map_err(query_err)?;
            // Top 10 by score (ties broken by dense index, ascending).
            let mut order: Vec<u32> = (0..rank.len() as u32).collect();
            order.sort_by(|&a, &b| {
                rank[b as usize]
                    .total_cmp(&rank[a as usize])
                    .then(a.cmp(&b))
            });
            let top: Vec<Json> = order
                .iter()
                .take(10)
                .map(|&i| {
                    obj(vec![
                        ("node", Json::Int(snap.node_id(i) as i64)),
                        ("rank", Json::Float(rank[i as usize])),
                    ])
                })
                .collect();
            obj(vec![
                ("iters", Json::Int(iters as i64)),
                ("damping", Json::Float(d)),
                ("sum", Json::Float(rank.iter().sum())),
                ("top", Json::Arr(top)),
            ])
        }
        "wcc" => {
            let labels = algo::wcc(&snap, workers, &ctx).map_err(query_err)?;
            let mut sizes: HashMap<u32, u64> = HashMap::new();
            for &l in &labels {
                *sizes.entry(l).or_default() += 1;
            }
            let largest = sizes.values().max().copied().unwrap_or(0);
            obj(vec![
                ("components", Json::Int(sizes.len() as i64)),
                ("largest", Json::Int(largest as i64)),
            ])
        }
        other => {
            return Err(ProtoError::bad_request(format!(
                "unknown algorithm {other:?} (bfs | pagerank | wcc)"
            )))
        }
    };

    let elapsed_us =
        gobs::saturating_elapsed(start).as_micros().min(u64::MAX as u128) as u64;
    shared.request_us.observe_us(elapsed_us);
    Ok(ok_response(vec![
        ("algo", Json::Str(algo_name.into())),
        ("result", result),
        ("snapshot", snapshot_json(&snap, reused)),
        ("elapsed_us", Json::Int(elapsed_us.min(i64::MAX as u64) as i64)),
    ]))
}

/// Snapshot provenance for analytics responses.
fn snapshot_json(snap: &CsrSnapshot, reused: bool) -> Json {
    let st = snap.stats();
    obj(vec![
        ("nodes", Json::Int(snap.node_count() as i64)),
        ("edges", Json::Int(snap.edge_count() as i64)),
        ("read_ts", Json::Int(snap.read_ts().min(i64::MAX as u64) as i64)),
        ("epoch", Json::Int(snap.epoch().min(i64::MAX as u64) as i64)),
        ("reused", Json::Bool(reused)),
        (
            "build_us",
            Json::Int(st.build_time.as_micros().min(i64::MAX as u128) as i64),
        ),
        ("fast_chunks", Json::Int(st.fast_chunks as i64)),
        ("slow_chunks", Json::Int(st.slow_chunks as i64)),
    ])
}

/// The `CHECKPOINT` verb: flush the deferred data tail, fence, truncate
/// the undo log. Reports the pmem work it took, so ingest drivers can see
/// the fence cost land here instead of on every commit.
fn do_checkpoint(_shared: &Shared, db: &GraphDb) -> Result<String, ProtoError> {
    let before = db.pool().stats().snapshot();
    db.checkpoint().map_err(graph_err)?;
    let delta = db.pool().stats().snapshot() - before;
    Ok(ok_response(vec![
        ("fences", Json::Int(delta.fences as i64)),
        ("lines_flushed", Json::Int(delta.lines_flushed as i64)),
        ("sync_mode", Json::Str(db.sync_mode().render())),
    ]))
}

/// The `CONFIG` verb: optionally retune the durability ladder, then dump
/// every registered `PMEMGRAPH_*` knob (from [`gconfig::effective`]) plus
/// the live engine state the knobs feed.
fn do_config(
    shared: &Shared,
    db: &GraphDb,
    set_sync_mode: Option<&str>,
) -> Result<String, ProtoError> {
    if let Some(s) = set_sync_mode {
        let mode = SyncMode::parse(s)
            .map_err(|e| ProtoError::bad_request(format!("bad sync_mode: {e}")))?;
        db.set_sync_mode(mode).map_err(graph_err)?;
    }
    let knobs: Vec<Json> = gconfig::effective()
        .into_iter()
        .map(|e| {
            obj(vec![
                ("name", Json::Str(e.name.into())),
                ("value", Json::Str(e.value)),
                ("default", Json::Bool(e.is_default)),
                ("help", Json::Str(e.help.into())),
            ])
        })
        .collect();
    let live = obj(vec![
        ("sync_mode", Json::Str(db.sync_mode().render())),
        ("group_commit", Json::Bool(db.group_commit())),
        ("read_accel", Json::Bool(db.read_accel())),
        (
            "mutation_epoch",
            Json::Int(db.mutation_epoch().min(i64::MAX as u64) as i64),
        ),
        (
            "cached_snapshots",
            Json::Int(shared.analytics.len() as i64),
        ),
        ("workers", Json::Int(shared.config.workers as i64)),
        ("exec_threads", Json::Int(shared.config.exec_threads as i64)),
    ]);
    Ok(ok_response(vec![
        ("knobs", Json::Arr(knobs)),
        ("live", live),
    ]))
}

/// The `JITCACHE` verb: inspect or manage the expression tier's code
/// caches. `status` reports the live cache sizes plus the hottest PGO
/// plan profiles; `warm` preloads every disk-cached expression into the
/// in-memory cache (the explicit form of what `attach_residual_expr`
/// does lazily per plan); `clear` drops both the in-memory expression
/// cache and the on-disk `.jitcache` file.
fn do_jitcache(shared: &Shared, action: &str) -> Result<String, ProtoError> {
    let warmed = match action {
        "status" => 0,
        "warm" => shared.engine.warm_exprs(),
        "clear" => {
            shared.engine.clear_expr_cache();
            shared
                .engine
                .clear_disk_cache()
                .map_err(|e| ProtoError::new(ErrorCode::Internal, e.to_string()))?;
            0
        }
        other => {
            return Err(ProtoError::bad_request(format!(
                "unknown jitcache action {other:?} (status | warm | clear)"
            )))
        }
    };
    let pgo: Vec<Json> = shared
        .engine
        .pgo()
        .snapshot()
        .into_iter()
        .take(8)
        .map(|(fp, rows, runs, rps)| {
            obj(vec![
                ("plan", Json::Str(format!("{fp:016x}"))),
                ("rows", Json::Int(rows.min(i64::MAX as u64) as i64)),
                ("runs", Json::Int(runs.min(i64::MAX as u64) as i64)),
                ("rows_per_sec", Json::Int(rps.min(i64::MAX as u64) as i64)),
            ])
        })
        .collect();
    Ok(ok_response(vec![
        ("action", Json::Str(action.into())),
        ("warmed", Json::Int(warmed as i64)),
        (
            "expr_cache_len",
            Json::Int(shared.engine.expr_cache_len() as i64),
        ),
        (
            "disk_cache_len",
            Json::Int(shared.engine.disk_cache_len() as i64),
        ),
        (
            "disk_cache_bytes",
            Json::Int(shared.engine.disk_cache_bytes().min(i64::MAX as u64) as i64),
        ),
        ("pgo", Json::Arr(pgo)),
    ]))
}

/// Assemble the `STATS` response: one JSON object per subsystem, all
/// counters monotonic except the gauges under `sessions`/`jit`.
///
/// A thin view over one registry [`Snapshot`] — the same source the
/// Prometheus exposition renders — so the two surfaces can never drift.
/// The JSON shape (sections and key names) predates the registry and is
/// kept stable for existing consumers.
fn stats_response(shared: &Shared) -> String {
    let snap = Snapshot::collect(&[&shared.registry]);
    let v = |name: &str| Json::Int(snap.value(name).unwrap_or(0));
    ok_response(vec![
        (
            "sessions",
            obj(vec![
                ("active", v("pmemgraph_server_sessions_active")),
                ("in_txn", v("pmemgraph_server_sessions_in_txn")),
                ("opened", v("pmemgraph_server_sessions_opened_total")),
                ("expired", v("pmemgraph_server_sessions_expired_total")),
                (
                    "disconnect_rollbacks",
                    v("pmemgraph_server_disconnect_rollbacks_total"),
                ),
            ]),
        ),
        (
            "admission",
            obj(vec![
                ("workers", v("pmemgraph_server_workers")),
                ("admitted", v("pmemgraph_server_admitted_total")),
                ("rejected", v("pmemgraph_server_rejected_total")),
            ]),
        ),
        (
            "requests",
            obj(vec![
                ("total", v("pmemgraph_server_requests_total")),
                ("errors", v("pmemgraph_server_errors_total")),
                (
                    "deadline_misses",
                    v("pmemgraph_server_deadline_misses_total"),
                ),
            ]),
        ),
        (
            "net",
            obj(vec![
                ("mode", Json::Str(shared.config.net_mode.as_str().into())),
                ("open_conns", v("pmemgraph_server_open_conns")),
                ("max_conns", Json::Int(shared.config.max_sessions as i64)),
                (
                    "pipeline_depth_cap",
                    Json::Int(shared.config.pipeline_depth as i64),
                ),
                (
                    "net_workers",
                    Json::Int(shared.config.net_workers_effective() as i64),
                ),
                ("inflight", v("pmemgraph_server_net_inflight")),
                ("accepts_failed", v("pmemgraph_server_accepts_failed_total")),
                (
                    "reactor_wakeups",
                    v("pmemgraph_server_reactor_wakeups_total"),
                ),
                ("epoll_waits", v("pmemgraph_server_epoll_waits_total")),
                ("read_pauses", v("pmemgraph_server_read_pauses_total")),
            ]),
        ),
        (
            "txn",
            obj(vec![
                ("begun", v("pmemgraph_txn_begun_total")),
                ("commits", v("pmemgraph_txn_commits_total")),
                ("aborts", v("pmemgraph_txn_aborts_total")),
                ("conflicts", v("pmemgraph_txn_conflicts_total")),
                ("gc_pruned", v("pmemgraph_txn_gc_pruned_total")),
            ]),
        ),
        (
            "jit",
            obj(vec![
                ("compiles", v("pmemgraph_jit_compiles_total")),
                ("cache_hits", v("pmemgraph_jit_cache_hits_total")),
                ("evictions", v("pmemgraph_jit_evictions_total")),
                ("cache_len", v("pmemgraph_jit_code_cache_entries")),
                ("cache_capacity", v("pmemgraph_jit_code_cache_capacity")),
                ("expr_cache_len", v("pmemgraph_jit_expr_cache_entries")),
                ("disk_cache_len", v("pmemgraph_jit_disk_cache_entries")),
                ("disk_cache_bytes", v("pmemgraph_jit_cache_bytes")),
            ]),
        ),
        (
            "exec",
            obj(vec![
                ("threads", v("pmemgraph_server_exec_threads")),
                (
                    "interpreted_morsels",
                    v("pmemgraph_exec_interpreted_morsels_total"),
                ),
                ("compiled_morsels", v("pmemgraph_exec_compiled_morsels_total")),
                ("chunks_pruned", v("pmemgraph_exec_chunks_pruned_total")),
                (
                    "fast_path_morsels",
                    v("pmemgraph_exec_fast_path_morsels_total"),
                ),
                ("residual_rows", v("pmemgraph_exec_residual_rows_total")),
                (
                    "residual_rows_interp",
                    v("pmemgraph_exec_residual_rows_interp_total"),
                ),
                (
                    "residual_rows_compiled",
                    v("pmemgraph_exec_residual_rows_compiled_total"),
                ),
                ("fallback_total", v("pmemgraph_exec_fallback_total")),
            ]),
        ),
        (
            "maintenance",
            obj(vec![
                ("runs", v("pmemgraph_server_maintenance_runs_total")),
                ("reclaimed_slots", v("pmemgraph_server_reclaimed_slots_total")),
                ("vacuumed_props", v("pmemgraph_server_vacuumed_props_total")),
            ]),
        ),
        (
            "pmem",
            obj(vec![
                ("lines_flushed", v("pmemgraph_pmem_lines_flushed_total")),
                ("fences", v("pmemgraph_pmem_fences_total")),
                ("blocks_flushed", v("pmemgraph_pmem_blocks_flushed_total")),
                ("write_bytes", v("pmemgraph_pmem_write_bytes_total")),
                ("read_bytes", v("pmemgraph_pmem_read_bytes_total")),
                ("allocs", v("pmemgraph_pmem_allocs_total")),
                ("arena_refills", v("pmemgraph_pmem_arena_refills_total")),
                ("commit_groups", v("pmemgraph_pmem_commit_groups_total")),
                ("grouped_txns", v("pmemgraph_pmem_grouped_txns_total")),
            ]),
        ),
        (
            "graph",
            obj(vec![
                ("nodes", v("pmemgraph_graph_nodes")),
                ("rels", v("pmemgraph_graph_rels")),
            ]),
        ),
        ("shards", shards_section(&snap)),
    ])
}

/// The `STATS` shards section: per-shard series (commits, fences, nodes —
/// the labeled families registered by `metrics::register_shard_series`)
/// plus family aggregates. The single-pool server reports one shard.
fn shards_section(snap: &Snapshot) -> Json {
    let count = snap
        .entries
        .iter()
        .filter(|e| e.name == "pmemgraph_shard_txn_commits_total")
        .count();
    let mut per_shard = Vec::with_capacity(count);
    for i in 0..count {
        let labels = format!("shard=\"{i}\"");
        let lv = |name: &str| Json::Int(snap.value_labeled(name, &labels).unwrap_or(0));
        per_shard.push(obj(vec![
            ("shard", Json::Int(i as i64)),
            ("commits", lv("pmemgraph_shard_txn_commits_total")),
            ("aborts", lv("pmemgraph_shard_txn_aborts_total")),
            ("conflicts", lv("pmemgraph_shard_txn_conflicts_total")),
            ("fences", lv("pmemgraph_shard_pmem_fences_total")),
            ("lines_flushed", lv("pmemgraph_shard_pmem_lines_flushed_total")),
            ("write_bytes", lv("pmemgraph_shard_pmem_write_bytes_total")),
            ("nodes", lv("pmemgraph_shard_nodes")),
            ("rels", lv("pmemgraph_shard_rels")),
        ]));
    }
    let sum = |name: &str| Json::Int(snap.sum(name).unwrap_or(0));
    obj(vec![
        ("count", Json::Int(count as i64)),
        ("commits", sum("pmemgraph_shard_txn_commits_total")),
        ("fences", sum("pmemgraph_shard_pmem_fences_total")),
        ("nodes", sum("pmemgraph_shard_nodes")),
        ("rels", sum("pmemgraph_shard_rels")),
        (
            "cross_shard_commits",
            Json::Int(snap.value("pmemgraph_cross_shard_commits_total").unwrap_or(0)),
        ),
        ("per_shard", Json::Arr(per_shard)),
    ])
}

/// Assemble the `SLOWLOG` response: the captured ring (oldest first),
/// optionally draining it after the read.
fn slowlog_response(shared: &Shared, clear: bool) -> String {
    let entries = shared.slowlog.entries();
    let jentries: Vec<Json> = entries.iter().map(slow_entry_json).collect();
    if clear {
        shared.slowlog.clear();
    }
    ok_response(vec![
        ("entries", Json::Arr(jentries)),
        (
            "dropped",
            Json::Int(shared.slowlog.dropped().min(i64::MAX as u64) as i64),
        ),
        (
            "threshold_us",
            Json::Int(shared.slowlog.threshold_us().min(i64::MAX as u64) as i64),
        ),
    ])
}

fn slow_entry_json(e: &SlowEntry) -> Json {
    obj(vec![
        ("at_unix_ms", Json::Int(e.at_unix_ms.min(i64::MAX as u64) as i64)),
        ("query", Json::Str(e.query.clone())),
        ("plan", Json::Str(e.plan.clone())),
        (
            "mode",
            e.mode.as_ref().map_or(Json::Null, |m| Json::Str(m.clone())),
        ),
        ("elapsed_us", Json::Int(e.elapsed_us.min(i64::MAX as u64) as i64)),
        ("rows", Json::Int(e.rows as i64)),
        ("morsels", Json::Int(e.morsels as i64)),
        ("interpreted_morsels", Json::Int(e.interpreted_morsels as i64)),
        ("compiled_morsels", Json::Int(e.compiled_morsels as i64)),
        ("chunks_pruned", Json::Int(e.chunks_pruned as i64)),
        ("fast_path_morsels", Json::Int(e.fast_path_morsels as i64)),
        (
            "residual_rows",
            Json::Int((e.residual_rows_interp + e.residual_rows_compiled) as i64),
        ),
        (
            "residual_rows_interp",
            Json::Int(e.residual_rows_interp as i64),
        ),
        (
            "residual_rows_compiled",
            Json::Int(e.residual_rows_compiled as i64),
        ),
        (
            "fallback",
            e.fallback
                .as_ref()
                .map_or(Json::Null, |f| Json::Str(f.clone())),
        ),
        (
            "segments",
            Json::Arr(
                e.segments
                    .iter()
                    .map(|(name, us)| {
                        obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("us", Json::Int((*us).min(i64::MAX as u64) as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
