//! The session table: one entry per live connection.
//!
//! Each entry holds a clone of the connection's `TcpStream` so that the
//! maintenance sweep and shutdown can *force* a blocked connection thread
//! out of its read by closing the socket under it (`shutdown(Both)`); the
//! thread then unwinds through its normal cleanup path, which rolls back
//! any open transaction — idle-timeout kill and client crash are the same
//! code path.

use std::collections::HashMap;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

struct SessionEntry {
    stream: TcpStream,
    last_activity: Instant,
    in_txn: bool,
}

/// Registry of live sessions, keyed by server-assigned session id.
pub struct SessionTable {
    inner: Mutex<HashMap<u64, SessionEntry>>,
    next_id: AtomicU64,
}

impl SessionTable {
    pub fn new() -> SessionTable {
        SessionTable {
            inner: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Register a connection if the table is below `max`; returns the new
    /// session id, or `None` when the server is at capacity.
    pub fn try_register(&self, stream: TcpStream, max: usize) -> Option<u64> {
        let mut inner = self.inner.lock();
        if inner.len() >= max {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        inner.insert(
            id,
            SessionEntry {
                stream,
                last_activity: Instant::now(),
                in_txn: false,
            },
        );
        Some(id)
    }

    /// Record activity (called once per request).
    pub fn touch(&self, id: u64) {
        if let Some(e) = self.inner.lock().get_mut(&id) {
            e.last_activity = Instant::now();
        }
    }

    /// Track whether the session has an open transaction (STATS reporting).
    pub fn set_in_txn(&self, id: u64, in_txn: bool) {
        if let Some(e) = self.inner.lock().get_mut(&id) {
            e.in_txn = in_txn;
        }
    }

    /// Remove a session (connection thread cleanup).
    pub fn deregister(&self, id: u64) {
        self.inner.lock().remove(&id);
    }

    pub fn active_count(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn in_txn_count(&self) -> usize {
        self.inner.lock().values().filter(|e| e.in_txn).count()
    }

    /// Force-close every session idle longer than `timeout`; returns how
    /// many sockets were shut down. The entries stay in the table until
    /// their connection threads notice the dead socket and deregister —
    /// that path is also what rolls back any open transaction.
    pub fn sweep_idle(&self, timeout: Duration) -> usize {
        let now = Instant::now();
        let inner = self.inner.lock();
        let mut killed = 0;
        for e in inner.values() {
            if now.duration_since(e.last_activity) >= timeout {
                let _ = e.stream.shutdown(Shutdown::Both);
                killed += 1;
            }
        }
        killed
    }

    /// Force-close every session (final phase of server shutdown).
    pub fn shutdown_all(&self) -> usize {
        let inner = self.inner.lock();
        for e in inner.values() {
            let _ = e.stream.shutdown(Shutdown::Both);
        }
        inner.len()
    }
}

impl Default for SessionTable {
    fn default() -> Self {
        SessionTable::new()
    }
}
