//! gserver — the concurrent network query-serving subsystem.
//!
//! Turns the embedded engine (PMem pool → MVTO transactions → graph store
//! → adaptive JIT execution) into a multi-client server, the deployment
//! shape the paper's evaluation implies (many LDBC interactive clients
//! against one persistent graph):
//!
//! * **Wire protocol** ([`proto`]) — newline-delimited JSON frames;
//!   clients may pipeline (N requests in flight per connection) and
//!   responses come back in request order.
//! * **Sessions** ([`session`]) — one per connection, with idle-timeout
//!   kill; an open MVTO transaction belongs to its session and *provably
//!   rolls back on disconnect* (the transaction handle lives on the
//!   connection thread's stack).
//! * **Query catalog** ([`catalog`]) — clients name server-side LDBC
//!   plans (`"is1"`, `"iu8"`, `:scan` variants) or use a small ad-hoc
//!   grammar; plans never travel over the wire, so every client shares
//!   the same plan fingerprints and the same JIT code cache.
//! * **Front ends** ([`server`], [`reactor`], `evented`) — the default
//!   evented front end is an epoll reactor owning every socket plus a
//!   fixed net-worker pool (`PMEMGRAPH_NET_MODE=evented`); the classic
//!   thread-per-connection loop remains as `threaded`. Backpressure
//!   pauses read interest (TCP pushback) instead of erroring; the
//!   bounded admission semaphore still yields a fast, retryable
//!   `SERVER_BUSY` as the last resort when the *engine* saturates;
//!   per-request deadlines are enforced at pipeline-step granularity.
//! * **Maintenance** — a background tick sweeps idle sessions and drives
//!   storage reclamation (`reclaim_deleted` + `vacuum_props`).
//! * **Observability** ([`metrics`]) — every subsystem counter joins a
//!   per-server [`gobs::Registry`] as a fn-metric; `STATS` is a JSON view
//!   over a registry snapshot, `METRICS` renders the same snapshot as
//!   Prometheus text, `SLOWLOG` drains the bounded slow-query ring, and
//!   `PMEMGRAPH_METRICS_ADDR` starts a standalone scrape endpoint.
//! * **Client** ([`client`]) — a small blocking [`Client`] used by the
//!   CLI binary, the integration tests and the bench load driver.
//!
//! See DESIGN.md §7 for the protocol reference and README.md for a
//! quickstart.

pub mod catalog;
pub mod client;
mod evented;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod reactor;
pub mod server;
pub mod session;

pub use catalog::{Catalog, NamedQuery};
pub use client::{BatchItem, Client, ClientError, Param, QueryResult};
pub use json::Json;
pub use proto::{ErrorCode, ProtoError, Request};
pub use server::{serve, NetMode, ServerConfig, ServerHandle, ServerStats};
pub use session::SessionTable;
