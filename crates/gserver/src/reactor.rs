//! A minimal epoll reactor core: the non-blocking I/O substrate of the
//! evented network front end (DESIGN.md §15).
//!
//! The container's dependency set has no `mio`/`tokio`, so this is a thin
//! safe wrapper over raw `epoll(7)` + `eventfd(2)` with our own
//! `extern "C"` declarations (the same discipline `gjit` uses for its
//! mmap bindings). Only what the server needs is wrapped:
//!
//! * [`Poller`] — one epoll instance; register/rearm/deregister fds under
//!   u64 tokens, and a `wait` that translates `epoll_event`s into
//!   [`Event`]s. Level-triggered throughout: readers drain until
//!   `WouldBlock`, writers arm `EPOLLOUT` only while a write buffer is
//!   non-empty, so the classic LT pitfalls (busy-wake on an always-ready
//!   socket) don't apply.
//! * [`Waker`] — an `eventfd` registered under [`TOKEN_WAKER`], letting
//!   net workers nudge a reactor parked in `epoll_wait` (response frames
//!   ready to flush, shutdown requested).
//!
//! On non-Linux targets [`Poller::new`] returns `Unsupported` and the
//! server falls back to the threaded front end; nothing else in gserver
//! needs platform gates.

/// Token the accept listener is registered under.
pub const TOKEN_LISTENER: u64 = 0;
/// Token the reactor's own [`Waker`] eventfd is registered under.
pub const TOKEN_WAKER: u64 = 1;
/// First token handed to accepted connections.
pub const TOKEN_FIRST_CONN: u64 = 2;

/// Which readiness a registration asks for. Hangup/error are always
/// reported (epoll semantics) and surface as `readable`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub read: bool,
    pub write: bool,
}

impl Interest {
    pub const READ: Interest = Interest { read: true, write: false };
    pub const WRITE: Interest = Interest { read: false, write: true };
    pub const BOTH: Interest = Interest { read: true, write: true };
    pub const NONE: Interest = Interest { read: false, write: false };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

/// Whether the evented front end can run on this target.
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;
    pub const RLIMIT_NOFILE: c_int = 7;

    // The kernel ABI packs epoll_event on x86-64 only.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }
}

/// Raise `RLIMIT_NOFILE` to its hard limit (best effort). Load drivers
/// opening thousands of sockets call this; a server that cannot raise it
/// still degrades gracefully through the EMFILE accept backoff.
pub fn raise_nofile_limit() -> Option<u64> {
    #[cfg(target_os = "linux")]
    unsafe {
        let mut lim = sys::Rlimit { cur: 0, max: 0 };
        if sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) != 0 {
            return None;
        }
        if lim.cur < lim.max {
            let want = sys::Rlimit { cur: lim.max, max: lim.max };
            if sys::setrlimit(sys::RLIMIT_NOFILE, &want) != 0 {
                return Some(lim.cur);
            }
            return Some(lim.max);
        }
        Some(lim.cur)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{sys, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_void;
    use std::time::Duration;

    fn events_bits(interest: Interest) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if interest.read {
            bits |= sys::EPOLLIN;
        }
        if interest.write {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    /// One epoll instance. `wait` is called by the reactor thread only;
    /// registration is also reactor-owned, so no interior locking.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events: events_bits(interest),
                data: token,
            };
            let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        /// Wait for readiness, at most `timeout`. Fills `out` (cleared
        /// first) and returns the number of events. EINTR reports as zero
        /// events rather than an error.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<usize> {
            out.clear();
            const CAP: usize = 256;
            let mut raw = [sys::EpollEvent { events: 0, data: 0 }; CAP];
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = unsafe { sys::epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as i32, ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for ev in raw.iter().take(n as usize) {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    // Hangup/error surface as readable so the owner runs
                    // its read path and observes EOF/ECONNRESET there.
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR)
                        != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                });
            }
            Ok(n as usize)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                sys::close(self.epfd);
            }
        }
    }

    /// Cross-thread nudge for a reactor parked in `epoll_wait`.
    #[derive(Debug)]
    pub struct Waker {
        fd: RawFd,
    }

    impl Waker {
        /// Create an eventfd and register it with `poller` under `token`.
        pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
            let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let w = Waker { fd };
            poller.register(fd, token, Interest::READ)?;
            Ok(w)
        }

        /// Wake the reactor (idempotent until drained; errors ignored —
        /// a full eventfd counter already means a pending wake).
        pub fn wake(&self) {
            let one: u64 = 1;
            unsafe {
                sys::write(self.fd, &one as *const u64 as *const c_void, 8);
            }
        }

        /// Consume pending wakes so level-triggered polling quiesces.
        pub fn drain(&self) {
            let mut buf: u64 = 0;
            unsafe {
                sys::read(self.fd, &mut buf as *mut u64 as *mut c_void, 8);
            }
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe {
                sys::close(self.fd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    type RawFd = i32;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "evented net mode needs epoll (Linux); falling back to threaded",
        )
    }

    /// Stub poller so gserver compiles unchanged off-Linux; `serve`
    /// resolves the net mode to threaded before ever constructing one.
    #[derive(Debug)]
    pub struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }
        pub fn register(&self, _fd: RawFd, _token: u64, _i: Interest) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn reregister(&self, _fd: RawFd, _token: u64, _i: Interest) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn wait(&self, _out: &mut Vec<Event>, _timeout: Duration) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    #[derive(Debug)]
    pub struct Waker;

    impl Waker {
        pub fn new(_poller: &Poller, _token: u64) -> io::Result<Waker> {
            Err(unsupported())
        }
        pub fn wake(&self) {}
        pub fn drain(&self) {}
    }
}

pub use imp::{Poller, Waker};

// Safety: the epoll fd and eventfd are plain kernel handles; every syscall
// made through them is thread-safe. The server's discipline is stronger
// still — only the reactor thread calls `wait`/`register`, workers only
// call `Waker::wake`.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn waker_roundtrip() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, TOKEN_WAKER).unwrap();
        let mut events = Vec::new();
        // Nothing ready: a short wait times out empty.
        let n = poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert_eq!(n, 0);
        waker.wake();
        let n = poller.wait(&mut events, Duration::from_millis(1000)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, TOKEN_WAKER);
        assert!(events[0].readable);
        waker.drain();
        // Drained: quiesces again.
        let n = poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .unwrap();

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Duration::from_millis(1000)).unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == TOKEN_LISTENER && e.readable));

        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let token = TOKEN_FIRST_CONN;
        poller
            .register(server_side.as_raw_fd(), token, Interest::READ)
            .unwrap();
        client.write_all(b"hello\n").unwrap();
        let n = poller.wait(&mut events, Duration::from_millis(1000)).unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == token && e.readable));

        // An empty write buffer + write interest reports writable at once.
        poller
            .reregister(server_side.as_raw_fd(), token, Interest::BOTH)
            .unwrap();
        let n = poller.wait(&mut events, Duration::from_millis(1000)).unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == token && e.writable));

        poller.deregister(server_side.as_raw_fd()).unwrap();
        drop(client);
        let n = poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert_eq!(n, 0, "deregistered fd reports nothing");
    }
}
