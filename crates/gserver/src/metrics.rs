//! gserver ⇄ gobs bridge: one [`Registry`] per server instance, holding
//! every counter the engine already maintains as *fn-metrics* (closures
//! that read the authoritative atomic at snapshot time — no counter is
//! double-maintained) plus the server-owned request-latency histogram.
//!
//! The `STATS` verb, the `METRICS` verb and the standalone exporter all
//! read from snapshots of this registry (merged with [`gobs::global`],
//! which carries the span histograms recorded inside `gtxn`/`gjit`/
//! `gquery`), so every surface reports the same numbers.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use gjit::JitEngine;
use gobs::{Histogram, Registry, SlowLog};
use graphcore::shard::ShardedDb;
use graphcore::GraphDb;
use ldbc::SnbDb;

use crate::server::{ServerConfig, ServerStats};
use crate::session::SessionTable;

/// Register the per-shard metric families: one labeled series
/// (`shard="i"`) per shard for the commit/abort/conflict counters, the
/// pool's flush/fence tallies and the live node/relationship gauges. The
/// default single-pool server registers its one database as shard `0`, so
/// dashboards see the same families at every `PMEMGRAPH_SHARDS` setting;
/// a sharded deployment calls [`register_sharded_db`] instead.
pub fn register_shard_series(reg: &Registry, shards: &[Arc<GraphDb>]) {
    for (i, db) in shards.iter().enumerate() {
        let labels = format!("shard=\"{i}\"");
        macro_rules! stxn {
            ($name:expr, $help:expr, $field:ident) => {{
                let d = db.clone();
                reg.fn_counter_labeled($name, &labels, $help, move || {
                    d.mgr().stats().$field.load(Ordering::Relaxed)
                });
            }};
        }
        stxn!("pmemgraph_shard_txn_commits_total", "transactions committed, per shard", commits);
        stxn!("pmemgraph_shard_txn_aborts_total", "transactions aborted, per shard", aborts);
        stxn!("pmemgraph_shard_txn_conflicts_total", "write-write conflicts, per shard", conflicts);
        macro_rules! spm {
            ($name:expr, $help:expr, $field:ident) => {{
                let d = db.clone();
                reg.fn_counter_labeled($name, &labels, $help, move || {
                    d.pool().stats().$field.load(Ordering::Relaxed)
                });
            }};
        }
        spm!("pmemgraph_shard_pmem_fences_total", "persist fences, per shard pool", fences);
        spm!(
            "pmemgraph_shard_pmem_lines_flushed_total",
            "cache lines flushed, per shard pool",
            lines_flushed
        );
        spm!(
            "pmemgraph_shard_pmem_write_bytes_total",
            "bytes written, per shard pool",
            write_bytes
        );
        {
            let d = db.clone();
            reg.fn_gauge_labeled("pmemgraph_shard_nodes", &labels, "live nodes, per shard", move || {
                d.node_count() as i64
            });
        }
        {
            let d = db.clone();
            reg.fn_gauge_labeled("pmemgraph_shard_rels", &labels, "live relationship records, per shard", move || {
                d.rel_count() as i64
            });
        }
    }
}

/// Register every shard of a [`ShardedDb`] plus the router's cross-shard
/// epoch-commit counter.
pub fn register_sharded_db(reg: &Registry, db: &Arc<ShardedDb>) {
    register_shard_series(reg, db.shards());
    let d = db.clone();
    reg.fn_counter(
        "pmemgraph_cross_shard_commits_total",
        "transactions committed through the two-phase epoch protocol",
        move || d.cross_commits(),
    );
}

/// Build the per-server registry. Closures capture `Arc` clones of the
/// stat-owning structures (never the server's `Shared`, which owns the
/// registry — that would leak a reference cycle). Returns the registry,
/// the request-latency histogram the dispatch loop records into, and the
/// pipeline-depth histogram the framing layer records into.
pub fn build_registry(
    stats: &Arc<ServerStats>,
    sessions: &Arc<SessionTable>,
    snb: &Arc<SnbDb>,
    engine: &Arc<JitEngine>,
    config: &ServerConfig,
    slowlog: &Arc<SlowLog>,
) -> (Registry, Histogram, Histogram) {
    let reg = Registry::new();

    // Server / exec counters: authoritative cells in `ServerStats`.
    macro_rules! srv {
        ($name:expr, $help:expr, $field:ident) => {{
            let s = stats.clone();
            reg.fn_counter($name, $help, move || s.$field.load(Ordering::Relaxed));
        }};
    }
    srv!("pmemgraph_server_requests_total", "request frames received", requests);
    srv!("pmemgraph_server_admitted_total", "executions admitted by the worker pool", admitted);
    srv!("pmemgraph_server_rejected_total", "executions rejected with SERVER_BUSY", rejected);
    srv!("pmemgraph_server_errors_total", "requests answered with an error", errors);
    srv!("pmemgraph_server_deadline_misses_total", "requests past their deadline", deadline_misses);
    srv!("pmemgraph_server_sessions_opened_total", "sessions accepted", sessions_opened);
    srv!("pmemgraph_server_sessions_expired_total", "sessions killed by idle timeout", sessions_expired);
    srv!(
        "pmemgraph_server_disconnect_rollbacks_total",
        "open transactions rolled back on disconnect",
        disconnect_rollbacks
    );
    srv!("pmemgraph_server_maintenance_runs_total", "maintenance ticks", maintenance_runs);
    srv!("pmemgraph_server_reclaimed_slots_total", "deleted slots reclaimed past the MVTO horizon", reclaimed_slots);
    srv!("pmemgraph_server_vacuumed_props_total", "superseded property versions vacuumed", vacuumed_props);
    srv!("pmemgraph_exec_interpreted_morsels_total", "morsels run by the AOT interpreter", interpreted_morsels);
    srv!("pmemgraph_exec_compiled_morsels_total", "morsels run as JIT-compiled code", compiled_morsels);
    srv!("pmemgraph_exec_chunks_pruned_total", "chunks skipped by zone-map pushdown", chunks_pruned);
    srv!(
        "pmemgraph_exec_fast_path_morsels_total",
        "morsels scanned via the MVTO single-version fast path",
        fast_path_morsels
    );
    srv!(
        "pmemgraph_exec_residual_rows_interp_total",
        "residual-filter rows evaluated by the AST interpreter",
        residual_rows_interp
    );
    srv!(
        "pmemgraph_exec_residual_rows_compiled_total",
        "residual-filter rows evaluated by compiled expressions",
        residual_rows_compiled
    );
    {
        // Combined family kept for existing dashboards; the split series
        // above are the authoritative cells.
        let s = stats.clone();
        reg.fn_counter(
            "pmemgraph_exec_residual_rows_total",
            "rows evaluated by residual filters after pruning",
            move || {
                s.residual_rows_interp.load(Ordering::Relaxed)
                    + s.residual_rows_compiled.load(Ordering::Relaxed)
            },
        );
    }
    srv!("pmemgraph_exec_fallback_total", "requests whose profile recorded a fallback", fallback_total);

    // Network front-end series (both modes maintain open_conns and
    // accepts_failed; the reactor/backpressure counters move only under
    // PMEMGRAPH_NET_MODE=evented).
    srv!(
        "pmemgraph_server_accepts_failed_total",
        "accept() failures retried with bounded backoff (EMFILE/ECONNABORTED etc.)",
        accepts_failed
    );
    srv!(
        "pmemgraph_server_reactor_wakeups_total",
        "eventfd nudges delivered to the parked reactor",
        reactor_wakeups
    );
    srv!(
        "pmemgraph_server_epoll_waits_total",
        "epoll_wait calls made by the reactor",
        epoll_waits
    );
    srv!(
        "pmemgraph_server_read_pauses_total",
        "connections paused for backpressure (pipeline cap or global inflight watermark)",
        read_pauses
    );
    {
        let s = stats.clone();
        reg.fn_gauge("pmemgraph_server_open_conns", "connections currently open", move || {
            s.open_conns.load(Ordering::Relaxed) as i64
        });
    }
    {
        let s = stats.clone();
        reg.fn_gauge(
            "pmemgraph_server_net_inflight",
            "decoded requests not yet answered (evented mode)",
            move || s.net_inflight.load(Ordering::Relaxed) as i64,
        );
    }
    {
        let evented = (config.net_mode == crate::server::NetMode::Evented) as i64;
        reg.fn_gauge(
            "pmemgraph_server_net_evented",
            "1 when the epoll front end is serving, 0 under thread-per-connection",
            move || evented,
        );
    }

    // MVTO transaction counters: authoritative cells in the txn manager.
    macro_rules! txn {
        ($name:expr, $help:expr, $field:ident) => {{
            let db = snb.clone();
            reg.fn_counter($name, $help, move || {
                db.db.mgr().stats().$field.load(Ordering::Relaxed)
            });
        }};
    }
    txn!("pmemgraph_txn_begun_total", "transactions begun", begun);
    txn!("pmemgraph_txn_commits_total", "transactions committed", commits);
    txn!("pmemgraph_txn_aborts_total", "transactions aborted", aborts);
    txn!("pmemgraph_txn_conflicts_total", "write-write conflicts detected", conflicts);
    txn!("pmemgraph_txn_gc_pruned_total", "versions pruned by MVTO GC", gc_pruned);

    // JIT engine counters and code-cache gauges.
    macro_rules! jit {
        ($name:expr, $help:expr, $field:ident) => {{
            let e = engine.clone();
            reg.fn_counter($name, $help, move || e.stats().$field.load(Ordering::Relaxed));
        }};
    }
    jit!("pmemgraph_jit_compiles_total", "plans compiled by Cranelift", compiles);
    jit!("pmemgraph_jit_cache_hits_total", "code-cache hits", cache_hits);
    jit!("pmemgraph_jit_evictions_total", "code-cache LRU evictions", evictions);
    {
        let e = engine.clone();
        reg.fn_gauge("pmemgraph_jit_code_cache_entries", "compiled plans resident in the code cache", move || {
            e.code_cache_len() as i64
        });
    }
    {
        let e = engine.clone();
        reg.fn_gauge("pmemgraph_jit_code_cache_capacity", "code-cache capacity", move || {
            e.code_cache_capacity() as i64
        });
    }
    {
        let e = engine.clone();
        reg.fn_gauge(
            "pmemgraph_jit_expr_cache_entries",
            "compiled residual expressions resident in memory",
            move || e.expr_cache_len() as i64,
        );
    }
    {
        let e = engine.clone();
        reg.fn_gauge(
            "pmemgraph_jit_disk_cache_entries",
            "compiled expressions held in the on-disk code cache",
            move || e.disk_cache_len() as i64,
        );
    }
    {
        let e = engine.clone();
        reg.fn_gauge(
            "pmemgraph_jit_cache_bytes",
            "bytes of compiled code in the on-disk cache (bounded by PMEMGRAPH_CODE_CACHE_BYTES)",
            move || e.disk_cache_bytes().min(i64::MAX as u64) as i64,
        );
    }

    // PMem pool counters (flush/fence/allocator/group-commit).
    macro_rules! pm {
        ($name:expr, $help:expr, $field:ident) => {{
            let db = snb.clone();
            reg.fn_counter($name, $help, move || {
                db.db.pool().stats().$field.load(Ordering::Relaxed)
            });
        }};
    }
    pm!("pmemgraph_pmem_lines_flushed_total", "cache lines flushed (CLWB-equivalent)", lines_flushed);
    pm!("pmemgraph_pmem_fences_total", "persist fences (SFENCE-equivalent)", fences);
    pm!("pmemgraph_pmem_blocks_flushed_total", "coalesced block flushes", blocks_flushed);
    pm!("pmemgraph_pmem_write_bytes_total", "bytes written to the pool", write_bytes);
    pm!("pmemgraph_pmem_read_bytes_total", "bytes read from the pool", read_bytes);
    pm!("pmemgraph_pmem_allocs_total", "pool allocations", allocs);
    pm!("pmemgraph_pmem_arena_refills_total", "sharded-arena refills from the global pool", arena_refills);
    pm!("pmemgraph_pmem_commit_groups_total", "group-commit batches applied", commit_groups);
    pm!("pmemgraph_pmem_grouped_txns_total", "transactions riding group-commit batches", grouped_txns);

    // Level gauges.
    {
        let s = sessions.clone();
        reg.fn_gauge("pmemgraph_server_sessions_active", "live sessions", move || {
            s.active_count() as i64
        });
    }
    {
        let s = sessions.clone();
        reg.fn_gauge("pmemgraph_server_sessions_in_txn", "sessions holding an open transaction", move || {
            s.in_txn_count() as i64
        });
    }
    {
        let workers = config.workers as i64;
        reg.fn_gauge("pmemgraph_server_workers", "execution slots (admission semaphore size)", move || workers);
    }
    {
        let threads = config.exec_threads as i64;
        reg.fn_gauge("pmemgraph_server_exec_threads", "morsel threads per adaptive execution", move || threads);
    }
    {
        let db = snb.clone();
        reg.fn_gauge("pmemgraph_graph_nodes", "live nodes", move || db.db.node_count() as i64);
    }
    {
        let db = snb.clone();
        reg.fn_gauge("pmemgraph_graph_rels", "live relationships", move || db.db.rel_count() as i64);
    }

    // Slow-query log health.
    {
        let l = slowlog.clone();
        reg.fn_gauge("pmemgraph_slowlog_entries", "slow-query entries currently held", move || {
            l.len() as i64
        });
    }
    {
        let l = slowlog.clone();
        reg.fn_counter("pmemgraph_slowlog_dropped_total", "slow-query entries evicted by the ring bound", move || {
            l.dropped()
        });
    }
    {
        let l = slowlog.clone();
        reg.fn_gauge("pmemgraph_slowlog_threshold_us", "active slow-query threshold (µs; i64::MAX = disabled)", move || {
            l.threshold_us().min(i64::MAX as u64) as i64
        });
    }

    // Per-shard families: the single-pool server is shard 0, so the
    // labeled series exist at every PMEMGRAPH_SHARDS setting.
    register_shard_series(&reg, std::slice::from_ref(&snb.db));

    let request_us = reg.histogram(
        "pmemgraph_server_request_us",
        "end-to-end execute-request latency (resolve, admission, execution, serialization)",
    );
    // Unit-less log₂ histogram: each observation is the number of requests
    // in flight on a connection when one more is decoded.
    let pipeline_depth = reg.histogram(
        "pmemgraph_server_pipeline_depth",
        "per-connection in-flight requests observed at decode time (count, not µs)",
    );
    (reg, request_us, pipeline_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gobs::Snapshot;
    use graphcore::shard::ShardOptions;

    #[test]
    fn sharded_registration_exposes_labeled_series() {
        let db = Arc::new(ShardedDb::create(ShardOptions::dram(48 << 20).shards(4)).unwrap());
        let mut tx = db.begin();
        let ids: Vec<_> = (0..4).map(|_| tx.create_node("N", &[]).unwrap()).collect();
        tx.create_rel(ids[0], "E", ids[1], &[]).unwrap();
        tx.commit().unwrap();

        let reg = Registry::new();
        register_sharded_db(&reg, &db);
        let snap = Snapshot::collect(&[&reg]);
        for i in 0..4 {
            let labels = format!("shard=\"{i}\"");
            assert_eq!(
                snap.value_labeled("pmemgraph_shard_nodes", &labels),
                Some(1),
                "round-robin put one node on shard {i}"
            );
            assert!(snap.value_labeled("pmemgraph_shard_txn_commits_total", &labels).is_some());
        }
        assert_eq!(snap.sum("pmemgraph_shard_nodes"), Some(4));
        assert_eq!(
            snap.value("pmemgraph_cross_shard_commits_total"),
            Some(1),
            "the multi-shard txn committed via the epoch protocol"
        );
        // The labeled families render as grammatically valid exposition.
        let text = gobs::render(&snap);
        gobs::validate_exposition(&text).expect("valid exposition");
        assert!(text.contains("pmemgraph_shard_nodes{shard=\"3\"} 1"));
    }

    #[test]
    fn single_db_registers_as_shard_zero() {
        let db = Arc::new(
            graphcore::GraphDb::create(graphcore::DbOptions::dram(48 << 20)).unwrap(),
        );
        let mut tx = db.begin();
        tx.create_node("N", &[]).unwrap();
        tx.commit().unwrap();
        let reg = Registry::new();
        register_shard_series(&reg, std::slice::from_ref(&db));
        let snap = Snapshot::collect(&[&reg]);
        assert_eq!(snap.value_labeled("pmemgraph_shard_nodes", "shard=\"0\""), Some(1));
        assert_eq!(snap.value_labeled("pmemgraph_shard_rels", "shard=\"0\""), Some(0));
    }
}
