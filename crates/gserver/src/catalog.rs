//! The server-side query catalog: named LDBC interactive queries plus a
//! small ad-hoc plan grammar for exploratory reads.
//!
//! Clients never ship plans over the wire — they name a catalog entry
//! (`"is1"`, `"iu8"`, `"is2-post:scan"`) or an ad-hoc expression
//! (`"scan Person where age >= ?0 project firstName limit 10"`). Plans are
//! therefore constructed server-side, which keeps the JIT code cache
//! effective: every client invoking the same template hits the same plan
//! fingerprint.

use std::collections::HashMap;
use std::sync::Arc;

use gquery::{CmpOp, Op, PPar, Plan, Pred, Proj};
use graphcore::GraphDb;
use gstore::PVal;
use ldbc::{IuQuery, QuerySpec, SnbCodes, SrQuery};

use crate::proto::{ErrorCode, ProtoError};

/// Immutable, shared query catalog built once at server start.
pub struct Catalog {
    by_name: HashMap<String, Arc<NamedQuery>>,
}

/// A resolved catalog entry: the spec plus the number of client-supplied
/// parameters it needs (feed-chained parameters excluded).
///
/// A `match` query carries its resolved [`gmatch::PatternGraph`] instead
/// of a fixed plan: physical planning is deferred to execution time,
/// where the cost model sees the actual parameter values and the PGO
/// table's observed per-segment selectivities (`spec` stays empty).
pub struct NamedQuery {
    pub spec: QuerySpec,
    pub n_params: usize,
    pub is_update: bool,
    pub pattern: Option<gmatch::PatternGraph>,
}

impl NamedQuery {
    fn from_spec(spec: QuerySpec) -> NamedQuery {
        let n_params = required_params(&spec);
        let is_update = spec.is_update();
        NamedQuery {
            spec,
            n_params,
            is_update,
            pattern: None,
        }
    }
}

/// Client-supplied parameter count: each step's `n_params` minus however
/// many values the feed chain has appended by the time it runs.
fn required_params(spec: &QuerySpec) -> usize {
    let mut feeds = 0usize;
    let mut required = 0usize;
    for step in &spec.steps {
        if step.feed_col.is_some() {
            feeds += 1;
        }
        required = required.max(step.plan.n_params.saturating_sub(feeds));
    }
    required
}

impl Catalog {
    /// Build the catalog from the schema codes: all IS/IU queries under
    /// `is*`/`iu*` names, plus `:scan` variants of the short reads (the
    /// non-indexed access path the paper's JIT benchmarks compile).
    pub fn new(codes: &SnbCodes) -> Catalog {
        let mut by_name = HashMap::new();
        for q in SrQuery::ALL {
            let spec = q.spec(codes);
            by_name.insert(
                format!("is{}:scan", q.name()),
                Arc::new(NamedQuery::from_spec(spec.scan_variant())),
            );
            by_name.insert(
                format!("is{}", q.name()),
                Arc::new(NamedQuery::from_spec(spec)),
            );
        }
        for q in IuQuery::ALL {
            by_name.insert(
                format!("iu{}", q.name()),
                Arc::new(NamedQuery::from_spec(q.spec(codes))),
            );
        }
        Catalog { by_name }
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Resolve query text: a catalog name first, then the ad-hoc grammar.
    pub fn resolve(&self, db: &GraphDb, text: &str) -> Result<Arc<NamedQuery>, ProtoError> {
        let text = text.trim();
        if let Some(q) = self.by_name.get(text) {
            return Ok(q.clone());
        }
        if let Some(first) = text.split_whitespace().next() {
            if matches!(first, "count" | "scan" | "range") {
                return parse_adhoc(db, text).map(Arc::new);
            }
            if first == "match" {
                return parse_match(db, text).map(Arc::new);
            }
        }
        Err(ProtoError::new(
            ErrorCode::UnknownQuery,
            format!("no catalog query or ad-hoc form matches {text:?}"),
        ))
    }

    /// Registered names, sorted (for `hello`/diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.by_name.keys().cloned().collect();
        v.sort();
        v
    }
}

/// Parse the ad-hoc grammar:
///
/// ```text
/// count nodes [Label]
/// count rels  [Type]
/// scan Label [where Key OP VALUE] [project ITEM,ITEM,...] [limit N] [count]
/// range Label Key LO HI [where ...] [project ...] [limit N] [count]
/// ```
///
/// `OP` is one of `= != < <= > >=`; `VALUE` (and `LO`/`HI`) is an integer,
/// `'string'`, `true`/`false`, or `?N` (execution-time parameter). Project
/// items are property keys on the scanned node, `@label` for its label
/// code, or `#N` for raw column `N`. `range` is the B+-tree range access
/// path: nodes with `LO <= Key <= HI`, served from the `(Label, Key)`
/// index when one exists and morsel-parallelised like a scan.
fn parse_adhoc(db: &GraphDb, text: &str) -> Result<NamedQuery, ProtoError> {
    let toks: Vec<&str> = text.split_whitespace().collect();
    let mut ops: Vec<Op> = Vec::new();
    let mut n_params = 0usize;

    let mut i = 0;
    match toks[i] {
        "count" => {
            i += 1;
            let kind = *toks
                .get(i)
                .ok_or_else(|| ProtoError::bad_request("count needs `nodes` or `rels`"))?;
            i += 1;
            let label = match toks.get(i) {
                Some(name) => {
                    i += 1;
                    Some(label_code(db, name)?)
                }
                None => None,
            };
            match kind {
                "nodes" => ops.push(Op::NodeScan { label }),
                "rels" => ops.push(Op::RelScan { label }),
                other => {
                    return Err(ProtoError::bad_request(format!(
                        "count needs `nodes` or `rels`, got {other:?}"
                    )))
                }
            }
            ops.push(Op::Count);
        }
        "scan" => {
            i += 1;
            let label = toks
                .get(i)
                .ok_or_else(|| ProtoError::bad_request("scan needs a label"))?;
            i += 1;
            ops.push(Op::NodeScan {
                label: Some(label_code(db, label)?),
            });
            i = parse_tail_clauses(db, &toks, i, &mut ops, &mut n_params)?;
        }
        "range" => {
            i += 1;
            let (Some(label), Some(key), Some(lo_raw), Some(hi_raw)) =
                (toks.get(i), toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
            else {
                return Err(ProtoError::bad_request("range needs `LABEL KEY LO HI`"));
            };
            i += 4;
            let lo = parse_value(db, lo_raw, &mut n_params)?;
            let hi = parse_value(db, hi_raw, &mut n_params)?;
            ops.push(Op::IndexRangeScan {
                label: label_code(db, label)?,
                key: key_code(db, key)?,
                lo,
                hi,
            });
            i = parse_tail_clauses(db, &toks, i, &mut ops, &mut n_params)?;
        }
        _ => unreachable!("resolve() gates on the first token"),
    }
    if i < toks.len() {
        return Err(ProtoError::bad_request(format!(
            "trailing tokens after {:?}",
            toks[i - 1]
        )));
    }

    let plan = Plan::new(ops, n_params);
    Ok(NamedQuery {
        n_params,
        is_update: plan.is_update(),
        spec: QuerySpec {
            name: "adhoc",
            steps: vec![ldbc::Step {
                plan,
                feed_col: None,
            }],
        },
        pattern: None,
    })
}

/// Parse a `match` pattern (DESIGN.md §16) and resolve it against the
/// dictionary. Only the logical pattern graph is built here — the
/// cost-based planner runs per execution, against the request's actual
/// parameter values and the live PGO table.
fn parse_match(db: &GraphDb, text: &str) -> Result<NamedQuery, ProtoError> {
    let ast = gmatch::parse(text)
        .map_err(|e| ProtoError::bad_request(format!("match: {e}")))?;
    let pg = gmatch::PatternGraph::resolve(&ast, &gmatch::DictResolver(db.dict()))
        .map_err(|e| ProtoError::new(ErrorCode::UnknownQuery, format!("match: {e}")))?;
    Ok(NamedQuery {
        n_params: pg.n_params,
        is_update: false,
        spec: QuerySpec {
            name: "match",
            steps: vec![],
        },
        pattern: Some(pg),
    })
}

/// The shared tail of `scan`/`range`: `where`, `project`, `limit`, `count`
/// clauses in any order. Returns the index past the last consumed token.
fn parse_tail_clauses(
    db: &GraphDb,
    toks: &[&str],
    mut i: usize,
    ops: &mut Vec<Op>,
    n_params: &mut usize,
) -> Result<usize, ProtoError> {
    while i < toks.len() {
        match toks[i] {
            "where" => {
                let key = toks
                    .get(i + 1)
                    .ok_or_else(|| ProtoError::bad_request("where needs `KEY OP VALUE`"))?;
                let op = toks.get(i + 2).and_then(|s| cmp_op(s)).ok_or_else(|| {
                    ProtoError::bad_request("where op must be one of = != < <= > >=")
                })?;
                let raw = toks
                    .get(i + 3)
                    .ok_or_else(|| ProtoError::bad_request("where needs `KEY OP VALUE`"))?;
                let value = parse_value(db, raw, n_params)?;
                ops.push(Op::Filter(Pred::Prop {
                    col: 0,
                    key: key_code(db, key)?,
                    op,
                    value,
                }));
                i += 4;
            }
            "project" => {
                let items = toks.get(i + 1).ok_or_else(|| {
                    ProtoError::bad_request("project needs a comma-separated list")
                })?;
                let mut projs = Vec::new();
                for item in items.split(',') {
                    let item = item.trim();
                    if item.is_empty() {
                        continue;
                    }
                    if item == "@label" {
                        projs.push(Proj::Label { col: 0 });
                    } else if let Some(n) = item.strip_prefix('#') {
                        let col: usize = n.parse().map_err(|_| {
                            ProtoError::bad_request(format!("bad column ref {item:?}"))
                        })?;
                        projs.push(Proj::Col(col));
                    } else {
                        projs.push(Proj::Prop {
                            col: 0,
                            key: key_code(db, item)?,
                        });
                    }
                }
                if projs.is_empty() {
                    return Err(ProtoError::bad_request("empty project list"));
                }
                ops.push(Op::Project(projs));
                i += 2;
            }
            "limit" => {
                let n: usize = toks
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ProtoError::bad_request("limit needs a number"))?;
                ops.push(Op::Limit(n));
                i += 2;
            }
            "count" => {
                ops.push(Op::Count);
                i += 1;
            }
            other => {
                return Err(ProtoError::bad_request(format!(
                    "unexpected token {other:?}"
                )))
            }
        }
    }
    Ok(i)
}

fn cmp_op(s: &str) -> Option<CmpOp> {
    Some(match s {
        "=" | "==" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        _ => return None,
    })
}

/// A label/type name must already exist in the dictionary: a typo should
/// be an error, not an empty scan over a label nobody has.
fn label_code(db: &GraphDb, name: &str) -> Result<u32, ProtoError> {
    db.dict().code_of(name).ok_or_else(|| {
        ProtoError::new(ErrorCode::UnknownQuery, format!("unknown label {name:?}"))
    })
}

fn key_code(db: &GraphDb, name: &str) -> Result<u32, ProtoError> {
    db.dict().code_of(name).ok_or_else(|| {
        ProtoError::new(
            ErrorCode::UnknownQuery,
            format!("unknown property key {name:?}"),
        )
    })
}

fn parse_value(db: &GraphDb, raw: &str, n_params: &mut usize) -> Result<PPar, ProtoError> {
    if let Some(n) = raw.strip_prefix('?') {
        let idx: usize = n
            .parse()
            .map_err(|_| ProtoError::bad_request(format!("bad parameter ref {raw:?}")))?;
        *n_params = (*n_params).max(idx + 1);
        return Ok(PPar::Param(idx));
    }
    if let Some(s) = raw.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')) {
        let code = db.intern(s).map_err(|e| {
            ProtoError::new(ErrorCode::Internal, format!("intern failed: {e}"))
        })?;
        return Ok(PPar::Const(PVal::Str(code)));
    }
    match raw {
        "true" => return Ok(PPar::Const(PVal::Bool(true))),
        "false" => return Ok(PPar::Const(PVal::Bool(false))),
        "null" => return Ok(PPar::Const(PVal::Null)),
        _ => {}
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Ok(PPar::Const(PVal::Int(i)));
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Ok(PPar::Const(PVal::Double(f)));
    }
    Err(ProtoError::bad_request(format!(
        "cannot parse value {raw:?} (use int, float, 'str', true/false, or ?N)"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::DbOptions;

    fn snb() -> ldbc::SnbDb {
        ldbc::generate(
            &ldbc::SnbParams::tiny(7),
            DbOptions::dram(96 << 20),
        )
        .unwrap()
    }

    #[test]
    fn catalog_has_all_interactive_queries() {
        let snb = snb();
        let cat = Catalog::new(&snb.codes);
        // 12 short reads x (indexed + scan) + 8 updates.
        assert_eq!(cat.len(), 32);
        for name in ["is1", "is1:scan", "is2-post", "is7-cmt", "iu1", "iu8"] {
            let q = cat.resolve(&snb.db, name).unwrap();
            assert!(q.n_params >= 1, "{name} should take parameters");
        }
        assert!(cat.resolve(&snb.db, "is99").is_err());
        let iu1 = cat.resolve(&snb.db, "iu1").unwrap();
        assert!(iu1.is_update);
        let is1 = cat.resolve(&snb.db, "is1").unwrap();
        assert!(!is1.is_update);
    }

    #[test]
    fn adhoc_grammar_builds_plans() {
        let snb = snb();
        let cat = Catalog::new(&snb.codes);
        let q = cat.resolve(&snb.db, "count nodes Person").unwrap();
        assert_eq!(q.n_params, 0);
        assert!(!q.is_update);

        let q = cat
            .resolve(
                &snb.db,
                "scan Person where id >= ?0 project firstName,lastName limit 5",
            )
            .unwrap();
        assert_eq!(q.n_params, 1);
        assert_eq!(q.spec.steps[0].plan.ops.len(), 4);

        let q = cat.resolve(&snb.db, "scan Person count").unwrap();
        assert_eq!(q.n_params, 0);

        assert!(cat.resolve(&snb.db, "scan Nope").is_err());
        assert!(cat.resolve(&snb.db, "scan Person where").is_err());
        assert!(cat.resolve(&snb.db, "scan Person banana").is_err());

        let q = cat
            .resolve(&snb.db, "range Person id ?0 ?1 project firstName limit 3")
            .unwrap();
        assert_eq!(q.n_params, 2);
        assert!(matches!(
            q.spec.steps[0].plan.ops.first(),
            Some(Op::IndexRangeScan { .. })
        ));

        assert!(cat.resolve(&snb.db, "range Person id 0").is_err());
        assert!(cat.resolve(&snb.db, "range Person nope 0 10").is_err());
    }

    #[test]
    fn adhoc_queries_run() {
        let snb = snb();
        let cat = Catalog::new(&snb.codes);
        let q = cat.resolve(&snb.db, "count nodes Person").unwrap();
        let rows = ldbc::run_spec(&snb.db, &q.spec, &[], &ldbc::Mode::Interp).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].as_pval(), Some(PVal::Int(60)));

        // A full-range count over `id` must see every Person, whether it
        // goes through the index or the fallback scan.
        let q = cat
            .resolve(&snb.db, "range Person id 0 9223372036854775807 count")
            .unwrap();
        let rows = ldbc::run_spec(&snb.db, &q.spec, &[], &ldbc::Mode::Interp).unwrap();
        assert_eq!(rows[0][0].as_pval(), Some(PVal::Int(60)));
    }
}
