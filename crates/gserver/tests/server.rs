//! End-to-end server tests over real TCP sockets: concurrent sessions,
//! rollback-on-disconnect, admission control, idle reaping, deadlines,
//! graceful shutdown.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gjit::JitEngine;
use graphcore::DbOptions;
use gserver::{
    serve, BatchItem, Client, ClientError, ErrorCode, Json, NetMode, Param, ServerConfig,
    ServerHandle,
};
use ldbc::{SnbDb, SnbParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn start(config: ServerConfig) -> (Arc<SnbDb>, ServerHandle) {
    let snb = Arc::new(
        ldbc::generate(&SnbParams::tiny(11), DbOptions::dram(128 << 20)).expect("generate"),
    );
    let engine = Arc::new(JitEngine::new());
    let handle = serve(snb.clone(), engine, config).expect("bind");
    (snb, handle)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    }
}

/// Run `f`, retrying on retryable server errors (SERVER_BUSY under load,
/// TXN_CONFLICT between concurrent writers).
fn with_retry<T>(
    mut f: impl FnMut() -> Result<T, ClientError>,
    what: &str,
) -> Result<T, ClientError> {
    let mut backoff = Duration::from_millis(5);
    for _ in 0..50 {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(80));
            }
            Err(e) => return Err(e),
        }
    }
    panic!("{what}: retries exhausted");
}

fn poll_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

// ---------------------------------------------------------------------

#[test]
fn concurrent_sessions_mixed_reads_and_updates() {
    let (snb, handle) = start(test_config());
    let addr = handle.local_addr();
    let persons = snb.data.person_ids.clone();
    let posts = snb.data.post_ids.clone();
    let baseline_commits = snb
        .db
        .mgr()
        .stats()
        .commits
        .load(std::sync::atomic::Ordering::Relaxed);

    const THREADS: usize = 5;
    const ITERS: usize = 12;
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let persons = persons.clone();
            let posts = posts.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t as u64);
                let mut client = Client::connect(addr).expect("connect");
                client
                    .prepare("profile", "is1")
                    .expect("prepare is1");
                let mut reads = 0usize;
                let mut writes = 0usize;
                for i in 0..ITERS {
                    let person = persons[rng.random_range(0..persons.len())];
                    let post = posts[rng.random_range(0..posts.len())];
                    match i % 3 {
                        // Autocommit read through the prepared statement.
                        0 => {
                            let r = with_retry(
                                || client.execute("profile", &[Param::Int(person)]),
                                "is1",
                            )
                            .expect("is1");
                            assert_eq!(r.row_count, 1, "person {person} should have a profile");
                            reads += 1;
                        }
                        // Autocommit update (IU2: person likes a post).
                        1 => {
                            with_retry(
                                || {
                                    client.query(
                                        "iu2",
                                        &[
                                            Param::Int(person),
                                            Param::Int(post),
                                            Param::Date(1_600_000_000_000 + i as i64),
                                        ],
                                    )
                                },
                                "iu2",
                            )
                            .expect("iu2");
                            writes += 1;
                        }
                        // Explicit transaction: read + update + commit,
                        // restarted wholesale on conflict.
                        _ => {
                            with_retry(
                                || {
                                    client.begin()?;
                                    let step = (|| {
                                        client.execute("profile", &[Param::Int(person)])?;
                                        client.query(
                                            "iu2",
                                            &[
                                                Param::Int(person),
                                                Param::Int(post),
                                                Param::Date(1_700_000_000_000 + i as i64),
                                            ],
                                        )?;
                                        client.commit()
                                    })();
                                    if step.is_err() {
                                        let _ = client.rollback();
                                    }
                                    step
                                },
                                "txn",
                            )
                            .expect("explicit txn");
                            writes += 1;
                        }
                    }
                }
                client.quit().expect("quit");
                (reads, writes)
            })
        })
        .collect();

    let mut total_reads = 0;
    let mut total_writes = 0;
    for w in workers {
        let (r, u) = w.join().expect("worker thread");
        total_reads += r;
        total_writes += u;
    }
    assert_eq!(total_reads, THREADS * ITERS.div_ceil(3));
    assert!(total_writes >= THREADS * ITERS / 2);

    // All sessions drained after quit; every update really committed.
    assert!(
        poll_until(Duration::from_secs(2), || handle.active_sessions() == 0),
        "sessions leaked: {}",
        handle.active_sessions()
    );
    let commits = snb
        .db
        .mgr()
        .stats()
        .commits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        commits - baseline_commits >= total_writes as u64,
        "expected >= {total_writes} commits, got {}",
        commits - baseline_commits
    );
    let stats = handle.stats();
    assert!(stats.admitted.load(std::sync::atomic::Ordering::Relaxed) > 0);
    handle.shutdown();
}

#[test]
fn disconnect_mid_transaction_rolls_back() {
    let (snb, handle) = start(test_config());
    let addr = handle.local_addr();
    let nodes_before = snb.db.node_count();

    // Build IU1 params by hand: a fresh person inserted under an explicit,
    // never-committed transaction.
    let city = snb.data.city_ids[0];
    let fresh_pid = snb.data.fresh_person_id();
    let iu1_params = vec![
        Param::Int(city),
        Param::Int(fresh_pid),
        Param::Str("Ghost".into()),
        Param::Str("Writer".into()),
        Param::Str("female".into()),
        Param::Date(631_152_000_000),
        Param::Date(1_600_000_000_000),
        Param::Str("10.0.0.1".into()),
        Param::Str("Firefox".into()),
    ];

    let mut victim = Client::connect(addr).expect("connect victim");
    victim.begin().expect("begin");
    victim.query("iu1", &iu1_params).expect("iu1 in txn");
    // The uncommitted insert is visible to its own transaction through the
    // scan-shaped access path (index entries only land at commit).
    let seen = victim
        .query("is1:scan", &[Param::Int(fresh_pid)])
        .expect("is1:scan own write");
    assert_eq!(seen.row_count, 1, "own uncommitted insert must be visible");

    // Kill the client mid-transaction: raw socket drop, no rollback sent.
    drop(victim);

    // The server must notice, roll back, and free the session.
    assert!(
        poll_until(Duration::from_secs(3), || {
            handle
                .stats()
                .disconnect_rollbacks
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        }),
        "disconnect rollback not recorded"
    );
    assert!(
        poll_until(Duration::from_secs(3), || handle.active_sessions() == 0),
        "victim session leaked"
    );

    // A fresh session must not see the phantom person, and the node table
    // must be back to its pre-transaction size.
    let mut checker = Client::connect(addr).expect("connect checker");
    let seen = checker
        .query("is1:scan", &[Param::Int(fresh_pid)])
        .expect("is1:scan after rollback");
    assert_eq!(seen.row_count, 0, "rolled-back insert must be invisible");
    assert_eq!(snb.db.node_count(), nodes_before, "node count must revert");
    checker.quit().expect("quit");

    assert!(poll_until(Duration::from_secs(2), || {
        handle.active_sessions() == 0
    }));
    handle.shutdown();
}

#[test]
fn saturation_yields_retryable_server_busy() {
    let config = ServerConfig {
        workers: 1,
        admission_wait: Duration::from_millis(30),
        enable_debug_ops: true,
        ..test_config()
    };
    let (snb, handle) = start(config);
    let addr = handle.local_addr();
    let person = snb.data.person_ids[0];

    // Occupy the single execution slot for a while.
    let blocker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect blocker");
        c.sleep(800).expect("sleep");
        c.quit().expect("quit");
    });
    std::thread::sleep(Duration::from_millis(150));

    // While the slot is held, execution requests must be rejected quickly
    // with a retryable SERVER_BUSY — not queued, not hung. (Preparing a
    // statement needs no execution slot, so it works even when saturated.)
    let mut c = Client::connect(addr).expect("connect probe");
    c.prepare("is1", "is1").expect("prepare");
    let t0 = Instant::now();
    let err = c
        .execute_with_deadline("is1", &[Param::Int(person)], Duration::from_secs(5))
        .expect_err("must be rejected while saturated");
    assert!(t0.elapsed() < Duration::from_secs(1), "rejection must be fast");
    assert_eq!(err.code(), Some(ErrorCode::ServerBusy), "got {err}");
    assert!(err.is_retryable());
    assert!(
        handle
            .stats()
            .rejected
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );

    // Once the blocker releases the slot, the same request succeeds.
    blocker.join().expect("blocker");
    let r = with_retry(|| c.query("is1", &[Param::Int(person)]), "is1 after drain")
        .expect("is1 after drain");
    assert_eq!(r.row_count, 1);
    c.quit().expect("quit");
    handle.shutdown();
}

#[test]
fn idle_sessions_are_reaped() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(250),
        maintenance_interval: Duration::from_millis(50),
        ..test_config()
    };
    let (_snb, handle) = start(config);
    let addr = handle.local_addr();

    let mut c = Client::connect(addr).expect("connect");
    c.ping().expect("ping");
    assert_eq!(handle.active_sessions(), 1);

    // Go idle past the timeout: the maintenance sweep closes the socket
    // and the session is deregistered.
    assert!(
        poll_until(Duration::from_secs(3), || handle.active_sessions() == 0),
        "idle session was not reaped"
    );
    assert!(
        handle
            .stats()
            .sessions_expired
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    assert!(c.ping().is_err(), "reaped session must be unusable");
    handle.shutdown();
}

#[test]
fn deadlines_are_enforced() {
    let (snb, handle) = start(test_config());
    let addr = handle.local_addr();
    let person = snb.data.person_ids[0];

    let mut c = Client::connect(addr).expect("connect");
    c.prepare("is1", "is1").expect("prepare");
    let err = c
        .execute_with_deadline("is1", &[Param::Int(person)], Duration::ZERO)
        .expect_err("zero deadline must miss");
    assert_eq!(err.code(), Some(ErrorCode::DeadlineExceeded));
    // A missed deadline is retryable: the server rolled the work back, so
    // the client may re-issue (ideally with a larger deadline).
    assert!(err.is_retryable());
    assert!(
        handle
            .stats()
            .deadline_misses
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    // The session is still healthy afterwards.
    let r = c.query("is1", &[Param::Int(person)]).expect("is1");
    assert_eq!(r.row_count, 1);
    c.quit().expect("quit");
    handle.shutdown();
}

#[test]
fn stats_and_maintenance_counters() {
    let config = ServerConfig {
        maintenance_interval: Duration::from_millis(50),
        ..test_config()
    };
    let (snb, handle) = start(config);
    let addr = handle.local_addr();
    let person = snb.data.person_ids[0];

    let mut c = Client::connect(addr).expect("connect");
    // Run the same query a few times so the JIT cache sees repeats.
    for _ in 0..3 {
        c.query("is1:scan", &[Param::Int(person)]).expect("is1:scan");
    }
    let stats = c.stats().expect("stats");
    let jit = stats.get("jit").expect("jit section");
    assert!(jit.get("cache_capacity").and_then(Json::as_i64).unwrap() > 0);
    assert!(stats.get("sessions").is_some());
    assert!(stats.get("admission").is_some());
    assert!(stats.get("txn").is_some());
    let exec = stats.get("exec").expect("exec section");
    assert!(exec.get("fallback_total").and_then(Json::as_i64).is_some());
    assert!(
        exec.get("interpreted_morsels")
            .and_then(Json::as_i64)
            .is_some()
    );
    assert!(stats.get("pmem").is_some());
    assert_eq!(
        stats
            .get("graph")
            .and_then(|g| g.get("nodes"))
            .and_then(Json::as_i64)
            .unwrap(),
        snb.db.node_count() as i64
    );
    // The maintenance tick has run at least once.
    assert!(poll_until(Duration::from_secs(2), || {
        handle
            .stats()
            .maintenance_runs
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    }));
    c.quit().expect("quit");
    handle.shutdown();
}

#[test]
fn remote_shutdown_drains_cleanly() {
    let config = ServerConfig {
        allow_remote_shutdown: true,
        drain_timeout: Duration::from_secs(2),
        ..test_config()
    };
    let (_snb, handle) = start(config);
    let addr = handle.local_addr();

    // A bystander session is connected when shutdown arrives.
    let bystander = Client::connect(addr).expect("connect bystander");

    let c = Client::connect(addr).expect("connect admin");
    c.shutdown_server().expect("shutdown op");
    handle.wait(); // must return: drain + force-close of the bystander

    assert!(Client::connect(addr).is_err(), "listener must be closed");
    drop(bystander);
}

/// One plain-HTTP scrape of the standalone exporter; returns the body.
fn http_get(addr: std::net::SocketAddr) -> String {
    use std::io::{Read as _, Write as _};
    let mut conn = std::net::TcpStream::connect(addr).expect("connect exporter");
    conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
        .expect("send scrape");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read scrape");
    let (_head, body) = raw
        .split_once("\r\n\r\n")
        .expect("HTTP response must have a header/body split");
    body.to_string()
}

#[test]
fn metrics_slowlog_and_exporter() {
    let config = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        slow_query_us: 0, // capture every execute
        slowlog_capacity: 8,
        ..test_config()
    };
    let (snb, handle) = start(config);
    let addr = handle.local_addr();
    let person = snb.data.person_ids[0];

    let mut c = Client::connect(addr).expect("connect");
    for _ in 0..3 {
        c.query("is1:scan", &[Param::Int(person)]).expect("is1:scan");
    }

    // METRICS over the query protocol: a grammatical exposition covering
    // the whole metric surface, with a populated request histogram.
    let text = c.metrics_text().expect("metrics");
    let samples = gobs::validate_exposition(&text).expect("valid exposition");
    assert!(samples >= 20, "expected >=20 samples, got {samples}");
    let series = text.lines().filter(|l| l.starts_with("# TYPE")).count();
    assert!(series >= 20, "expected >=20 series, got {series}");
    let req_count: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("pmemgraph_server_request_us_count "))
        .expect("request histogram in exposition")
        .trim()
        .parse()
        .expect("numeric count");
    assert!(req_count >= 3, "3 executes must be observed, got {req_count}");
    assert!(text.contains("pmemgraph_txn_commits_total"));
    assert!(text.contains("pmemgraph_pmem_lines_flushed_total"));
    assert!(text.contains("# TYPE pmemgraph_server_request_us histogram"));

    // STATS reads the same registry snapshot the exposition renders.
    let stats = c.stats().expect("stats");
    let admitted = stats
        .get("admission")
        .and_then(|a| a.get("admitted"))
        .and_then(Json::as_i64)
        .unwrap();
    assert!(admitted >= 3, "stats view must see the admitted executes");

    // The standalone exporter serves the same body over plain HTTP.
    let maddr = handle.metrics_addr().expect("exporter configured");
    let body = http_get(maddr);
    gobs::validate_exposition(&body).expect("valid exporter exposition");
    assert!(body.contains("pmemgraph_server_request_us_bucket"));

    // SLOWLOG: a zero threshold captures every execute with plan summary
    // and profile; `clear` drains the ring.
    let log = c.slowlog(false).expect("slowlog");
    let entries = log.get("entries").and_then(Json::as_array).expect("entries");
    assert_eq!(entries.len(), 3, "three executes over the 0µs threshold");
    let e = entries.last().unwrap();
    assert_eq!(e.get("query").and_then(Json::as_str), Some("is1:scan"));
    assert!(
        !e.get("plan").and_then(Json::as_str).unwrap_or("").is_empty(),
        "plan summary must be captured"
    );
    assert!(e.get("mode").and_then(Json::as_str).is_some());
    assert!(e.get("elapsed_us").and_then(Json::as_i64).is_some());
    assert!(e.get("morsels").and_then(Json::as_i64).is_some());
    assert!(e.get("segments").and_then(Json::as_array).is_some());
    let drained = c.slowlog(true).expect("slowlog clear");
    assert_eq!(
        drained.get("entries").and_then(Json::as_array).unwrap().len(),
        3,
        "clear returns the window it drained"
    );
    let after = c.slowlog(false).expect("slowlog after clear");
    assert!(after.get("entries").and_then(Json::as_array).unwrap().is_empty());

    c.quit().expect("quit");
    handle.shutdown();
}

#[test]
fn match_patterns_over_the_wire() {
    let config = ServerConfig {
        slow_query_us: 0, // capture every execute
        slowlog_capacity: 16,
        ..test_config()
    };
    let (snb, handle) = start(config);
    let mut c = Client::connect(handle.local_addr()).expect("connect");

    // Find a person with at least one KNOWS edge via a 1-hop pattern.
    let mut anchor = None;
    for &p in &snb.data.person_ids {
        let res = c
            .query(
                "match (a:Person {id = ?0})-[:KNOWS]->(b:Person) return b.id",
                &[Param::Int(p)],
            )
            .expect("match 1-hop");
        if res.row_count > 0 {
            anchor = Some((p, res.row_count));
            break;
        }
    }
    let (person, friends) = anchor.expect("tiny graph has at least one KNOWS edge");

    // A variable-length path reaches at least the direct friends, and
    // every projected id decodes as an integer.
    let fof = c
        .query(
            "match (a:Person {id = ?0})-[:KNOWS*1..2]->(b:Person) return b.id",
            &[Param::Int(person)],
        )
        .expect("match var-length");
    assert!(
        fof.row_count >= friends,
        "1..2 hops ({}) must cover the 1-hop rows ({friends})",
        fof.row_count
    );
    assert!(fof.rows.iter().all(|r| r[0].as_i64().is_some()));

    // Prepared match statements resolve the pattern once and replan per
    // execution; `count` agrees with the materialized row count.
    let n = c
        .prepare(
            "fof",
            "match (a:Person {id = ?0})-[:KNOWS*1..2]->(b:Person) return b.id count",
        )
        .expect("prepare match");
    assert_eq!(n, 1, "pattern takes one parameter");
    let counted = c.execute("fof", &[Param::Int(person)]).expect("execute fof");
    assert_eq!(
        counted.rows[0][0].as_i64(),
        Some(fof.row_count as i64),
        "count must agree with the materialized rows"
    );

    // Unknown names are resolution errors, not empty scans.
    let err = c.query("match (a:Noope) return a", &[]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::UnknownQuery), "got {err}");

    // MATCH runs autocommit only: inside an explicit transaction it is
    // refused (patterns read their own snapshot).
    c.begin().expect("begin");
    let err = c
        .query(
            "match (a:Person {id = ?0})-[:KNOWS]->(b) return b",
            &[Param::Int(person)],
        )
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::BadRequest), "got {err}");
    c.rollback().expect("rollback");

    // The slow log captured the cost-based plan summary (start node +
    // access path + expansion order), not an empty operator chain.
    let log = c.slowlog(false).expect("slowlog");
    let entries = log.get("entries").and_then(Json::as_array).expect("entries");
    let m = entries
        .iter()
        .find(|e| {
            e.get("query")
                .and_then(Json::as_str)
                .is_some_and(|q| q.starts_with("match") && q.contains("*1..2"))
        })
        .expect("match query in slowlog");
    let plan = m.get("plan").and_then(Json::as_str).unwrap_or("");
    assert!(
        plan.contains("start=a") && plan.contains("expand"),
        "planner summary must be captured, got {plan:?}"
    );

    c.quit().expect("quit");
    handle.shutdown();
}

/// Pipelining end to end: `send_batch` fires every request before reading
/// a single response, and the i-th response must answer the i-th request
/// — including item-level failures, which must not shift later answers.
/// Run against both front ends; the wire contract is identical.
fn batch_order_roundtrip(mode: NetMode) {
    let config = ServerConfig {
        net_mode: mode,
        ..test_config()
    };
    let (_snb, handle) = start(config);
    let mut c = Client::connect(handle.local_addr()).expect("connect");

    const N: usize = 24;
    let batch: Vec<BatchItem> = (0..N)
        .map(|i| {
            if i == 7 {
                // A failing item mid-batch: unknown prepared name.
                BatchItem::prepared("no_such_statement", &[])
            } else {
                // Distinct per-index scalar so a shifted response is loud.
                let k = i % 5 + 1;
                BatchItem::query(&format!("scan Person limit {k} count"), &[])
            }
        })
        .collect();
    let results = c.send_batch(&batch).expect("batch transport");
    assert_eq!(results.len(), N);
    for (i, r) in results.iter().enumerate() {
        if i == 7 {
            assert!(r.is_err(), "item 7 must fail");
            continue;
        }
        let want = (i % 5 + 1) as i64;
        let got = r.as_ref().expect("batch item").scalar().expect("scalar");
        assert_eq!(got, want, "response {i} out of order: got {got}, want {want}");
    }

    // The same connection still works lock-step afterwards.
    let r = c.query("scan Person limit 3 count", &[]).expect("followup");
    assert_eq!(r.scalar(), Some(3));
    c.quit().expect("quit");
    handle.shutdown();
}

#[test]
fn pipelined_batch_preserves_order_evented() {
    batch_order_roundtrip(NetMode::Evented);
}

#[test]
fn pipelined_batch_preserves_order_threaded() {
    batch_order_roundtrip(NetMode::Threaded);
}

/// The evented front end's reason to exist: many idle connections cost
/// no threads. Park a fleet of idle sessions, then verify a hot client
/// still gets work done and the session/connection accounting is exact.
#[test]
fn evented_holds_many_idle_connections() {
    let config = ServerConfig {
        net_mode: NetMode::Evented,
        ..test_config()
    };
    let (_snb, handle) = start(config);
    if handle.net_mode() != NetMode::Evented {
        return; // non-Linux fallback: nothing to pin here
    }
    let addr = handle.local_addr();

    const IDLE: usize = 128;
    let fleet: Vec<Client> = (0..IDLE)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}")))
        .collect();
    assert_eq!(handle.active_sessions(), IDLE);
    assert_eq!(
        handle
            .stats()
            .open_conns
            .load(std::sync::atomic::Ordering::Relaxed),
        IDLE as u64
    );

    // A hot client pipelines through the same reactor, undisturbed.
    let mut hot = Client::connect(addr).expect("hot client");
    let batch: Vec<BatchItem> = (0..16)
        .map(|_| BatchItem::query("scan Person limit 2 count", &[]))
        .collect();
    for r in hot.send_batch(&batch).expect("hot batch") {
        assert_eq!(r.expect("hot item").scalar(), Some(2));
    }
    hot.quit().expect("quit hot");

    drop(fleet);
    assert!(
        poll_until(Duration::from_secs(3), || handle.active_sessions() == 0),
        "idle fleet not cleaned up: {}",
        handle.active_sessions()
    );
    handle.shutdown();
}

/// Backpressure is TCP pushback, not an error: a client that floods more
/// requests than `pipeline_depth` gets its reads paused (counted in
/// `read_pauses`) and still receives every response, in order.
#[test]
fn backpressure_pauses_reads_instead_of_erroring() {
    let config = ServerConfig {
        net_mode: NetMode::Evented,
        pipeline_depth: 2,
        enable_debug_ops: true,
        ..test_config()
    };
    let (_snb, handle) = start(config);
    if handle.net_mode() != NetMode::Evented {
        return;
    }

    // Raw pipelining, below the Client helper: write 16 sleep requests in
    // one burst so the flood outruns execution by construction.
    use std::io::{BufRead as _, BufReader, Write as _};
    let stream = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut greeting = String::new();
    reader.read_line(&mut greeting).expect("greeting");

    const N: usize = 16;
    let mut wire = String::new();
    for _ in 0..N {
        wire.push_str("{\"op\":\"sleep\",\"ms\":20}\n");
    }
    (&stream).write_all(wire.as_bytes()).expect("flood");

    for i in 0..N {
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("response");
        assert!(
            resp.contains("\"ok\":true"),
            "request {i} must succeed, got: {resp}"
        );
    }
    assert!(
        handle
            .stats()
            .read_pauses
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "flooding 16 requests past a depth-2 pipeline must pause reads"
    );
    drop(stream);
    handle.shutdown();
}

/// Regression: `wait()` parks in the accept join until shutdown is
/// requested — the exporter must keep answering scrapes for that whole
/// time, not die when the owner starts waiting (the server-binary
/// lifecycle: bind, print, `wait()`).
#[test]
fn exporter_survives_wait() {
    let config = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        allow_remote_shutdown: true,
        ..test_config()
    };
    let (_snb, handle) = start(config);
    let addr = handle.local_addr();
    let maddr = handle.metrics_addr().expect("exporter configured");

    let waiter = std::thread::spawn(move || handle.wait());
    // Give wait() time to park in the accept join, then scrape.
    std::thread::sleep(Duration::from_millis(100));
    let body = http_get(maddr);
    gobs::validate_exposition(&body).expect("valid exposition while waiting");
    assert!(body.contains("pmemgraph_server_sessions_active"));

    let c = Client::connect(addr).expect("connect admin");
    c.shutdown_server().expect("shutdown op");
    waiter.join().expect("wait returns after shutdown");
    assert!(
        std::net::TcpStream::connect(maddr).is_err(),
        "exporter must be closed after shutdown"
    );
}
