//! Persistent chunk allocator with size-class free lists.
//!
//! Design goal DG5: PMem allocations are expensive (C5), so the engine
//! allocates chunks (not records), reuses freed blocks through persistent
//! free lists instead of deallocating, and supports group allocation to
//! amortize allocator overhead. This allocator follows that discipline:
//!
//! * allocation rounds up to one of [`SIZE_CLASSES`] (all multiples of a
//!   cache line, classes ≥256 B aligned to the 256 B device block, DG3);
//! * `free` pushes the block on a per-class persistent LIFO list whose link
//!   word is embedded in the block's first 8 bytes;
//! * the bump pointer and free-list heads live in the pool header and are
//!   updated with single failure-atomic 8-byte stores, so the allocator
//!   metadata can never be torn. A crash between linking a block and
//!   publishing the head can leak at most one block (same trade-off PMDK
//!   resolves with its redo log; we document it instead — leaked blocks are
//!   recovered by a full-table rebuild, never cause corruption).

//!
//! On top of the global allocator sit **sharded per-thread bump arenas**:
//! each thread is assigned (round-robin) to one of [`ARENA_SHARDS`] shards,
//! and small-class allocations are bumped out of a shard-local slab that is
//! refilled from the global bump region in [`ARENA_SLAB_BYTES`] chunks (one
//! `alloc_lock` acquisition, one injected allocation latency and one bump
//! persist per *slab* instead of per block). The slab carve-out itself is
//! plain volatile arithmetic — crash-safe because the global bump pointer
//! already covers the whole slab, so a crash can only leak the unconsumed
//! tail of a slab (the same leak-not-corrupt trade-off as the free lists).
//! Arenas deliberately stand aside whenever the class's free list is
//! non-empty so freed blocks are still reused first (DG5), and they can be
//! disabled entirely with `PMEMGRAPH_ALLOC_ARENAS=0` /
//! [`Pool::set_alloc_arenas`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::error::{PmemError, Result};
use crate::pool::{Pool, PMEM_BLOCK};

/// Allocation size classes in bytes.
pub const SIZE_CLASSES: [usize; 15] = [
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288,
    1048576,
];

/// Number of size classes (also the length of the header free-list array).
pub(crate) const NUM_CLASSES: usize = SIZE_CLASSES.len();

/// A resolved size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocClass {
    /// Index into [`SIZE_CLASSES`].
    pub index: usize,
    /// Block size in bytes.
    pub size: usize,
}

impl AllocClass {
    /// Smallest class that fits `size` bytes, or `None` if larger than the
    /// biggest class (large allocations are served directly from the bump
    /// region and are not reusable through free lists).
    pub fn for_size(size: usize) -> Option<AllocClass> {
        SIZE_CLASSES
            .iter()
            .position(|&c| c >= size)
            .map(|index| AllocClass {
                index,
                size: SIZE_CLASSES[index],
            })
    }
}

/// Number of allocation-arena shards. Threads are spread round-robin.
pub const ARENA_SHARDS: usize = 8;
/// Largest size class served from arenas; bigger classes go to the global
/// allocator directly (a slab would hold too few blocks to amortize).
pub const ARENA_MAX_BYTES: usize = 4096;
/// Bytes carved from the global bump region per arena refill.
pub const ARENA_SLAB_BYTES: usize = 16384;

/// One shard's bump run for one size class: `[next, end)` is pre-reserved
/// pool space not yet handed out.
#[derive(Debug, Clone, Copy, Default)]
struct ArenaRun {
    next: u64,
    end: u64,
}

/// Sharded arena state hanging off the [`Pool`].
#[derive(Debug)]
pub(crate) struct ArenaState {
    enabled: AtomicBool,
    shards: Vec<Mutex<[ArenaRun; NUM_CLASSES]>>,
}

impl ArenaState {
    pub(crate) fn new(enabled: bool) -> ArenaState {
        ArenaState {
            enabled: AtomicBool::new(enabled),
            shards: (0..ARENA_SHARDS)
                .map(|_| Mutex::new([ArenaRun::default(); NUM_CLASSES]))
                .collect(),
        }
    }
}

/// Default arena enablement: `PMEMGRAPH_ALLOC_ARENAS` via [`gconfig`].
pub(crate) fn arenas_env() -> bool {
    gconfig::alloc_arenas()
}

/// Round-robin thread-to-shard assignment, fixed for a thread's lifetime.
fn my_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % ARENA_SHARDS;
    }
    SHARD.with(|s| *s)
}

impl Pool {
    /// Allocate `size` bytes of persistent memory. Returns the byte offset.
    ///
    /// Small-class allocations are served from the calling thread's arena
    /// shard when arenas are enabled and the class free list is empty;
    /// everything else takes the global `alloc_lock`.
    ///
    /// Contents of a reused block are unspecified; use
    /// [`Pool::alloc_zeroed`] when the caller relies on zero-initialisation.
    pub fn alloc(&self, size: usize) -> Result<u64> {
        self.stats().allocs.fetch_add(1, Ordering::Relaxed);
        if let Some(off) = self.arena_alloc(size) {
            return Ok(off);
        }
        let _g = self.alloc_lock.lock();
        self.profile().alloc_delay();
        self.alloc_locked(size)
    }

    /// Whether sharded allocation arenas are in use.
    pub fn alloc_arenas(&self) -> bool {
        self.arena.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable the sharded arenas at runtime. Disabling strands
    /// the unconsumed tails of live slabs (leaked, never corrupted).
    pub fn set_alloc_arenas(&self, on: bool) {
        self.arena.enabled.store(on, Ordering::Relaxed);
    }

    /// Try to serve `size` from the caller's arena shard. `None` routes the
    /// request to the global allocator: class too large, free list
    /// non-empty (freed blocks must be reused first, DG5), arenas off, or
    /// the refill failed (e.g. out of space — the global path reports it).
    fn arena_alloc(&self, size: usize) -> Option<u64> {
        if !self.arena.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let class = AllocClass::for_size(size)?;
        if class.size > ARENA_MAX_BYTES {
            return None;
        }
        // Racy pre-check by design: a concurrent free may be missed this
        // round and reused on the next allocation instead.
        if self.read_header_u64(self.free_head_off(class.index)) != 0 {
            return None;
        }
        let mut runs = self.arena.shards[my_shard()].lock();
        let run = &mut runs[class.index];
        if run.next + (class.size as u64) <= run.end {
            let off = run.next;
            run.next += class.size as u64;
            return Some(off);
        }
        // Refill: one global-allocator round trip reserves a whole slab.
        // Lock order is shard -> alloc_lock, never the reverse.
        let n = ARENA_SLAB_BYTES / class.size;
        let align = class.size.min(PMEM_BLOCK);
        let start = {
            let _g = self.alloc_lock.lock();
            self.profile().alloc_delay();
            self.alloc_bump_group(class.size, n, align).ok()?
        };
        self.stats().arena_refills.fetch_add(1, Ordering::Relaxed);
        run.next = start + class.size as u64;
        run.end = start + (class.size * n) as u64;
        Some(start)
    }

    fn alloc_locked(&self, size: usize) -> Result<u64> {
        match AllocClass::for_size(size) {
            Some(class) => {
                let head_off = self.free_head_off(class.index);
                let head = self.read_header_u64(head_off);
                if head != 0 {
                    // Pop: publish the successor with one atomic store.
                    let next = self.read_u64(head);
                    self.write_u64(head_off, next);
                    self.persist(head_off, 8);
                    return Ok(head);
                }
                self.alloc_bump(class.size, class.size.min(PMEM_BLOCK))
            }
            None => {
                // Large allocation: 256-byte aligned, bump only.
                let rounded = size.div_ceil(PMEM_BLOCK) * PMEM_BLOCK;
                self.alloc_bump(rounded, PMEM_BLOCK)
            }
        }
    }

    fn alloc_bump(&self, size: usize, align: usize) -> Result<u64> {
        let bump = self.bump();
        let start = bump.div_ceil(align as u64) * align as u64;
        let end = start
            .checked_add(size as u64)
            .ok_or(PmemError::OutOfSpace { requested: size })?;
        if end > self.size() as u64 {
            return Err(PmemError::OutOfSpace { requested: size });
        }
        self.set_bump(end);
        Ok(start)
    }

    /// Allocate and zero-fill.
    pub fn alloc_zeroed(&self, size: usize) -> Result<u64> {
        let off = self.alloc(size)?;
        self.write_zeros(off, size);
        self.persist(off, size);
        Ok(off)
    }

    /// Group allocation (DG5): `n` blocks of `size` bytes with a single
    /// allocator round-trip and a single injected allocation latency.
    /// Contiguous when served from the bump region.
    pub fn alloc_group(&self, size: usize, n: usize) -> Result<Vec<u64>> {
        let _g = self.alloc_lock.lock();
        self.profile().alloc_delay();
        self.stats()
            .allocs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut out = Vec::with_capacity(n);
        if let Some(class) = AllocClass::for_size(size) {
            // Contiguous fast path when no reusable blocks exist.
            if self.read_header_u64(self.free_head_off(class.index)) == 0 {
                let align = class.size.min(PMEM_BLOCK);
                let start = self.alloc_bump_group(class.size, n, align)?;
                for i in 0..n {
                    out.push(start + (i * class.size) as u64);
                }
                return Ok(out);
            }
        }
        for _ in 0..n {
            out.push(self.alloc_locked(size)?);
        }
        Ok(out)
    }

    fn alloc_bump_group(&self, size: usize, n: usize, align: usize) -> Result<u64> {
        let bump = self.bump();
        let start = bump.div_ceil(align as u64) * align as u64;
        let total = (size * n) as u64;
        let end = start
            .checked_add(total)
            .ok_or(PmemError::OutOfSpace { requested: size * n })?;
        if end > self.size() as u64 {
            return Err(PmemError::OutOfSpace { requested: size * n });
        }
        self.set_bump(end);
        Ok(start)
    }

    /// Return a class-sized block to its free list for later reuse. `size`
    /// must match the size passed to [`Pool::alloc`]. Large (over-class)
    /// blocks are intentionally leaked (DG5: reuse, don't deallocate).
    pub fn free(&self, off: u64, size: usize) -> Result<()> {
        let Some(class) = AllocClass::for_size(size) else {
            return Ok(()); // large block: leaked by design
        };
        let _g = self.alloc_lock.lock();
        self.stats()
            .frees
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let head_off = self.free_head_off(class.index);
        let head = self.read_header_u64(head_off);
        // Link first, then publish: a crash in between leaks `off` only.
        self.write_u64(off, head);
        self.persist(off, 8);
        self.write_u64(head_off, off);
        self.persist(head_off, 8);
        Ok(())
    }

    /// Bytes remaining in the never-allocated bump region.
    pub fn bytes_remaining(&self) -> u64 {
        self.size() as u64 - self.bump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceProfile;

    fn pool() -> Pool {
        Pool::volatile(8 << 20).unwrap()
    }

    #[test]
    fn classes_are_sorted_multiples_of_cache_line() {
        let mut prev = 0;
        for c in SIZE_CLASSES {
            assert!(c > prev);
            assert_eq!(c % 64, 0);
            prev = c;
        }
    }

    #[test]
    fn class_lookup() {
        assert_eq!(AllocClass::for_size(1).unwrap().size, 64);
        assert_eq!(AllocClass::for_size(64).unwrap().size, 64);
        assert_eq!(AllocClass::for_size(65).unwrap().size, 128);
        assert_eq!(AllocClass::for_size(1048576).unwrap().size, 1048576);
        assert!(AllocClass::for_size(1048577).is_none());
    }

    #[test]
    fn alloc_aligns_to_device_block() {
        let p = pool();
        for size in [256, 1024, 4096] {
            let off = p.alloc(size).unwrap();
            assert_eq!(off % PMEM_BLOCK as u64, 0, "size {size}");
        }
        // Small classes align to their own size.
        let off = p.alloc(64).unwrap();
        assert_eq!(off % 64, 0);
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let p = pool();
        let a = p.alloc(256).unwrap();
        p.free(a, 256).unwrap();
        let b = p.alloc(256).unwrap();
        assert_eq!(a, b, "freed block must be reused (DG5)");
    }

    #[test]
    fn free_list_is_per_class() {
        let p = pool();
        let a = p.alloc(64).unwrap();
        p.free(a, 64).unwrap();
        let b = p.alloc(128).unwrap();
        assert_ne!(a, b, "different class must not reuse the 64B block");
        let c = p.alloc(64).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn group_alloc_is_contiguous_from_bump() {
        let p = pool();
        let offs = p.alloc_group(256, 8).unwrap();
        assert_eq!(offs.len(), 8);
        for w in offs.windows(2) {
            assert_eq!(w[1] - w[0], 256);
        }
    }

    #[test]
    fn group_alloc_counts_one_allocation() {
        let p = pool();
        let before = p.stats().snapshot();
        p.alloc_group(256, 16).unwrap();
        let d = p.stats().snapshot() - before;
        assert_eq!(d.allocs, 1, "group allocation amortizes to one alloc");
    }

    #[test]
    fn alloc_zeroed_zeroes_reused_blocks() {
        let p = pool();
        let a = p.alloc(128).unwrap();
        p.write_bytes(a, &[0xFF; 128]);
        p.free(a, 128).unwrap();
        let b = p.alloc_zeroed(128).unwrap();
        assert_eq!(a, b);
        let mut buf = [1u8; 128];
        p.read_slice(b, &mut buf);
        assert!(buf.iter().all(|&x| x == 0));
    }

    #[test]
    fn out_of_space_errors_cleanly() {
        let p = Pool::volatile(2 << 20).unwrap();
        let mut n = 0;
        loop {
            match p.alloc(65536) {
                Ok(_) => n += 1,
                Err(PmemError::OutOfSpace { .. }) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(n < 100, "should run out of space");
        }
        // Small allocations may still fail afterwards but must not panic.
        let _ = p.alloc(64);
    }

    #[test]
    fn large_alloc_served_and_aligned() {
        let p = Pool::volatile(16 << 20).unwrap();
        let off = p.alloc(3 << 20).unwrap();
        assert_eq!(off % PMEM_BLOCK as u64, 0);
        p.write_u64(off, 1);
        p.write_u64(off + (3 << 20) - 8, 2);
    }

    #[test]
    fn arena_refills_amortize_allocator_round_trips() {
        let p = pool();
        assert!(p.alloc_arenas(), "arenas default on");
        let before = p.stats().snapshot();
        for _ in 0..64 {
            p.alloc(64).unwrap(); // 64 x 64 B = exactly one 16 KiB slab
        }
        let d = p.stats().snapshot() - before;
        assert_eq!(d.allocs, 64, "every allocation is still counted");
        assert!(d.arena_refills <= 1, "one slab serves all 64 blocks");
        assert!(
            d.fences <= 2,
            "bump persisted per slab, not per block (got {})",
            d.fences
        );
    }

    #[test]
    fn arena_allocs_are_disjoint_across_threads() {
        let p = std::sync::Arc::new(pool());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || {
                    (0..200).map(|_| p.alloc(128).unwrap()).collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "no block handed out twice");
        for w in all.windows(2) {
            assert!(w[1] - w[0] >= 128, "blocks must not overlap");
        }
    }

    #[test]
    fn arena_prefers_free_list_reuse() {
        let p = pool();
        // Warm the arena so it has a live run for the class.
        let warm = p.alloc(256).unwrap();
        p.free(warm, 256).unwrap();
        // With a non-empty free list the arena stands aside and the freed
        // block is reused even though the arena run still has room.
        let again = p.alloc(256).unwrap();
        assert_eq!(warm, again, "freed block reused before arena bump (DG5)");
        // Free list drained: next allocation comes from the arena run again.
        let fresh = p.alloc(256).unwrap();
        assert_ne!(fresh, warm);
    }

    #[test]
    fn arena_disabled_matches_global_path() {
        let p = pool();
        p.set_alloc_arenas(false);
        assert!(!p.alloc_arenas());
        let before = p.stats().snapshot();
        let a = p.alloc(64).unwrap();
        let b = p.alloc(64).unwrap();
        let d = p.stats().snapshot() - before;
        assert_eq!(b - a, 64, "sequential bump like the seed allocator");
        assert_eq!(d.arena_refills, 0);
        assert_eq!(d.fences, 2, "one bump persist per allocation");
    }

    #[test]
    fn arena_blocks_survive_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("pmem-arena-reopen-{}", std::process::id()));
        let (a, b);
        {
            let p = Pool::create(&path, 8 << 20, DeviceProfile::dram()).unwrap();
            assert!(p.alloc_arenas());
            a = p.alloc(512).unwrap();
            b = p.alloc(512).unwrap();
            p.write_u64(a, 0xA);
            p.write_u64(b, 0xB);
            p.persist(a, 8);
            p.persist(b, 8);
        }
        {
            let p = Pool::open(&path, DeviceProfile::dram()).unwrap();
            // Arena-served blocks are ordinary pool space: contents persist
            // and the global bump can never re-issue them.
            assert_eq!(p.read_u64(a), 0xA);
            assert_eq!(p.read_u64(b), 0xB);
            let fresh = p.alloc(512).unwrap();
            assert!(fresh != a && fresh != b, "reopened bump must not reuse");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn free_list_survives_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("pmem-alloc-reopen-{}", std::process::id()));
        let (a, b);
        {
            let p = Pool::create(&path, 8 << 20, DeviceProfile::dram()).unwrap();
            a = p.alloc(512).unwrap();
            b = p.alloc(512).unwrap();
            p.free(a, 512).unwrap();
            p.free(b, 512).unwrap();
        }
        {
            let p = Pool::open(&path, DeviceProfile::dram()).unwrap();
            // LIFO: b then a.
            assert_eq!(p.alloc(512).unwrap(), b);
            assert_eq!(p.alloc(512).unwrap(), a);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
