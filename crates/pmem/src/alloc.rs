//! Persistent chunk allocator with size-class free lists.
//!
//! Design goal DG5: PMem allocations are expensive (C5), so the engine
//! allocates chunks (not records), reuses freed blocks through persistent
//! free lists instead of deallocating, and supports group allocation to
//! amortize allocator overhead. This allocator follows that discipline:
//!
//! * allocation rounds up to one of [`SIZE_CLASSES`] (all multiples of a
//!   cache line, classes ≥256 B aligned to the 256 B device block, DG3);
//! * `free` pushes the block on a per-class persistent LIFO list whose link
//!   word is embedded in the block's first 8 bytes;
//! * the bump pointer and free-list heads live in the pool header and are
//!   updated with single failure-atomic 8-byte stores, so the allocator
//!   metadata can never be torn. A crash between linking a block and
//!   publishing the head can leak at most one block (same trade-off PMDK
//!   resolves with its redo log; we document it instead — leaked blocks are
//!   recovered by a full-table rebuild, never cause corruption).

use crate::error::{PmemError, Result};
use crate::pool::{Pool, PMEM_BLOCK};

/// Allocation size classes in bytes.
pub const SIZE_CLASSES: [usize; 15] = [
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288,
    1048576,
];

/// Number of size classes (also the length of the header free-list array).
pub(crate) const NUM_CLASSES: usize = SIZE_CLASSES.len();

/// A resolved size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocClass {
    /// Index into [`SIZE_CLASSES`].
    pub index: usize,
    /// Block size in bytes.
    pub size: usize,
}

impl AllocClass {
    /// Smallest class that fits `size` bytes, or `None` if larger than the
    /// biggest class (large allocations are served directly from the bump
    /// region and are not reusable through free lists).
    pub fn for_size(size: usize) -> Option<AllocClass> {
        SIZE_CLASSES
            .iter()
            .position(|&c| c >= size)
            .map(|index| AllocClass {
                index,
                size: SIZE_CLASSES[index],
            })
    }
}

impl Pool {
    /// Allocate `size` bytes of persistent memory. Returns the byte offset.
    ///
    /// Contents of a reused block are unspecified; use
    /// [`Pool::alloc_zeroed`] when the caller relies on zero-initialisation.
    pub fn alloc(&self, size: usize) -> Result<u64> {
        let _g = self.alloc_lock.lock();
        self.profile().alloc_delay();
        self.stats()
            .allocs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.alloc_locked(size)
    }

    fn alloc_locked(&self, size: usize) -> Result<u64> {
        match AllocClass::for_size(size) {
            Some(class) => {
                let head_off = self.free_head_off(class.index);
                let head = self.read_header_u64(head_off);
                if head != 0 {
                    // Pop: publish the successor with one atomic store.
                    let next = self.read_u64(head);
                    self.write_u64(head_off, next);
                    self.persist(head_off, 8);
                    return Ok(head);
                }
                self.alloc_bump(class.size, class.size.min(PMEM_BLOCK))
            }
            None => {
                // Large allocation: 256-byte aligned, bump only.
                let rounded = size.div_ceil(PMEM_BLOCK) * PMEM_BLOCK;
                self.alloc_bump(rounded, PMEM_BLOCK)
            }
        }
    }

    fn alloc_bump(&self, size: usize, align: usize) -> Result<u64> {
        let bump = self.bump();
        let start = bump.div_ceil(align as u64) * align as u64;
        let end = start
            .checked_add(size as u64)
            .ok_or(PmemError::OutOfSpace { requested: size })?;
        if end > self.size() as u64 {
            return Err(PmemError::OutOfSpace { requested: size });
        }
        self.set_bump(end);
        Ok(start)
    }

    /// Allocate and zero-fill.
    pub fn alloc_zeroed(&self, size: usize) -> Result<u64> {
        let off = self.alloc(size)?;
        self.write_zeros(off, size);
        self.persist(off, size);
        Ok(off)
    }

    /// Group allocation (DG5): `n` blocks of `size` bytes with a single
    /// allocator round-trip and a single injected allocation latency.
    /// Contiguous when served from the bump region.
    pub fn alloc_group(&self, size: usize, n: usize) -> Result<Vec<u64>> {
        let _g = self.alloc_lock.lock();
        self.profile().alloc_delay();
        self.stats()
            .allocs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut out = Vec::with_capacity(n);
        if let Some(class) = AllocClass::for_size(size) {
            // Contiguous fast path when no reusable blocks exist.
            if self.read_header_u64(self.free_head_off(class.index)) == 0 {
                let align = class.size.min(PMEM_BLOCK);
                let start = self.alloc_bump_group(class.size, n, align)?;
                for i in 0..n {
                    out.push(start + (i * class.size) as u64);
                }
                return Ok(out);
            }
        }
        for _ in 0..n {
            out.push(self.alloc_locked(size)?);
        }
        Ok(out)
    }

    fn alloc_bump_group(&self, size: usize, n: usize, align: usize) -> Result<u64> {
        let bump = self.bump();
        let start = bump.div_ceil(align as u64) * align as u64;
        let total = (size * n) as u64;
        let end = start
            .checked_add(total)
            .ok_or(PmemError::OutOfSpace { requested: size * n })?;
        if end > self.size() as u64 {
            return Err(PmemError::OutOfSpace { requested: size * n });
        }
        self.set_bump(end);
        Ok(start)
    }

    /// Return a class-sized block to its free list for later reuse. `size`
    /// must match the size passed to [`Pool::alloc`]. Large (over-class)
    /// blocks are intentionally leaked (DG5: reuse, don't deallocate).
    pub fn free(&self, off: u64, size: usize) -> Result<()> {
        let Some(class) = AllocClass::for_size(size) else {
            return Ok(()); // large block: leaked by design
        };
        let _g = self.alloc_lock.lock();
        self.stats()
            .frees
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let head_off = self.free_head_off(class.index);
        let head = self.read_header_u64(head_off);
        // Link first, then publish: a crash in between leaks `off` only.
        self.write_u64(off, head);
        self.persist(off, 8);
        self.write_u64(head_off, off);
        self.persist(head_off, 8);
        Ok(())
    }

    /// Bytes remaining in the never-allocated bump region.
    pub fn bytes_remaining(&self) -> u64 {
        self.size() as u64 - self.bump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceProfile;

    fn pool() -> Pool {
        Pool::volatile(8 << 20).unwrap()
    }

    #[test]
    fn classes_are_sorted_multiples_of_cache_line() {
        let mut prev = 0;
        for c in SIZE_CLASSES {
            assert!(c > prev);
            assert_eq!(c % 64, 0);
            prev = c;
        }
    }

    #[test]
    fn class_lookup() {
        assert_eq!(AllocClass::for_size(1).unwrap().size, 64);
        assert_eq!(AllocClass::for_size(64).unwrap().size, 64);
        assert_eq!(AllocClass::for_size(65).unwrap().size, 128);
        assert_eq!(AllocClass::for_size(1048576).unwrap().size, 1048576);
        assert!(AllocClass::for_size(1048577).is_none());
    }

    #[test]
    fn alloc_aligns_to_device_block() {
        let p = pool();
        for size in [256, 1024, 4096] {
            let off = p.alloc(size).unwrap();
            assert_eq!(off % PMEM_BLOCK as u64, 0, "size {size}");
        }
        // Small classes align to their own size.
        let off = p.alloc(64).unwrap();
        assert_eq!(off % 64, 0);
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let p = pool();
        let a = p.alloc(256).unwrap();
        p.free(a, 256).unwrap();
        let b = p.alloc(256).unwrap();
        assert_eq!(a, b, "freed block must be reused (DG5)");
    }

    #[test]
    fn free_list_is_per_class() {
        let p = pool();
        let a = p.alloc(64).unwrap();
        p.free(a, 64).unwrap();
        let b = p.alloc(128).unwrap();
        assert_ne!(a, b, "different class must not reuse the 64B block");
        let c = p.alloc(64).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn group_alloc_is_contiguous_from_bump() {
        let p = pool();
        let offs = p.alloc_group(256, 8).unwrap();
        assert_eq!(offs.len(), 8);
        for w in offs.windows(2) {
            assert_eq!(w[1] - w[0], 256);
        }
    }

    #[test]
    fn group_alloc_counts_one_allocation() {
        let p = pool();
        let before = p.stats().snapshot();
        p.alloc_group(256, 16).unwrap();
        let d = p.stats().snapshot() - before;
        assert_eq!(d.allocs, 1, "group allocation amortizes to one alloc");
    }

    #[test]
    fn alloc_zeroed_zeroes_reused_blocks() {
        let p = pool();
        let a = p.alloc(128).unwrap();
        p.write_bytes(a, &[0xFF; 128]);
        p.free(a, 128).unwrap();
        let b = p.alloc_zeroed(128).unwrap();
        assert_eq!(a, b);
        let mut buf = [1u8; 128];
        p.read_slice(b, &mut buf);
        assert!(buf.iter().all(|&x| x == 0));
    }

    #[test]
    fn out_of_space_errors_cleanly() {
        let p = Pool::volatile(2 << 20).unwrap();
        let mut n = 0;
        loop {
            match p.alloc(65536) {
                Ok(_) => n += 1,
                Err(PmemError::OutOfSpace { .. }) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(n < 100, "should run out of space");
        }
        // Small allocations may still fail afterwards but must not panic.
        let _ = p.alloc(64);
    }

    #[test]
    fn large_alloc_served_and_aligned() {
        let p = Pool::volatile(16 << 20).unwrap();
        let off = p.alloc(3 << 20).unwrap();
        assert_eq!(off % PMEM_BLOCK as u64, 0);
        p.write_u64(off, 1);
        p.write_u64(off + (3 << 20) - 8, 2);
    }

    #[test]
    fn free_list_survives_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("pmem-alloc-reopen-{}", std::process::id()));
        let (a, b);
        {
            let p = Pool::create(&path, 8 << 20, DeviceProfile::dram()).unwrap();
            a = p.alloc(512).unwrap();
            b = p.alloc(512).unwrap();
            p.free(a, 512).unwrap();
            p.free(b, 512).unwrap();
        }
        {
            let p = Pool::open(&path, DeviceProfile::dram()).unwrap();
            // LIFO: b then a.
            assert_eq!(p.alloc(512).unwrap(), b);
            assert_eq!(p.alloc(512).unwrap(), a);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
