//! Typed persistent offsets and persistent pointers.
//!
//! Design decision DD2/DD4 of the paper: connections between records are
//! 8-byte array offsets, not 16-byte PMDK persistent pointers — offsets fit
//! into one failure-atomic store and avoid costly dereferencing (DG6).
//! [`POff`] is that 8-byte offset, typed for safety. [`PPtr`] is the 16-byte
//! PMDK-style `{pool_id, offset}` pair; it exists so the DG6 ablation bench
//! can measure what the paper argues against, and for cross-pool roots.

use std::marker::PhantomData;

use crate::Pod;

/// Typed 8-byte offset into a pool. `0` is the null offset (the first bytes
/// of every pool hold the header, so no object ever lives at offset 0).
#[repr(transparent)]
pub struct POff<T> {
    raw: u64,
    _marker: PhantomData<fn() -> T>,
}

impl<T> POff<T> {
    /// The null offset.
    pub const NULL: POff<T> = POff {
        raw: 0,
        _marker: PhantomData,
    };

    /// Construct from a raw byte offset.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        POff {
            raw,
            _marker: PhantomData,
        }
    }

    /// The raw byte offset.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.raw
    }

    /// True if this is the null offset.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.raw == 0
    }

    /// Offset `count` records of size `size_of::<T>()` further.
    #[inline]
    #[allow(clippy::should_implement_trait)] // offset arithmetic, not ops::Add
    pub fn add(self, count: u64) -> Self
    where
        T: Sized,
    {
        POff::new(self.raw + count * std::mem::size_of::<T>() as u64)
    }

    /// Reinterpret as an offset to a different type (same byte position).
    #[inline]
    pub const fn cast<U>(self) -> POff<U> {
        POff {
            raw: self.raw,
            _marker: PhantomData,
        }
    }
}

// Manual impls: derive would bound on `T`.
impl<T> Clone for POff<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for POff<T> {}
impl<T> PartialEq for POff<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for POff<T> {}
impl<T> std::hash::Hash for POff<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<T> std::fmt::Debug for POff<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "POff({:#x})", self.raw)
    }
}
impl<T> Default for POff<T> {
    fn default() -> Self {
        Self::NULL
    }
}
unsafe impl<T: 'static> Pod for POff<T> {}

/// 16-byte PMDK-style persistent pointer: pool identity plus offset.
///
/// Dereferencing requires a lookup of the pool base address, which is why
/// the paper's design goal DG6 says to avoid them on hot paths. Stored only
/// in cold locations (chunk links, roots) and exercised by the ablation
/// bench `dg6_offsets_vs_pptr`.
#[repr(C)]
pub struct PPtr<T> {
    /// Identifier of the owning pool (assigned at open, persisted at create).
    pub pool_id: u64,
    /// Byte offset within that pool.
    pub off: u64,
    _marker: PhantomData<fn() -> T>,
}

impl<T> PPtr<T> {
    /// The null persistent pointer.
    pub const NULL: PPtr<T> = PPtr {
        pool_id: 0,
        off: 0,
        _marker: PhantomData,
    };

    /// Construct a persistent pointer.
    pub const fn new(pool_id: u64, off: u64) -> Self {
        PPtr {
            pool_id,
            off,
            _marker: PhantomData,
        }
    }

    /// True if null.
    pub const fn is_null(self) -> bool {
        self.off == 0
    }

    /// Drop the pool identity, keeping the in-pool offset.
    pub const fn to_off(self) -> POff<T> {
        POff::new(self.off)
    }
}

impl<T> Clone for PPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PPtr<T> {}
impl<T> PartialEq for PPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.pool_id == other.pool_id && self.off == other.off
    }
}
impl<T> Eq for PPtr<T> {}
impl<T> std::hash::Hash for PPtr<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.pool_id.hash(state);
        self.off.hash(state);
    }
}
impl<T> std::fmt::Debug for PPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PPtr({:#x}:{:#x})", self.pool_id, self.off)
    }
}
impl<T> Default for PPtr<T> {
    fn default() -> Self {
        Self::NULL
    }
}
unsafe impl<T: 'static> Pod for PPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_roundtrip() {
        let n: POff<u64> = POff::NULL;
        assert!(n.is_null());
        assert_eq!(n.raw(), 0);
        let p: PPtr<u64> = PPtr::NULL;
        assert!(p.is_null());
        assert!(p.to_off().is_null());
    }

    #[test]
    fn add_scales_by_type_size() {
        let o: POff<u64> = POff::new(64);
        assert_eq!(o.add(3).raw(), 64 + 24);
        let b: POff<u8> = POff::new(64);
        assert_eq!(b.add(3).raw(), 67);
    }

    #[test]
    fn cast_preserves_position() {
        let o: POff<u64> = POff::new(128);
        let c: POff<u8> = o.cast();
        assert_eq!(c.raw(), 128);
    }

    #[test]
    fn pptr_is_16_bytes_and_poff_is_8() {
        assert_eq!(std::mem::size_of::<PPtr<u64>>(), 16);
        assert_eq!(std::mem::size_of::<POff<u64>>(), 8);
    }
}
