//! The persistent pool: an mmap-backed heap with PMem semantics.
//!
//! A [`Pool`] emulates a PMDK `pmemobj` pool living on a DAX file system.
//! All persistent state is addressed by 8-byte offsets from the pool base.
//! Stores become durable only when the affected cache lines are flushed
//! ([`Pool::flush`], emulating `clwb`) and a store fence is issued
//! ([`Pool::drain`], emulating `sfence`). With crash tracking enabled, a
//! [`Pool::simulate_crash`] discards every store that was not covered by a
//! flush+fence pair, which is exactly the failure model real PMem exposes —
//! so the recovery code in the layers above is tested against the real
//! adversary, not a polite one.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use memmap2::MmapMut;
use parking_lot::Mutex;

use crate::alloc::NUM_CLASSES;
use crate::error::{PmemError, Result};
use crate::latency::DeviceProfile;
use crate::pptr::POff;
use crate::stats::PoolStats;
use crate::Pod;

/// CPU cache-line size assumed by the flush model.
pub const CACHE_LINE: usize = 64;
/// Internal block size of the emulated DCPMM media (C3).
pub const PMEM_BLOCK: usize = 256;
/// Bytes reserved at offset 0 for the pool header.
pub const POOL_HEADER_SIZE: u64 = 4096;

const MAGIC: u64 = 0x504d_4752_4150_4831; // "PMGRAPH1"
const FORMAT_VERSION: u64 = 1;
/// Simulated CPU cache used by the latency model: direct-mapped,
/// `CACHE_SLOTS` lines of 64 B (4 MiB).
const CACHE_SLOTS: usize = 1 << 16;

/// On-media pool header. Lives at offset 0, always within the first page.
#[repr(C)]
pub(crate) struct Header {
    pub magic: u64,
    pub version: u64,
    pub pool_size: u64,
    pub pool_id: u64,
    /// Offset of the application root object (0 = unset).
    pub root: u64,
    /// 1 if the pool was closed cleanly, 0 while open.
    pub clean_shutdown: u64,
    /// Allocator bump pointer (next never-used byte).
    pub bump: u64,
    /// Undo-log region start.
    pub log_off: u64,
    /// Undo-log region capacity in bytes.
    pub log_cap: u64,
    /// Valid bytes in the undo log (0 = empty log).
    pub log_len: u64,
    /// Free-list heads per size class (0 = empty).
    pub free_heads: [u64; NUM_CLASSES],
    /// Highest decided cross-pool epoch (see `txlog::commit_epoch`). Only
    /// meaningful on the pool elected as the epoch decider; 0 = none.
    pub committed_epoch: u64,
}

pub(crate) const fn header_field(off: usize) -> u64 {
    off as u64
}

macro_rules! hoff {
    ($field:ident) => {
        header_field(std::mem::offset_of!(Header, $field))
    };
}

/// Whether a pool is backed by a file (persistent) or anonymous memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolKind {
    /// File-backed: survives process restart, emulates PMem.
    Persistent(PathBuf),
    /// Anonymous memory: the pure-DRAM baseline of the paper's evaluation.
    Volatile,
}

/// What a simulated crash does to stores that were never flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPolicy {
    /// Every unflushed line reverts to its last flushed content. This is the
    /// adversarial case: nothing left the CPU caches.
    DropUnflushed,
    /// Every unflushed line is kept, as if the caches were all evicted just
    /// in time. Useful to check that *extra* flushes are not load-bearing.
    KeepAll,
    /// Each unflushed 8-byte word independently keeps or loses its new value
    /// (seeded, deterministic). Models partial cache eviction; words are
    /// never torn because x86 8-byte aligned stores are failure-atomic (C4).
    Torn(u64),
}

struct DirtyTracker {
    /// line start offset -> content at the time of the last flush.
    pre_images: HashMap<u64, [u8; CACHE_LINE]>,
}

/// A persistent (or emulated-volatile) memory pool.
///
/// ```
/// use pmem::{Pool, POff};
///
/// let pool = Pool::volatile(16 << 20)?; // or Pool::create(path, size, profile)
/// let off = pool.alloc(64)?;
/// pool.write_u64(off, 0xC0FFEE);        // failure-atomic 8-byte store
/// pool.persist(off, 8);                 // clwb + sfence
/// assert_eq!(pool.read_u64(off), 0xC0FFEE);
///
/// // Multi-word atomicity goes through the undo log:
/// pool.tx(|tx| {
///     tx.write_u64(off, 1)?;
///     tx.write_u64(off + 8, 2)?;
///     Ok(())
/// })?;
/// # Ok::<(), pmem::PmemError>(())
/// ```
pub struct Pool {
    kind: PoolKind,
    map: MmapMut,
    len: usize,
    profile: DeviceProfile,
    stats: PoolStats,
    dirty: Option<Mutex<DirtyTracker>>,
    /// Countdown crash injection: panics inside `flush` when it reaches 0.
    crash_after_flushes: AtomicI64,
    /// Simulated direct-mapped CPU cache for the read-latency model:
    /// slot -> tag (line index), u64::MAX = invalid.
    cpu_cache: Vec<AtomicU64>,
    pub(crate) alloc_lock: Mutex<()>,
    pub(crate) tx_lock: Mutex<()>,
    /// Tiered-durability bookkeeping: data lines applied in place but not
    /// yet flushed, covered by the accumulated undo log (see
    /// [`Pool::tx_apply_deferred`]). Locked after `tx_lock`, never before.
    pub(crate) deferred: Mutex<crate::txlog::DeferredState>,
    /// Sharded per-thread allocation arenas (see `alloc` module docs).
    pub(crate) arena: crate::alloc::ArenaState,
}

// The raw mmap pointer is only ever accessed through bounds-checked methods;
// concurrent access discipline is the responsibility of the layers above
// (records are guarded by the MVTO txn-id lock).
unsafe impl Send for Pool {}
unsafe impl Sync for Pool {}

/// Payload carried by the panic raised at an injected crash point.
#[derive(Debug, Clone, Copy)]
pub struct CrashPoint;

impl Pool {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Create a new persistent pool of `size` bytes at `path`.
    ///
    /// `size` must leave room for the header and the undo log (1 MiB).
    pub fn create(path: impl AsRef<Path>, size: usize, profile: DeviceProfile) -> Result<Pool> {
        Self::create_with_log(path, size, profile, 1 << 20)
    }

    /// Create a persistent pool with an explicit undo-log capacity.
    pub fn create_with_log(
        path: impl AsRef<Path>,
        size: usize,
        profile: DeviceProfile,
        log_cap: u64,
    ) -> Result<Pool> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.set_len(size as u64)?;
        let map = unsafe { MmapMut::map_mut(&file)? };
        let mut pool = Pool::from_map(PoolKind::Persistent(path), map, profile);
        pool.format(size as u64, log_cap)?;
        Ok(pool)
    }

    /// Open an existing persistent pool, running undo-log recovery if the
    /// previous session did not shut down cleanly.
    pub fn open(path: impl AsRef<Path>, profile: DeviceProfile) -> Result<Pool> {
        Self::open_with_decider(path, profile, &|_| false)
    }

    /// Open a pool that may have crashed mid-way through a cross-pool epoch
    /// commit. `decider` is consulted with the epoch id of a trailing
    /// prepare marker in the log (see [`Pool::tx_prepare_batches`]): `true`
    /// means the epoch was decided committed (the prepared writes are kept,
    /// the log is just truncated), `false` rolls them back. Plain
    /// [`Pool::open`] passes an always-`false` decider, which is correct
    /// for pools that never participate in cross-pool epochs.
    pub fn open_with_decider(
        path: impl AsRef<Path>,
        profile: DeviceProfile,
        decider: &dyn Fn(u64) -> bool,
    ) -> Result<Pool> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        let map = unsafe { MmapMut::map_mut(&file)? };
        let pool = Pool::from_map(PoolKind::Persistent(path), map, profile);
        if pool.read_header_u64(hoff!(magic)) != MAGIC {
            return Err(PmemError::BadPool("bad magic".into()));
        }
        if pool.read_header_u64(hoff!(version)) != FORMAT_VERSION {
            return Err(PmemError::BadPool("unsupported format version".into()));
        }
        if pool.read_header_u64(hoff!(pool_size)) != len {
            return Err(PmemError::BadPool("size mismatch".into()));
        }
        pool.recover_with(decider)?;
        pool.write_u64(hoff!(clean_shutdown), 0);
        pool.persist(hoff!(clean_shutdown), 8);
        Ok(pool)
    }

    /// Read the committed-epoch header word of a pool file *without*
    /// opening it (and therefore without triggering recovery). A sharded
    /// database must learn the decided epoch before any shard recovers, and
    /// every shard's recovery — including the decider pool's own — depends
    /// on it.
    pub fn peek_committed_epoch(path: impl AsRef<Path>) -> Result<u64> {
        use std::io::Read;
        let mut file = std::fs::File::open(path)?;
        let mut buf = vec![0u8; std::mem::size_of::<Header>()];
        file.read_exact(&mut buf)?;
        let word = |off: usize| u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
        if word(std::mem::offset_of!(Header, magic)) != MAGIC {
            return Err(PmemError::BadPool("bad magic".into()));
        }
        Ok(word(std::mem::offset_of!(Header, committed_epoch)))
    }

    /// Create an anonymous, volatile pool: the DRAM baseline. Identical API,
    /// but nothing survives drop and flushes are free.
    pub fn volatile(size: usize) -> Result<Pool> {
        let map = MmapMut::map_anon(size)?;
        let mut pool = Pool::from_map(PoolKind::Volatile, map, DeviceProfile::dram());
        pool.format(size as u64, 1 << 20)?;
        Ok(pool)
    }

    fn from_map(kind: PoolKind, map: MmapMut, profile: DeviceProfile) -> Pool {
        let len = map.len();
        Pool {
            kind,
            map,
            len,
            profile,
            stats: PoolStats::default(),
            dirty: None,
            crash_after_flushes: AtomicI64::new(-1),
            cpu_cache: if profile.is_free() {
                Vec::new()
            } else {
                (0..CACHE_SLOTS).map(|_| AtomicU64::new(u64::MAX)).collect()
            },
            alloc_lock: Mutex::new(()),
            tx_lock: Mutex::new(()),
            deferred: Mutex::new(crate::txlog::DeferredState::default()),
            arena: crate::alloc::ArenaState::new(crate::alloc::arenas_env()),
        }
    }

    fn format(&mut self, size: u64, log_cap: u64) -> Result<()> {
        let log_off = POOL_HEADER_SIZE;
        let data_start = (log_off + log_cap + PMEM_BLOCK as u64 - 1) & !(PMEM_BLOCK as u64 - 1);
        if data_start >= size {
            return Err(PmemError::BadPool("pool too small for header + log".into()));
        }
        static POOL_ID: AtomicU64 = AtomicU64::new(1);
        let id = POOL_ID.fetch_add(1, Ordering::Relaxed)
            ^ (std::process::id() as u64) << 32;
        self.write_u64(hoff!(version), FORMAT_VERSION);
        self.write_u64(hoff!(pool_size), size);
        self.write_u64(hoff!(pool_id), id);
        self.write_u64(hoff!(root), 0);
        self.write_u64(hoff!(clean_shutdown), 0);
        self.write_u64(hoff!(bump), data_start);
        self.write_u64(hoff!(log_off), log_off);
        self.write_u64(hoff!(log_cap), log_cap);
        self.write_u64(hoff!(log_len), 0);
        for i in 0..NUM_CLASSES {
            self.write_u64(hoff!(free_heads) + 8 * i as u64, 0);
        }
        self.write_u64(hoff!(committed_epoch), 0);
        self.persist(0, std::mem::size_of::<Header>());
        // Magic last: an interrupted create leaves an unopenable file rather
        // than a half-formatted "valid" pool.
        self.write_u64(hoff!(magic), MAGIC);
        self.persist(hoff!(magic), 8);
        Ok(())
    }

    /// Enable cache-line crash tracking. Must be called before concurrent
    /// sharing; costs a map update per store, so benches leave it off.
    pub fn with_crash_tracking(mut self) -> Pool {
        self.dirty = Some(Mutex::new(DirtyTracker {
            pre_images: HashMap::new(),
        }));
        self
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The device profile this pool injects latency for.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Whether the pool is file-backed.
    pub fn is_persistent(&self) -> bool {
        matches!(self.kind, PoolKind::Persistent(_))
    }

    /// Pool kind (file path for persistent pools).
    pub fn kind(&self) -> &PoolKind {
        &self.kind
    }

    /// Total pool size in bytes.
    pub fn size(&self) -> usize {
        self.len
    }

    /// Access statistics.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Unique identifier assigned at creation (persisted).
    pub fn pool_id(&self) -> u64 {
        self.read_header_u64(hoff!(pool_id))
    }

    /// Offset of the application root object, if set.
    pub fn root<T>(&self) -> POff<T> {
        POff::new(self.read_header_u64(hoff!(root)))
    }

    /// Persist a new application root offset.
    pub fn set_root<T>(&self, root: POff<T>) {
        self.write_u64(hoff!(root), root.raw());
        self.persist(hoff!(root), 8);
    }

    pub(crate) fn read_header_u64(&self, off: u64) -> u64 {
        // Header reads skip the latency model: on real hardware these few
        // hot words live permanently in the CPU cache.
        unsafe { (self.base().add(off as usize) as *const u64).read() }
    }

    #[inline]
    fn base(&self) -> *mut u8 {
        self.map.as_ptr() as *mut u8
    }

    #[inline]
    fn check(&self, off: u64, len: usize, why: &'static str) -> Result<()> {
        if (off as usize).checked_add(len).is_none_or(|end| end > self.len) {
            return Err(PmemError::BadOffset { off, why });
        }
        Ok(())
    }

    #[inline]
    fn check_panic(&self, off: u64, len: usize) {
        assert!(
            (off as usize) + len <= self.len,
            "pool access out of bounds: off={off:#x} len={len} pool={}",
            self.len
        );
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Copy a POD value out of the pool, charging modelled read latency for
    /// every cache line that misses the simulated CPU cache.
    #[inline]
    pub fn read<T: Pod>(&self, off: POff<T>) -> T {
        let size = std::mem::size_of::<T>();
        self.check_panic(off.raw(), size);
        self.charge_read(off.raw(), size);
        unsafe { (self.base().add(off.raw() as usize) as *const T).read_unaligned() }
    }

    /// Copy bytes out of the pool.
    #[inline]
    pub fn read_slice(&self, off: u64, out: &mut [u8]) {
        self.check_panic(off, out.len());
        self.charge_read(off, out.len());
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.base().add(off as usize),
                out.as_mut_ptr(),
                out.len(),
            );
        }
    }

    /// Read one naturally-aligned u64.
    #[inline]
    pub fn read_u64(&self, off: u64) -> u64 {
        self.check_panic(off, 8);
        debug_assert_eq!(off % 8, 0, "read_u64 requires 8-byte alignment");
        self.charge_read(off, 8);
        unsafe { (self.base().add(off as usize) as *const u64).read() }
    }

    /// Account the latency and statistics of a read without copying data
    /// (used by zero-copy scan paths that access the mapping directly).
    #[inline]
    pub fn charge_read(&self, off: u64, len: usize) {
        self.stats.read_bytes.fetch_add(len as u64, Ordering::Relaxed);
        self.stats.read_touches.fetch_add(1, Ordering::Relaxed);
        let first_block = off / PMEM_BLOCK as u64;
        let last_block = (off + len.max(1) as u64 - 1) / PMEM_BLOCK as u64;
        self.stats
            .blocks_read
            .fetch_add(last_block - first_block + 1, Ordering::Relaxed);
        if self.profile.read_ns_per_line != 0 {
            let first = off / CACHE_LINE as u64;
            let last = (off + len.max(1) as u64 - 1) / CACHE_LINE as u64;
            let mut missed = 0u64;
            for line in first..=last {
                let slot = (line as usize) & (CACHE_SLOTS - 1);
                let tag = self.cpu_cache[slot].swap(line, Ordering::Relaxed);
                if tag != line {
                    missed += 1;
                }
            }
            self.profile.read_delay(missed);
        }
    }

    /// Invalidate the simulated CPU cache (used to measure "cold" runs).
    pub fn evict_cpu_cache(&self) {
        for slot in &self.cpu_cache {
            slot.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Invalidate the simulated cache entries covering `[off, off+256)`
    /// (a `clflush`-style point eviction for fine-grained experiments).
    pub fn evict_cpu_cache_line(&self, off: u64) {
        if self.cpu_cache.is_empty() {
            return;
        }
        let first = off / CACHE_LINE as u64;
        for line in first..first + (PMEM_BLOCK / CACHE_LINE) as u64 {
            self.cpu_cache[(line as usize) & (CACHE_SLOTS - 1)].store(u64::MAX, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Store a POD value. Not failure-atomic unless `T` is 8 bytes and
    /// aligned — multi-word consistency needs [`Pool::tx`] or careful
    /// ordering by the caller (DG4).
    #[inline]
    pub fn write<T: Pod>(&self, off: POff<T>, val: &T) {
        let size = std::mem::size_of::<T>();
        self.check_panic(off.raw(), size);
        self.track_dirty(off.raw(), size);
        self.stats.write_bytes.fetch_add(size as u64, Ordering::Relaxed);
        unsafe {
            (self.base().add(off.raw() as usize) as *mut T).write_unaligned(*val);
        }
    }

    /// Store raw bytes.
    #[inline]
    pub fn write_bytes(&self, off: u64, data: &[u8]) {
        self.check_panic(off, data.len());
        self.track_dirty(off, data.len());
        self.stats
            .write_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        unsafe {
            std::ptr::copy_nonoverlapping(
                data.as_ptr(),
                self.base().add(off as usize),
                data.len(),
            );
        }
    }

    /// Zero a byte range.
    pub fn write_zeros(&self, off: u64, len: usize) {
        self.check_panic(off, len);
        self.track_dirty(off, len);
        self.stats.write_bytes.fetch_add(len as u64, Ordering::Relaxed);
        unsafe {
            std::ptr::write_bytes(self.base().add(off as usize), 0, len);
        }
    }

    /// The failure-atomic 8-byte store (C4): an aligned u64 written with a
    /// single instruction either fully reaches the media or not at all.
    #[inline]
    pub fn write_u64(&self, off: u64, val: u64) {
        self.check_panic(off, 8);
        debug_assert_eq!(off % 8, 0, "write_u64 requires 8-byte alignment (C4)");
        self.track_dirty(off, 8);
        self.stats.write_bytes.fetch_add(8, Ordering::Relaxed);
        unsafe {
            (self.base().add(off as usize) as *mut u64).write(val);
        }
    }

    /// Atomic view of an aligned u64 (for CAS-based write locks, §5.1).
    ///
    /// Stores made through the returned atomic are NOT crash-tracked; use
    /// [`Pool::atomic_store_u64`] when the value must be recoverable.
    #[inline]
    pub fn atomic_u64(&self, off: u64) -> &AtomicU64 {
        self.check_panic(off, 8);
        assert_eq!(off % 8, 0, "atomic access requires 8-byte alignment");
        unsafe { &*(self.base().add(off as usize) as *const AtomicU64) }
    }

    /// Atomically store an aligned u64 with crash tracking.
    #[inline]
    pub fn atomic_store_u64(&self, off: u64, val: u64, order: Ordering) {
        self.check_panic(off, 8);
        self.track_dirty(off, 8);
        self.stats.write_bytes.fetch_add(8, Ordering::Relaxed);
        self.atomic_u64(off).store(val, order);
    }

    /// Compare-and-swap an aligned u64 with crash tracking of the new value.
    #[inline]
    pub fn compare_exchange_u64(&self, off: u64, current: u64, new: u64) -> std::result::Result<u64, u64> {
        self.check_panic(off, 8);
        self.track_dirty(off, 8);
        self.atomic_u64(off)
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    #[inline]
    fn track_dirty(&self, off: u64, len: usize) {
        let Some(dirty) = &self.dirty else { return };
        let mut guard = dirty.lock();
        let first = off / CACHE_LINE as u64 * CACHE_LINE as u64;
        let last = (off + len.max(1) as u64 - 1) / CACHE_LINE as u64 * CACHE_LINE as u64;
        let mut line = first;
        while line <= last {
            guard.pre_images.entry(line).or_insert_with(|| {
                let mut buf = [0u8; CACHE_LINE];
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        self.base().add(line as usize),
                        buf.as_mut_ptr(),
                        CACHE_LINE,
                    );
                }
                buf
            });
            line += CACHE_LINE as u64;
        }
    }

    // ------------------------------------------------------------------
    // Flush / fence (clwb / sfence emulation)
    // ------------------------------------------------------------------

    /// Flush the cache lines covering `[off, off+len)` — `clwb` emulation.
    /// Durable only after the next [`Pool::drain`].
    pub fn flush(&self, off: u64, len: usize) {
        if len == 0 {
            return;
        }
        self.check_panic(off, len);
        let first = off / CACHE_LINE as u64 * CACHE_LINE as u64;
        let last = (off + len as u64 - 1) / CACHE_LINE as u64 * CACHE_LINE as u64;
        let nlines = (last - first) / CACHE_LINE as u64 + 1;

        // Crash injection: count down per flushed line, panic at zero.
        if self.crash_after_flushes.load(Ordering::Relaxed) >= 0 {
            let prev = self
                .crash_after_flushes
                .fetch_sub(nlines as i64, Ordering::Relaxed);
            if prev >= 0 && prev - (nlines as i64) < 0 {
                std::panic::panic_any(CrashPoint);
            }
        }

        if let Some(dirty) = &self.dirty {
            let mut guard = dirty.lock();
            let mut line = first;
            while line <= last {
                guard.pre_images.remove(&line);
                line += CACHE_LINE as u64;
            }
        }
        self.stats.lines_flushed.fetch_add(nlines, Ordering::Relaxed);
        let first_block = off / PMEM_BLOCK as u64;
        let last_block = (off + len as u64 - 1) / PMEM_BLOCK as u64;
        self.stats
            .blocks_flushed
            .fetch_add(last_block - first_block + 1, Ordering::Relaxed);
        self.profile.flush_delay(nlines);
    }

    /// Store fence — `sfence` emulation. Orders prior flushes.
    pub fn drain(&self) {
        self.stats.fences.fetch_add(1, Ordering::Relaxed);
        self.profile.fence_delay();
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Flush + fence: make `[off, off+len)` durable now.
    pub fn persist(&self, off: u64, len: usize) {
        self.flush(off, len);
        self.drain();
    }

    /// Arrange for a [`CrashPoint`] panic after `n` more flushed cache
    /// lines. Used by crash-sweep tests; pass through `catch_unwind`.
    pub fn inject_crash_after_flushes(&self, n: i64) {
        self.crash_after_flushes.store(n, Ordering::Relaxed);
    }

    /// Disable crash injection.
    pub fn clear_crash_injection(&self) {
        self.crash_after_flushes.store(-1, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Crash simulation & recovery
    // ------------------------------------------------------------------

    /// Simulate a power failure: apply `policy` to every store that was not
    /// made durable with flush+fence, then clear volatile state. The caller
    /// must run [`Pool::recover`] (and rebuild DRAM structures) afterwards.
    ///
    /// Requires crash tracking ([`Pool::with_crash_tracking`]).
    pub fn simulate_crash(&self, policy: CrashPolicy) -> Result<()> {
        let dirty = self.dirty.as_ref().ok_or(PmemError::VolatilePool)?;
        let mut guard = dirty.lock();
        let mut lines: Vec<(u64, [u8; CACHE_LINE])> = guard.pre_images.drain().collect();
        lines.sort_unstable_by_key(|(off, _)| *off);
        match policy {
            CrashPolicy::KeepAll => {}
            CrashPolicy::DropUnflushed => {
                for (off, pre) in &lines {
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            pre.as_ptr(),
                            self.base().add(*off as usize),
                            CACHE_LINE,
                        );
                    }
                }
            }
            CrashPolicy::Torn(seed) => {
                // Deterministic per-word keep/drop via splitmix64.
                let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
                let mut next = move || {
                    state = state.wrapping_add(0x9e3779b97f4a7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                    z ^ (z >> 31)
                };
                for (off, pre) in &lines {
                    for w in 0..CACHE_LINE / 8 {
                        if next() & 1 == 0 {
                            // Word never reached the media: restore pre-image.
                            unsafe {
                                std::ptr::copy_nonoverlapping(
                                    pre.as_ptr().add(w * 8),
                                    self.base().add(*off as usize + w * 8),
                                    8,
                                );
                            }
                        }
                    }
                }
            }
        }
        drop(guard);
        self.evict_cpu_cache();
        self.clear_crash_injection();
        Ok(())
    }

    /// Run undo-log recovery: roll back any transaction that was logged but
    /// not committed. Idempotent; called automatically by [`Pool::open`].
    pub fn recover(&self) -> Result<()> {
        crate::txlog::recover_with(self, &|_| false)
    }

    /// Undo-log recovery with a cross-pool epoch decider (see
    /// [`Pool::open_with_decider`]). Idempotent.
    pub fn recover_with(&self, decider: &dyn Fn(u64) -> bool) -> Result<()> {
        crate::txlog::recover_with(self, decider)
    }

    /// Highest decided cross-pool epoch recorded on this pool (0 = none).
    pub fn committed_epoch(&self) -> u64 {
        self.read_header_u64(hoff!(committed_epoch))
    }

    /// Persist a decided cross-pool epoch: one failure-atomic 8-byte store
    /// plus flush + fence. This is the single decision point of
    /// [`commit_epoch`](crate::commit_epoch) — once durable, every
    /// participant's prepared writes are committed.
    pub fn persist_committed_epoch(&self, epoch: u64) {
        debug_assert!(epoch >= self.committed_epoch(), "epochs are monotonic");
        self.write_u64(hoff!(committed_epoch), epoch);
        self.persist(hoff!(committed_epoch), 8);
    }

    /// Number of cache lines currently written but not yet flushed
    /// (0 when tracking is disabled).
    pub fn unflushed_lines(&self) -> usize {
        self.dirty.as_ref().map_or(0, |d| d.lock().pre_images.len())
    }

    pub(crate) fn log_region(&self) -> (u64, u64) {
        (
            self.read_header_u64(hoff!(log_off)),
            self.read_header_u64(hoff!(log_cap)),
        )
    }

    pub(crate) fn log_len(&self) -> u64 {
        self.read_header_u64(hoff!(log_len))
    }

    pub(crate) fn set_log_len(&self, len: u64) {
        self.write_u64(hoff!(log_len), len);
        self.persist(hoff!(log_len), 8);
    }

    pub(crate) fn bump(&self) -> u64 {
        self.read_header_u64(hoff!(bump))
    }

    pub(crate) fn set_bump(&self, v: u64) {
        self.write_u64(hoff!(bump), v);
        self.persist(hoff!(bump), 8);
    }

    pub(crate) fn free_head_off(&self, class: usize) -> u64 {
        hoff!(free_heads) + 8 * class as u64
    }

    /// Validate an offset/length pair (public so layers can pre-check).
    pub fn check_range(&self, off: u64, len: usize) -> Result<()> {
        self.check(off, len, "range check")
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if self.is_persistent() {
            self.write_u64(hoff!(clean_shutdown), 1);
            self.persist(hoff!(clean_shutdown), 8);
            let _ = self.map.flush();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("kind", &self.kind)
            .field("size", &self.len)
            .field("profile", &self.profile.name)
            .field("tracking", &self.dirty.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pmem-pool-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn create_open_roundtrip() {
        let path = tmp("roundtrip");
        {
            let pool = Pool::create(&path, 1 << 22, DeviceProfile::dram()).unwrap();
            pool.write_u64(pool.bump(), 0xdead_beef);
            pool.persist(pool.bump(), 8);
            pool.set_root::<u64>(POff::new(pool.bump()));
        }
        {
            let pool = Pool::open(&path, DeviceProfile::dram()).unwrap();
            let root: POff<u64> = pool.root();
            assert_eq!(pool.read_u64(root.raw()), 0xdead_beef);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, vec![0u8; 8192]).unwrap();
        assert!(matches!(
            Pool::open(&path, DeviceProfile::dram()),
            Err(PmemError::BadPool(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn volatile_pool_works_without_file() {
        let pool = Pool::volatile(1 << 21).unwrap();
        let off = pool.bump();
        pool.write_u64(off, 42);
        assert_eq!(pool.read_u64(off), 42);
        assert!(!pool.is_persistent());
    }

    #[test]
    fn crash_drops_unflushed_but_keeps_flushed() {
        let pool = Pool::volatile(1 << 21).unwrap().with_crash_tracking();
        let a = pool.bump();
        let b = a + 4096; // different cache lines
        pool.write_u64(a, 111);
        pool.persist(a, 8);
        pool.write_u64(b, 222);
        // b never flushed
        pool.simulate_crash(CrashPolicy::DropUnflushed).unwrap();
        assert_eq!(pool.read_u64(a), 111);
        assert_eq!(pool.read_u64(b), 0);
    }

    #[test]
    fn crash_keepall_preserves_everything() {
        let pool = Pool::volatile(1 << 21).unwrap().with_crash_tracking();
        let a = pool.bump();
        pool.write_u64(a, 7);
        pool.simulate_crash(CrashPolicy::KeepAll).unwrap();
        assert_eq!(pool.read_u64(a), 7);
    }

    #[test]
    fn torn_crash_never_tears_8_byte_words() {
        let pool = Pool::volatile(1 << 21).unwrap().with_crash_tracking();
        let base = pool.bump();
        for i in 0..32u64 {
            pool.write_u64(base + i * 8, 0xAAAA_AAAA_AAAA_AAAA);
        }
        pool.simulate_crash(CrashPolicy::Torn(12345)).unwrap();
        for i in 0..32u64 {
            let v = pool.read_u64(base + i * 8);
            assert!(v == 0 || v == 0xAAAA_AAAA_AAAA_AAAA, "torn word: {v:#x}");
        }
    }

    #[test]
    fn flush_clears_dirty_lines() {
        let pool = Pool::volatile(1 << 21).unwrap().with_crash_tracking();
        let a = pool.bump();
        pool.write_bytes(a, &[1u8; 200]);
        assert!(pool.unflushed_lines() >= 3);
        pool.persist(a, 200);
        assert_eq!(pool.unflushed_lines(), 0);
    }

    #[test]
    fn stats_count_lines_and_blocks() {
        let pool = Pool::volatile(1 << 21).unwrap();
        let a = pool.bump();
        let before = pool.stats().snapshot();
        pool.write_bytes(a, &[0u8; 256]);
        pool.persist(a, 256);
        let d = pool.stats().snapshot() - before;
        assert_eq!(d.lines_flushed, 4); // 256 B = 4 lines
        assert_eq!(d.blocks_flushed, 1); // = 1 device block
        assert_eq!(d.fences, 1);
        assert_eq!(d.write_bytes, 256);
    }

    #[test]
    fn injected_crash_panics_at_flush() {
        let pool = Pool::volatile(1 << 21).unwrap().with_crash_tracking();
        let a = pool.bump();
        pool.inject_crash_after_flushes(0);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.write_u64(a, 1);
            pool.persist(a, 8);
        }));
        assert!(res.is_err());
        assert!(res.unwrap_err().downcast_ref::<CrashPoint>().is_some());
    }

    #[test]
    fn atomic_cas_roundtrip() {
        let pool = Pool::volatile(1 << 21).unwrap();
        let a = pool.bump();
        pool.write_u64(a, 0);
        assert!(pool.compare_exchange_u64(a, 0, 9).is_ok());
        assert!(pool.compare_exchange_u64(a, 0, 10).is_err());
        assert_eq!(pool.read_u64(a), 9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let pool = Pool::volatile(4 << 20).unwrap();
        pool.read_u64((4 << 20) + 8);
    }

    #[test]
    fn unclean_shutdown_detected_and_recovered_on_open() {
        let path = tmp("unclean");
        {
            let pool = Pool::create(&path, 1 << 22, DeviceProfile::dram()).unwrap();
            // Leak without Drop running the clean-shutdown marker.
            std::mem::forget(pool);
        }
        {
            let pool = Pool::open(&path, DeviceProfile::dram()).unwrap();
            assert_eq!(pool.log_len(), 0);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
